//! Offline vendored stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `BenchmarkId`, `Bencher::iter`) with plain wall-clock timing and a
//! one-line-per-benchmark report. No statistics, plots, or baselines —
//! the benches exist to exercise the hot paths and give rough numbers,
//! which this does without any crates.io dependency.

#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, like criterion's.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkName {
    /// Render to the printed name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup iteration outside the timer.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI args are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration count used per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed / (b.iters as u32)
        } else {
            Duration::ZERO
        };
        eprintln!(
            "  {:<40} {:>12.3?} /iter ({} iters)",
            id.into_name(),
            per_iter,
            b.iters
        );
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkName,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (report already printed incrementally).
    pub fn finish(&mut self) {}
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
