//! Cost-based probe planning for the candidate-pair relation join.
//!
//! `Q_rels^1` over two table values is a join between two candidate lists
//! (|ca| × |cb| resource pairs) and the SPO arena. Two physical plans
//! produce identical output:
//!
//! * **Type-first** — probe each `(ra, rb)` pair individually: binary
//!   search `ra`'s adjacency run per pair. Cost ≈ `|ca|·|cb|·log(deg)`.
//!   Wins when the candidate lists are short (the common single-candidate
//!   cell after exact label match).
//! * **Relation-first** — per subject `ra`, walk its adjacency run once
//!   and gallop-merge it against the object candidates sorted by id.
//!   Cost ≈ `|ca|·(deg + |cb|)` plus one `|cb|·log|cb|` sort per call.
//!   Wins when candidate lists are long relative to the typical degree
//!   (fuzzy/homonym-heavy cells).
//!
//! The planner picks per candidate pattern from precomputed cardinality
//! stats ([`CardStats`], built once at index-construction time). All cost
//! arithmetic is integer — the workspace bans float comparisons in
//! decision paths — and the choice is a pure function of the list lengths
//! and frozen stats, so it is deterministic and, because both plans emit
//! in identical order, can never change query results.

/// Physical execution order for a candidate-pair relation probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbePlan {
    /// Per-pair probes: binary search the subject's adjacency per pair.
    TypeFirst,
    /// Per-subject gallop merge join against sorted object candidates.
    RelFirst,
}

/// Cardinality statistics of the SPO arena, frozen at index build time
/// (like the paper's offline coherence computation, they are not updated
/// by enrichment writes).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CardStats {
    /// Average adjacency-run length over subjects with at least one
    /// resource fact (`rr_pairs / rr_subjects`, floor, ≥1 when any pair
    /// exists, 0 on an empty arena).
    pub(crate) avg_degree: u32,
}

impl CardStats {
    /// Derive stats from distinct `(subject, object)` key count and the
    /// number of subjects carrying at least one resource fact.
    pub(crate) fn new(rr_pairs: usize, rr_subjects: usize) -> Self {
        let avg = rr_pairs.checked_div(rr_subjects).map_or(0, |q| q.max(1));
        CardStats {
            avg_degree: avg.min(u32::MAX as usize) as u32,
        }
    }
}

/// Bit length of `x` (⌊log2 x⌋ + 1 for x ≥ 1): the integer stand-in for a
/// binary-search comparison count.
fn bit_length(x: u64) -> u64 {
    u64::from(u64::BITS - x.max(1).leading_zeros())
}

/// Choose the probe plan for a `|ca| × |cb|` candidate pattern.
///
/// Ties go to [`ProbePlan::TypeFirst`] (the historical order). Degenerate
/// patterns (either list empty) cost nothing either way and also stay
/// type-first.
pub(crate) fn choose(ca: usize, cb: usize, stats: &CardStats) -> ProbePlan {
    if ca == 0 || cb == 0 {
        return ProbePlan::TypeFirst;
    }
    let (ca, cb) = (ca as u64, cb as u64);
    let deg = u64::from(stats.avg_degree);
    // Per-pair binary probe over an adjacency run of ~deg entries.
    let type_first = ca * cb * bit_length(deg + 2);
    // Per-subject merge walk + one sort of the object candidates.
    let rel_first = ca * (deg + cb) + cb * bit_length(cb + 2);
    if rel_first < type_first {
        ProbePlan::RelFirst
    } else {
        ProbePlan::TypeFirst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_length_small_values() {
        assert_eq!(bit_length(1), 1);
        assert_eq!(bit_length(2), 2);
        assert_eq!(bit_length(4), 3);
        assert_eq!(bit_length(1024), 11);
    }

    #[test]
    fn stats_average_degree() {
        assert_eq!(CardStats::new(0, 0).avg_degree, 0);
        assert_eq!(CardStats::new(10, 3).avg_degree, 3);
        // Floor never drops below 1 when pairs exist.
        assert_eq!(CardStats::new(2, 5).avg_degree, 1);
    }

    #[test]
    fn single_candidate_patterns_stay_type_first() {
        let stats = CardStats::new(1_000_000, 300_000);
        assert_eq!(choose(1, 1, &stats), ProbePlan::TypeFirst);
        assert_eq!(choose(3, 1, &stats), ProbePlan::TypeFirst);
        assert_eq!(choose(0, 10, &stats), ProbePlan::TypeFirst);
        assert_eq!(choose(10, 0, &stats), ProbePlan::TypeFirst);
    }

    #[test]
    fn wide_object_lists_switch_to_rel_first() {
        // Typical Yago shape: ~3 facts per subject, fuzzy cells with
        // dozens of homonym candidates.
        let stats = CardStats::new(1_500_000, 500_000);
        assert_eq!(choose(4, 32, &stats), ProbePlan::RelFirst);
        assert_eq!(choose(8, 64, &stats), ProbePlan::RelFirst);
        // A single subject cannot amortize the candidate sort.
        assert_eq!(choose(1, 64, &stats), ProbePlan::TypeFirst);
    }

    #[test]
    fn stats_are_load_bearing() {
        // Identical pattern, different frozen stats, different plan.
        let dense = CardStats::new(4_000_000, 10_000); // deg 400
        let sparse = CardStats::new(4_000_000, 4_000_000); // deg 1
        assert_eq!(choose(2, 200, &dense), ProbePlan::RelFirst);
        assert_eq!(choose(2, 200, &sparse), ProbePlan::TypeFirst);
        // Walking a 400-entry run per subject is a loss when only two
        // object candidates exist: stay with per-pair probes.
        assert_eq!(choose(200, 2, &dense), ProbePlan::TypeFirst);
    }
}
