//! A small string interner.
//!
//! Maps strings to dense `u32`-backed ids and back. Used for resource
//! names, class names, property names and literal values. Lookup keys are
//! the *raw* strings; label normalization (case folding etc.) is the
//! responsibility of [`crate::label_index`].

use std::collections::HashMap;

/// A string interner handing out dense indexes.
///
/// Generic over the id type only through `usize` indexes; the typed wrappers
/// in [`crate::ids`] convert at the call sites.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    lookup: HashMap<Box<str>, usize>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its dense index. Re-interning an existing
    /// string returns the original index.
    pub fn intern(&mut self, s: &str) -> usize {
        if let Some(&i) = self.lookup.get(s) {
            return i;
        }
        let i = self.strings.len();
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, i);
        i
    }

    /// The index of `s` if it has been interned.
    pub fn get(&self, s: &str) -> Option<usize> {
        self.lookup.get(s).copied()
    }

    /// The string behind index `i`.
    ///
    /// # Panics
    /// Panics if `i` was not handed out by this interner.
    pub fn resolve(&self, i: usize) -> &str {
        &self.strings[i]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(index, string)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (i, &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("Italy");
        let b = it.intern("Italy");
        assert_eq!(a, b);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let mut it = Interner::new();
        let a = it.intern("Italy");
        let b = it.intern("italy"); // raw comparison: case matters here
        assert_ne!(a, b);
        assert_eq!(it.resolve(a), "Italy");
        assert_eq!(it.resolve(b), "italy");
    }

    #[test]
    fn get_without_intern() {
        let mut it = Interner::new();
        assert_eq!(it.get("Rome"), None);
        let i = it.intern("Rome");
        assert_eq!(it.get("Rome"), Some(i));
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut it = Interner::new();
        it.intern("a");
        it.intern("b");
        it.intern("c");
        let collected: Vec<&str> = it.iter().map(|(_, s)| s).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_interner() {
        let it = Interner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }
}
