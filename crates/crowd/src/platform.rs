//! The crowd platform: replication, plurality voting, cost accounting.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::oracle::Oracle;
use crate::question::{Answer, Question, QuestionKind};
use crate::worker::Worker;

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct CrowdConfig {
    /// Size of the worker pool (paper: 10 students).
    pub num_workers: usize,
    /// Replicas per question (paper: "each question is asked three
    /// times, and the majority answer is taken").
    pub replication: usize,
    /// Accuracy of every worker (the paper assumes experts; 0.95 default).
    pub worker_accuracy: f64,
    /// Seed for worker assignment and worker error streams.
    pub seed: u64,
}

impl Default for CrowdConfig {
    fn default() -> Self {
        CrowdConfig {
            num_workers: 10,
            replication: 3,
            worker_accuracy: 0.95,
            seed: 0,
        }
    }
}

/// Cost accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrowdStats {
    /// Distinct questions issued, by kind.
    pub questions_by_kind: HashMap<QuestionKind, usize>,
    /// Total worker answers collected (questions × replication).
    pub worker_answers: usize,
}

impl CrowdStats {
    /// Total distinct questions issued.
    pub fn questions(&self) -> usize {
        self.questions_by_kind.values().sum()
    }

    /// Questions of one kind.
    pub fn questions_of(&self, kind: QuestionKind) -> usize {
        self.questions_by_kind.get(&kind).copied().unwrap_or(0)
    }
}

/// A simulated crowdsourcing platform bound to a ground-truth oracle.
#[derive(Debug)]
pub struct Crowd<O> {
    oracle: O,
    workers: Vec<Worker>,
    assign_rng: StdRng,
    replication: usize,
    stats: CrowdStats,
}

impl<O: Oracle> Crowd<O> {
    /// Build a platform from a config and oracle.
    pub fn new(config: CrowdConfig, oracle: O) -> Self {
        assert!(config.num_workers > 0, "need at least one worker");
        assert!(config.replication > 0, "need at least one replica");
        let workers = (0..config.num_workers)
            .map(|i| Worker::new(i, config.worker_accuracy, config.seed))
            .collect();
        Crowd {
            oracle,
            workers,
            assign_rng: StdRng::seed_from_u64(config.seed.wrapping_add(0xC0FFEE)),
            replication: config.replication,
            stats: CrowdStats::default(),
        }
    }

    /// Issue one question: `replication` randomly-assigned workers answer,
    /// and the plurality answer is returned (ties break toward the lowest
    /// option slot, deterministically).
    pub fn ask(&mut self, q: &Question) -> Answer {
        let correct = self.oracle.answer(q);
        let num_candidates = q.num_options() - usize::from(!matches!(q, Question::Fact { .. }));
        let is_bool = matches!(q, Question::Fact { .. });
        let mut votes: HashMap<usize, usize> = HashMap::new();
        for _ in 0..self.replication {
            let wi = self.assign_rng.random_range(0..self.workers.len());
            let a = self.workers[wi].respond(q, correct);
            *votes.entry(a.slot(num_candidates)).or_insert(0) += 1;
            self.stats.worker_answers += 1;
        }
        *self.stats.questions_by_kind.entry(q.kind()).or_insert(0) += 1;
        let (&slot, _) = votes
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .expect("replication > 0");
        Answer::from_slot(slot, num_candidates, is_bool)
    }

    /// Ask the same question `times` times (the paper asks `q` questions
    /// per variable with different sample tuples; the *caller* varies the
    /// samples) and return the per-ask aggregated answers.
    pub fn ask_repeated(&mut self, questions: &[Question]) -> Vec<Answer> {
        questions.iter().map(|q| self.ask(q)).collect()
    }

    /// Accumulated cost statistics.
    pub fn stats(&self) -> &CrowdStats {
        &self.stats
    }

    /// Reset the statistics (e.g. between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = CrowdStats::default();
    }

    /// Access the oracle (used by annotation to form enrichment facts).
    pub fn oracle(&self) -> &O {
        &self.oracle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FixedOracle;

    fn fact_q(obj: &str) -> Question {
        Question::Fact {
            subject: "Italy".into(),
            property: "hasCapital".into(),
            object: obj.into(),
        }
    }

    #[test]
    fn majority_of_accurate_workers_is_correct() {
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 0.9,
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        );
        let mut right = 0;
        for i in 0..200 {
            if crowd.ask(&fact_q(&format!("q{i}"))) == Answer::Bool(true) {
                right += 1;
            }
        }
        // With 0.9 workers and 3-way voting, error prob ≈ 2.8%.
        assert!(right >= 185, "only {right}/200 correct");
        assert_eq!(crowd.stats().questions(), 200);
        assert_eq!(crowd.stats().worker_answers, 600);
    }

    #[test]
    fn perfect_workers_never_err() {
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.0,
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(false)),
        );
        for _ in 0..50 {
            assert_eq!(crowd.ask(&fact_q("x")), Answer::Bool(false));
        }
    }

    #[test]
    fn stats_track_kinds() {
        let mut crowd = Crowd::new(CrowdConfig::default(), FixedOracle(Answer::Bool(true)));
        crowd.ask(&fact_q("a"));
        crowd.ask(&fact_q("b"));
        assert_eq!(crowd.stats().questions_of(QuestionKind::Fact), 2);
        assert_eq!(crowd.stats().questions_of(QuestionKind::ColumnType), 0);
        crowd.reset_stats();
        assert_eq!(crowd.stats().questions(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut crowd = Crowd::new(
                CrowdConfig {
                    worker_accuracy: 0.5,
                    seed,
                    ..CrowdConfig::default()
                },
                FixedOracle(Answer::Bool(true)),
            );
            (0..50).map(|_| crowd.ask(&fact_q("x"))).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn choice_questions_aggregate() {
        let q = Question::ColumnType {
            table: "t".into(),
            column: 0,
            header: vec!["A".into()],
            sample_rows: vec![],
            candidates: vec!["country".into(), "economy".into(), "state".into()],
        };
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 0.95,
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Choice(1)),
        );
        let mut hits = 0;
        for _ in 0..100 {
            if crowd.ask(&q) == Answer::Choice(1) {
                hits += 1;
            }
        }
        assert!(hits >= 95, "{hits}");
    }

    #[test]
    #[should_panic(expected = "worker")]
    fn zero_workers_panics() {
        let _ = Crowd::new(
            CrowdConfig {
                num_workers: 0,
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        );
    }
}
