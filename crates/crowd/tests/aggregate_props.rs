//! Property-based tests for the Dawid–Skene aggregator and its
//! integration with the platform.
//!
//! * the EM posterior is bit-deterministic for any vote multiset;
//! * learned quality converges: workers that keep agreeing with the
//!   committed answer end above workers that never do;
//! * coordinated spammers holding a minority of the vote mass can never
//!   flip a confident answer away from a perfect honest majority;
//! * explicit `AggregationMode::Plurality` is byte-identical to the
//!   default-config platform (the pre-Dawid-Skene pipeline) for
//!   arbitrary crowd configurations, fault plans, and question scripts.

use katara_crowd::{
    AggregationMode, Answer, AskOutcome, Budget, Crowd, CrowdConfig, DawidSkene, DawidSkeneConfig,
    FaultPlan, FixedOracle, Question,
};
use proptest::prelude::*;

fn fact_q(tag: &str) -> Question {
    Question::Fact {
        subject: format!("s-{tag}"),
        property: "hasCapital".into(),
        object: format!("o-{tag}"),
    }
}

fn choice_q(tag: &str, candidates: usize) -> Question {
    Question::ColumnType {
        table: format!("t-{tag}"),
        column: 0,
        header: vec!["col".into()],
        sample_rows: Vec::new(),
        candidates: (0..candidates).map(|i| format!("type-{i}")).collect(),
    }
}

proptest! {
    /// Two independent aggregators fed the same votes produce the same
    /// posterior, bit for bit — no wall-clock, no iteration-order, no
    /// hidden-state dependence.
    #[test]
    fn posterior_is_bit_deterministic(
        votes in prop::collection::vec((0usize..8, 0usize..4), 1..12),
        num_workers in 8usize..16,
        em_iterations in 1usize..6,
    ) {
        let config = DawidSkeneConfig {
            em_iterations,
            ..DawidSkeneConfig::default()
        };
        let a = DawidSkene::new(config.clone(), num_workers);
        let b = DawidSkene::new(config, num_workers);
        let pa = a.posterior(4, &votes);
        let pb = b.posterior(4, &votes);
        prop_assert_eq!(pa.slot, pb.slot);
        prop_assert_eq!(pa.iterations, pb.iterations);
        // Bitwise, not approximate: determinism is the contract.
        prop_assert_eq!(pa.confidence.to_bits(), pb.confidence.to_bits());
        for (x, y) in pa.probs.iter().zip(&pb.probs) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Quality learning converges in the right direction: a worker that
    /// always votes with the (unanimous) majority ends with strictly
    /// higher learned quality than one that always dissents, for any
    /// question kind mix and any warm-up length.
    #[test]
    fn committed_agreement_raises_quality_and_dissent_lowers_it(
        rounds in 3usize..20,
        num_slots in 2usize..5,
        kinds in prop::collection::vec(0u8..3, 3..20),
    ) {
        let mut ds = DawidSkene::new(DawidSkeneConfig::default(), 4);
        for (r, k) in (0..rounds).zip(kinds.iter().cycle()) {
            let truth = r % num_slots;
            let wrong = (truth + 1) % num_slots;
            // Workers 0-2 agree on the truth, worker 3 always dissents.
            let votes = vec![(0, truth), (1, truth), (2, truth), (3, wrong)];
            let kind = match k {
                0 => katara_crowd::QuestionKind::ColumnType,
                1 => katara_crowd::QuestionKind::Relationship,
                _ => katara_crowd::QuestionKind::Fact,
            };
            let post = ds.posterior(num_slots, &votes);
            prop_assert_eq!(post.slot, truth);
            ds.commit(kind, &votes, &post);
        }
        let majority = ds.quality(0);
        let dissenter = ds.quality(3);
        prop_assert!(majority > dissenter,
            "majority voter {majority:.3} <= dissenter {dissenter:.3}");
        prop_assert!(majority > DawidSkeneConfig::default().prior_quality);
        prop_assert!(dissenter < DawidSkeneConfig::default().prior_quality);
    }

    /// Coordinated spammers below half the vote mass never flip a
    /// confident answer: with perfect honest workers holding the
    /// majority, the MAP slot is the honest slot whatever the spammers
    /// coordinate on, at every learning state from cold to warm.
    #[test]
    fn coordinated_minority_spammers_never_flip_a_confident_answer(
        honest in 2usize..6,
        spam_deficit in 1usize..3,
        num_slots in 2usize..5,
        honest_slot in 0usize..5,
        slot_offset in 1usize..5,
        warmup in 0usize..12,
    ) {
        // Derive a strictly-smaller spammer block and a distinct spam
        // slot arithmetically — the shim has no `prop_assume!`.
        let spammers = spam_deficit.clamp(1, honest - 1);
        let honest_slot = honest_slot % num_slots;
        let spam_slot = (honest_slot + 1 + slot_offset % (num_slots - 1)) % num_slots;
        let mut ds = DawidSkene::new(DawidSkeneConfig::default(), honest + spammers);
        // Warm up: honest workers (ids 0..honest) vote the truth each
        // round; spammers coordinate on a wrong slot. The model may
        // learn from every commit.
        for r in 0..warmup {
            let t = r % num_slots;
            let w = (t + 1) % num_slots;
            let votes: Vec<(usize, usize)> = (0..honest)
                .map(|i| (i, t))
                .chain((0..spammers).map(|i| (honest + i, w)))
                .collect();
            let post = ds.posterior(num_slots, &votes);
            ds.commit(katara_crowd::QuestionKind::Fact, &votes, &post);
        }
        // The attack: every honest worker votes `honest_slot`, every
        // spammer coordinates on `spam_slot`.
        let votes: Vec<(usize, usize)> = (0..honest)
            .map(|i| (i, honest_slot))
            .chain((0..spammers).map(|i| (honest + i, spam_slot)))
            .collect();
        let post = ds.posterior(num_slots, &votes);
        prop_assert_eq!(post.slot, honest_slot,
            "{honest} honest vs {spammers} spammers flipped to the spam slot \
             (confidence {:.3})", post.confidence);
    }

    /// Explicit plurality mode — whatever the (inert) Dawid–Skene knobs
    /// say — asks, answers, charges, and accounts byte-identically to
    /// the default-config platform, i.e. to the pre-aggregation-mode
    /// pipeline, under arbitrary fault plans and budgets.
    #[test]
    fn plurality_mode_is_byte_identical_to_the_default_pipeline(
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
        accuracy in 0.0f64..=1.0,
        dropout in 0.0f64..0.5,
        abstain in 0.0f64..0.3,
        spam in 0.0f64..0.6,
        replication in 1usize..6,
        budget_q in 0usize..45,
        asks in 5usize..30,
        ds_em in 1usize..20,
        ds_conf in 0.0f64..=1.0,
    ) {
        let base = CrowdConfig {
            worker_accuracy: accuracy,
            seed,
            replication,
            faults: FaultPlan {
                seed: fault_seed,
                dropout_rate: dropout,
                abstain_rate: abstain,
                spammer_fraction: spam,
                ..FaultPlan::default()
            },
            // Low draws mean an unlimited budget, the rest cap questions.
            budget: if budget_q < 5 {
                Budget::unlimited()
            } else {
                Budget::questions(budget_q)
            },
            ..CrowdConfig::default()
        };
        let explicit = CrowdConfig {
            aggregation: AggregationMode::Plurality,
            // Wild, even invalid-for-DS knobs: all inert under plurality.
            quality: DawidSkeneConfig {
                em_iterations: ds_em,
                posterior_confident: ds_conf,
                escalate_below: ds_conf,
                prior_quality: 0.999,
                prior_strength: 0.0,
            },
            ..base.clone()
        };
        let script = |config: CrowdConfig| -> (Vec<AskOutcome>, katara_crowd::CrowdStats) {
            let mut crowd = Crowd::new(config, FixedOracle(Answer::Bool(true))).unwrap();
            let outcomes = (0..asks)
                .map(|i| {
                    if i % 3 == 0 {
                        crowd.ask(&choice_q(&format!("{i}"), 3))
                    } else {
                        crowd.ask(&fact_q(&format!("{i}")))
                    }
                })
                .collect();
            (outcomes, crowd.stats().clone())
        };
        prop_assert_eq!(script(base), script(explicit));
    }

    /// The full Dawid–Skene ask loop is deterministic per seed: two
    /// platforms with the same config replay the same outcomes and the
    /// same statistics, answer for answer.
    #[test]
    fn dawid_skene_ask_loop_is_deterministic(
        seed in 0u64..1000,
        accuracy in 0.5f64..=1.0,
        spam in 0.0f64..0.5,
        asks in 5usize..25,
    ) {
        let config = CrowdConfig {
            worker_accuracy: accuracy,
            seed,
            faults: FaultPlan {
                seed,
                spammer_fraction: spam,
                ..FaultPlan::default()
            },
            aggregation: AggregationMode::DawidSkene,
            ..CrowdConfig::default()
        };
        let script = |config: CrowdConfig| -> (Vec<AskOutcome>, katara_crowd::CrowdStats) {
            let mut crowd = Crowd::new(config, FixedOracle(Answer::Bool(true))).unwrap();
            let outcomes = (0..asks).map(|i| crowd.ask(&fact_q(&format!("{i}")))).collect();
            (outcomes, crowd.stats().clone())
        };
        prop_assert_eq!(script(config.clone()), script(config));
    }
}
