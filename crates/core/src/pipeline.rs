//! The end-to-end KATARA pipeline (§2, Fig. 9): pattern discovery →
//! pattern validation → data annotation → possible repairs, plus multi-KB
//! selection (a §9 future-work item implemented here).

use std::sync::Arc;

use katara_crowd::{Crowd, CrowdStats, Oracle};
use katara_exec::{Deadline, Threads};
use katara_kb::{EnrichmentDelta, Kb};
use katara_obs::{Counter, Gauge, NoopRecorder, Recorder, Span};
use katara_table::Table;

use crate::annotation::{annotate_resolved, AnnotationConfig, AnnotationResult};
use crate::candidates::{
    discover_candidates, discover_candidates_direct, discover_candidates_resolved, CandidateConfig,
};
use crate::error::KataraError;
use crate::pattern::TablePattern;
use crate::rank_join::{discover_topk_with_stats, DiscoveryConfig, DiscoveryStats};
use crate::repair::{generate_repairs_resolved, Repair, RepairConfig, RepairIndex};
use crate::resolve::{ResolveMode, TableResolution};
use crate::validation::{validate_patterns, SchedulingStrategy, ValidationConfig};

/// End-to-end configuration.
#[derive(Debug, Clone)]
pub struct KataraConfig {
    /// Candidate discovery knobs (§4.1).
    pub candidates: CandidateConfig,
    /// Rank-join knobs (§4.3).
    pub discovery: DiscoveryConfig,
    /// How many patterns to hand to validation (the paper's top-k).
    pub patterns_k: usize,
    /// Validation knobs (§5).
    pub validation: ValidationConfig,
    /// Scheduling strategy (MUVF by default).
    pub strategy: SchedulingStrategy,
    /// Annotation knobs (§6.1).
    pub annotation: AnnotationConfig,
    /// Repair knobs (§6.2).
    pub repair: RepairConfig,
    /// How many possible repairs per erroneous tuple (paper fixes 3).
    pub repairs_k: usize,
    /// Worker threads for repair generation over erroneous tuples.
    /// (Candidate discovery reads its own [`CandidateConfig::threads`];
    /// the CLI sets both from one `--threads` flag.) Results are
    /// byte-identical for every thread count.
    pub threads: Threads,
    /// How cell→KB lookups are served: [`ResolveMode::Snapshot`] (the
    /// default) builds one read-only [`TableResolution`] per run and
    /// shares it across all stages and workers; [`ResolveMode::Direct`]
    /// reproduces the historical per-stage live queries. Output is
    /// byte-identical either way.
    pub resolve: ResolveMode,
    /// Observability sink for the whole run: phase spans, KB-probe and
    /// snapshot-tier counters, crowd-spend accounting. The pipeline
    /// injects this recorder into every stage config it runs (the
    /// per-stage `recorder` fields are overridden), so setting it here is
    /// enough to instrument a full `clean`. Defaults to [`NoopRecorder`].
    pub recorder: Arc<dyn Recorder>,
    /// Per-run wall-clock deadline, checked cooperatively at phase
    /// boundaries, inside the validation scheduler and annotation row
    /// loops, by every repair worker, and before every crowd ask (the
    /// pipeline injects it into the stage configs and the crowd, like the
    /// recorder). Expiry before discovery yields a pattern errors with
    /// [`KataraError::DeadlineExceeded`]; later expiry completes with a
    /// partial report whose finished-phase prefix is identical to the
    /// undeadlined run. Inert by default.
    pub deadline: Deadline,
}

impl Default for KataraConfig {
    fn default() -> Self {
        KataraConfig {
            candidates: CandidateConfig::default(),
            discovery: DiscoveryConfig::default(),
            patterns_k: 5,
            validation: ValidationConfig::default(),
            strategy: SchedulingStrategy::Muvf,
            annotation: AnnotationConfig::default(),
            repair: RepairConfig::default(),
            repairs_k: 3,
            threads: Threads::auto(),
            resolve: ResolveMode::default(),
            recorder: Arc::new(NoopRecorder),
            deadline: Deadline::none(),
        }
    }
}

/// Everything a cleaning run produces.
#[derive(Debug)]
pub struct CleaningReport {
    /// The crowd-validated table pattern.
    pub pattern: TablePattern,
    /// Variables the validation phase had to ask about.
    pub variables_validated: usize,
    /// Search effort of pattern discovery.
    pub discovery_stats: DiscoveryStats,
    /// Per-tuple annotations and enrichment counts.
    pub annotation: AnnotationResult,
    /// For each erroneous row: its top-k possible repairs. Unresolved
    /// rows never appear here.
    pub repairs: Vec<(usize, Vec<Repair>)>,
    /// How much the unreliable-crowd machinery had to intervene.
    pub degradation: DegradationReport,
}

impl CleaningReport {
    /// The KB mutations this run performed through enrichment (§6.1),
    /// captured as a replayable [`EnrichmentDelta`]. Durable callers
    /// journal this before acknowledging the run; applying it to a copy
    /// of the pre-run KB reproduces the post-run store byte for byte.
    pub fn enrichment(&self) -> &EnrichmentDelta {
        &self.annotation.delta
    }
}

/// Degradation accounting for one cleaning run: what the retry, fault,
/// and budget machinery did. All counters cover only this run, even when
/// the crowd was used before.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Question attempts re-issued after a no-quorum attempt.
    pub questions_retried: usize,
    /// Extra replicas requested by retry escalation.
    pub escalations: usize,
    /// Replica slots lost to worker dropout.
    pub dropouts: usize,
    /// Replica slots lost to worker abstention.
    pub abstentions: usize,
    /// Questions that never reached a quorum even after retries.
    pub no_quorum_questions: usize,
    /// Ask attempts denied outright by the budget.
    pub budget_denied: usize,
    /// True once the crowd budget ran dry during the run.
    pub budget_exhausted: bool,
    /// True when validation stopped early and the pattern is only the
    /// best seen so far.
    pub pattern_partially_validated: bool,
    /// Validation variables skipped for lack of quorum (score-order
    /// fallback applied).
    pub no_quorum_variables: usize,
    /// Tuples annotated [`Unresolved`](crate::annotation::TupleStatus::Unresolved).
    pub unresolved_tuples: usize,
    /// Total simulated worker latency for the run, in milliseconds.
    pub simulated_latency_ms: u64,
    /// Input lines/records quarantined during lenient ingestion of the
    /// run's KB and table (folded in via
    /// [`IngestSummary::apply_to`](crate::ingest::IngestSummary::apply_to)).
    pub ingest_quarantined: usize,
    /// Hierarchy edges the KB ingest audit dropped to break cycles.
    pub ingest_repaired_edges: usize,
    /// Crowd questions asked during this run — the paper's §5 cost
    /// metric. Informational: spending budget is not degradation, so
    /// [`Self::is_degraded`] ignores it.
    pub questions_asked: usize,
    /// Questions the budget still allows after the run (`None` when the
    /// question budget is unlimited). Informational, like
    /// [`Self::questions_asked`].
    pub budget_remaining: Option<usize>,
    /// True when the run's [`Deadline`] expired at a cancellation point
    /// and the report is a partial (but untorn) result.
    pub deadline_expired: bool,
    /// The first pipeline phase affected by deadline expiry
    /// (`"validate"`, `"annotate"` or `"repair"`); every phase before it
    /// completed normally and is identical to an undeadlined run.
    pub deadline_phase: Option<&'static str>,
    /// Crowd asks denied because the deadline had expired.
    pub deadline_denied: usize,
    /// Enrichment ops the caller could not persist durably (journal
    /// append failed after retries). The cleaning *report* is still
    /// complete — only the KB side-effects were dropped — but a restart
    /// would forget them, so this counts as degradation. Always zero for
    /// non-durable (journal-less) runs.
    pub enrichment_dropped: usize,
    /// Asks the Dawid–Skene aggregator settled by posterior confidence
    /// (always zero under plurality). Informational, like
    /// [`Self::questions_asked`]: trusting good workers is not
    /// degradation.
    pub posterior_confident: usize,
    /// Replica slots adaptive replication never had to issue (Dawid–
    /// Skene only). Informational — saved money, not lost answers.
    pub questions_saved: usize,
}

impl DegradationReport {
    /// True when anything at all deviated from the reliable-crowd,
    /// clean-input path.
    pub fn is_degraded(&self) -> bool {
        self.questions_retried > 0
            || self.dropouts > 0
            || self.abstentions > 0
            || self.no_quorum_questions > 0
            || self.budget_denied > 0
            || self.budget_exhausted
            || self.pattern_partially_validated
            || self.no_quorum_variables > 0
            || self.unresolved_tuples > 0
            || self.ingest_quarantined > 0
            || self.ingest_repaired_edges > 0
            || self.deadline_expired
            || self.enrichment_dropped > 0
    }
}

/// The KATARA system: one KB, one crowd, one configuration.
#[derive(Debug, Clone)]
pub struct Katara {
    config: KataraConfig,
}

impl Default for Katara {
    fn default() -> Self {
        Katara::new(KataraConfig::default())
    }
}

impl Katara {
    /// Create a pipeline with the given configuration.
    pub fn new(config: KataraConfig) -> Self {
        Katara { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &KataraConfig {
        &self.config
    }

    /// Run the full pipeline on `table` against `kb` with `crowd`.
    ///
    /// The KB is mutated by enrichment (§6.1). Errors with
    /// [`KataraError::NoPatternFound`] when discovery produces nothing —
    /// the paper's "KATARA will terminate" case.
    pub fn clean<O: Oracle>(
        &self,
        table: &Table,
        kb: &mut Kb,
        crowd: &mut Crowd<O>,
    ) -> Result<CleaningReport, KataraError> {
        self.clean_with_resolution(table, kb, crowd, None)
    }

    /// Like [`clean`](Self::clean), with an optional pre-built
    /// [`TableResolution`] for `(table, kb)`. Injecting one skips the
    /// snapshot build (the cold half of the resolve bench measures
    /// exactly that build); pass `None` for normal operation, where the
    /// snapshot is built here once per run when
    /// [`KataraConfig::resolve`] is [`ResolveMode::Snapshot`].
    pub fn clean_with_resolution<O: Oracle>(
        &self,
        table: &Table,
        kb: &mut Kb,
        crowd: &mut Crowd<O>,
        shared: Option<&TableResolution>,
    ) -> Result<CleaningReport, KataraError> {
        // One recorder for the whole run: KataraConfig's wins — it is
        // injected into every stage config the pipeline actually runs.
        // The deadline travels the same way, plus into the crowd, so all
        // cancellation points consult one shared cutoff.
        let rec = self.config.recorder.clone();
        let dl = self.config.deadline.clone();
        crowd.set_deadline(dl.clone());
        let candidates_cfg = CandidateConfig {
            recorder: rec.clone(),
            ..self.config.candidates.clone()
        };
        let discovery_cfg = DiscoveryConfig {
            recorder: rec.clone(),
            ..self.config.discovery.clone()
        };
        let validation_cfg = ValidationConfig {
            deadline: dl.clone(),
            ..self.config.validation.clone()
        };
        let annotation_cfg = AnnotationConfig {
            deadline: dl.clone(),
            ..self.config.annotation.clone()
        };
        let repair_cfg = RepairConfig {
            recorder: rec.clone(),
            deadline: dl.clone(),
            ..self.config.repair.clone()
        };
        // Expiry before any pattern exists leaves nothing to degrade to.
        if dl.expired() {
            return Err(KataraError::DeadlineExceeded { phase: "resolve" });
        }
        let root = Span::enter(rec.as_ref(), "clean");
        rec.set_gauge(Gauge::TableRows, table.num_rows() as u64);
        rec.set_gauge(Gauge::TableColumns, table.num_columns() as u64);
        // Snapshot crowd stats so the degradation report covers only
        // this run; `asked_mark` advances per phase to split the crowd
        // spend between validation and annotation.
        let stats_before = crowd.stats().clone();
        let mut asked_mark: CrowdStats = stats_before.clone();
        // (0) The shared query snapshot: adopt the injected one, or
        // build it once for the whole run.
        let built;
        let resolution: Option<&TableResolution> = {
            let _span = Span::enter(rec.as_ref(), "resolve");
            match (self.config.resolve, shared) {
                (_, Some(r)) => Some(r),
                (ResolveMode::Snapshot, None) => {
                    built = TableResolution::build(table, kb, self.config.candidates.max_rows)
                        .with_recorder(rec.clone());
                    Some(&built)
                }
                (ResolveMode::Direct, None) => None,
            }
        };
        if dl.expired() {
            return Err(KataraError::DeadlineExceeded { phase: "discover" });
        }
        // (1) Pattern discovery.
        let (patterns, discovery_stats) = {
            let _span = Span::enter(rec.as_ref(), "discover");
            let cands = match resolution {
                Some(res) => discover_candidates_resolved(table, kb, res, &candidates_cfg),
                None => discover_candidates_direct(table, kb, &candidates_cfg),
            };
            discover_topk_with_stats(table, kb, &cands, self.config.patterns_k, &discovery_cfg)
        };
        if patterns.is_empty() {
            return Err(KataraError::NoPatternFound {
                table: table.name().to_string(),
                kb: kb.name().to_string(),
            });
        }

        // From here on the deadline degrades instead of erroring:
        // discovery produced a pattern, so there is always a coherent
        // partial report to return. `deadline_phase` records the first
        // phase expiry touched; everything before it is byte-identical
        // to an undeadlined run.
        let mut deadline_phase: Option<&'static str> = None;
        let mark_phase = |phase: &'static str, deadline_phase: &mut Option<&'static str>| {
            if dl.triggered() && deadline_phase.is_none() {
                *deadline_phase = Some(phase);
            }
        };

        // (2) Pattern validation via the crowd. The scheduler loop and
        // the crowd's ask loop both check the deadline; at the phase
        // boundary an already-expired deadline skips the crowd entirely
        // and falls back to discovery-score order, exactly like a
        // zero-question budget.
        let outcome = {
            let _span = Span::enter(rec.as_ref(), "validate");
            if dl.expired() {
                let mut patterns = patterns;
                patterns.sort_by(|a, b| b.score().total_cmp(&a.score()));
                let pattern = patterns
                    .into_iter()
                    .next()
                    .expect("non-empty checked above");
                crate::validation::ValidationOutcome {
                    pattern,
                    variables_validated: 0,
                    questions_asked: 0,
                    fully_validated: false,
                    no_quorum_variables: 0,
                }
            } else {
                validate_patterns(
                    table,
                    kb,
                    patterns,
                    crowd,
                    &validation_cfg,
                    self.config.strategy,
                )
            }
        };
        mark_phase("validate", &mut deadline_phase);
        record_phase_questions(
            rec.as_ref(),
            crowd.stats(),
            &mut asked_mark,
            Counter::ValidationQuestions,
        );
        rec.incr_by(
            Counter::ValidationNoQuorumVariables,
            outcome.no_quorum_variables as u64,
        );
        let pattern = outcome.pattern;

        // (3) Data annotation (mutates the KB through enrichment — the
        // snapshot notices the version bump and serves live results
        // from then on).
        let annotation = {
            let _span = Span::enter(rec.as_ref(), "annotate");
            annotate_resolved(table, &pattern, kb, crowd, &annotation_cfg, resolution)
        };
        mark_phase("annotate", &mut deadline_phase);
        record_phase_questions(
            rec.as_ref(),
            crowd.stats(),
            &mut asked_mark,
            Counter::AnnotationCrowdQuestions,
        );
        rec.incr_by(
            Counter::AnnotationEnrichedFacts,
            annotation.enriched_facts as u64,
        );
        rec.incr_by(
            Counter::AnnotationEnrichedEntities,
            annotation.enriched_entities as u64,
        );

        // (4) Top-k possible repairs for the erroneous tuples. The index
        // is built after annotation so enriched facts contribute
        // instance graphs; the *effective* pattern (after annotation-time
        // feedback) drives repair.
        let effective = annotation.pattern.clone();
        let repairs = {
            let _span = Span::enter(rec.as_ref(), "repair");
            // Repair itself never spends budget, but it operates on an
            // annotation the exhausted budget truncated — record the
            // early stop so metrics and the report agree.
            if crowd.is_budget_exhausted() {
                rec.incr(Counter::RepairBudgetStopped);
            }
            if dl.expired() {
                deadline_phase.get_or_insert("repair");
                Vec::new()
            } else {
                let index = RepairIndex::build(kb, &effective, &repair_cfg);
                // Repair only consumes the snapshot's string tier (normalized
                // cells), which never goes stale — safe even after enrichment.
                generate_repairs_resolved(
                    &index,
                    kb,
                    &effective,
                    table,
                    &annotation.erroneous_rows(),
                    self.config.repairs_k,
                    &repair_cfg,
                    self.config.threads,
                    resolution,
                )
            }
        };
        mark_phase("repair", &mut deadline_phase);

        let run_stats = crowd.stats().since(&stats_before);
        rec.incr_by(Counter::CrowdQuestionsAsked, run_stats.questions() as u64);
        rec.incr_by(
            Counter::CrowdQuestionsRetried,
            run_stats.questions_retried as u64,
        );
        rec.incr_by(
            Counter::CrowdNoQuorumQuestions,
            run_stats.no_quorum_questions as u64,
        );
        rec.incr_by(Counter::CrowdBudgetDenied, run_stats.budget_denied as u64);
        record_quality_counters(rec.as_ref(), &run_stats);
        if let Some(remaining) = crowd.budget_remaining() {
            rec.set_gauge(Gauge::CrowdBudgetRemaining, remaining as u64);
        }
        drop(root);
        let degradation = DegradationReport {
            questions_retried: run_stats.questions_retried,
            escalations: run_stats.escalations,
            dropouts: run_stats.dropouts,
            abstentions: run_stats.abstentions,
            no_quorum_questions: run_stats.no_quorum_questions,
            budget_denied: run_stats.budget_denied,
            budget_exhausted: crowd.is_budget_exhausted(),
            pattern_partially_validated: !outcome.fully_validated,
            no_quorum_variables: outcome.no_quorum_variables,
            unresolved_tuples: annotation.unresolved_rows().len(),
            simulated_latency_ms: run_stats.simulated_latency_ms,
            // `clean` receives an already-loaded KB/table; callers that
            // ingested leniently fold their IngestSummary in afterwards.
            ingest_quarantined: 0,
            ingest_repaired_edges: 0,
            questions_asked: run_stats.questions(),
            budget_remaining: crowd.budget_remaining(),
            deadline_expired: deadline_phase.is_some(),
            deadline_phase,
            deadline_denied: run_stats.deadline_denied,
            // Durability is the caller's concern: `clean` applies
            // enrichment in-memory only, so nothing can be dropped here.
            enrichment_dropped: 0,
            posterior_confident: run_stats.posterior_confident,
            questions_saved: run_stats.questions_saved,
        };

        Ok(CleaningReport {
            pattern: effective,
            variables_validated: outcome.variables_validated,
            discovery_stats,
            annotation,
            repairs,
            degradation,
        })
    }
}

/// Export the crowd questions asked since `mark` under `counter`, then
/// advance `mark` to the crowd's current totals — splits one crowd's
/// spend between consecutive pipeline phases without touching the phase
/// signatures.
pub(crate) fn record_phase_questions(
    rec: &dyn Recorder,
    now: &CrowdStats,
    mark: &mut CrowdStats,
    counter: Counter,
) {
    rec.incr_by(counter, now.since(mark).questions() as u64);
    *mark = now.clone();
}

/// Export the worker-quality-inference counters from one run's crowd
/// stats delta — shared by the full and the delta pipelines.
pub(crate) fn record_quality_counters(rec: &dyn Recorder, run_stats: &CrowdStats) {
    rec.incr_by(Counter::CrowdEscalations, run_stats.escalations as u64);
    rec.incr_by(Counter::CrowdEmIterations, run_stats.em_iterations as u64);
    rec.incr_by(
        Counter::CrowdPosteriorConfident,
        run_stats.posterior_confident as u64,
    );
    rec.incr_by(
        Counter::CrowdQuestionsSaved,
        run_stats.questions_saved as u64,
    );
}

/// Multi-KB selection (§2: "the pattern discovery module can be used to
/// select the more relevant KB for a given dataset"; §9 future work).
/// Returns the index of the KB whose best pattern scores highest, with
/// that score — or `None` if no KB yields any pattern.
pub fn select_kb(
    table: &Table,
    kbs: &[&Kb],
    candidates: &CandidateConfig,
    discovery: &DiscoveryConfig,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, kb) in kbs.iter().enumerate() {
        let cands = discover_candidates(table, kb, candidates);
        let (patterns, _) = discover_topk_with_stats(table, kb, &cands, 1, discovery);
        if let Some(p) = patterns.first() {
            if best.is_none_or(|(_, s)| p.score() > s) {
                best = Some((i, p.score()));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use katara_crowd::{Answer, CrowdConfig, Question};

    /// A compact world: countries, capitals, players; the KB misses one
    /// capital fact and the table has one true error.
    fn setting() -> (Kb, Table) {
        let mut b = katara_kb::KbBuilder::new().with_name("mini-yago");
        let person = b.class("person");
        let country = b.class("country");
        let capital = b.class("capital");
        let nationality = b.property("nationality");
        let has_capital = b.property("hasCapital");
        let pairs = [
            ("Rossi", "Italy", "Rome"),
            ("Klate", "S. Africa", "Pretoria"),
            ("Pirlo", "Italy", "Rome"),
            ("Ramos", "Spain", "Madrid"),
            ("Benzema", "France", "Paris"),
        ];
        for (p, c, cap) in pairs {
            let rp = b.entity(p, &[person]);
            let rc = b.entity(c, &[country]);
            let rcap = b.entity(cap, &[capital]);
            b.fact(rp, nationality, rc);
            // KB incompleteness: S. Africa's capital fact is missing.
            if c != "S. Africa" {
                b.fact(rc, has_capital, rcap);
            }
        }
        let kb = b.finalize();

        let mut t = Table::with_opaque_columns("soccer", 3);
        t.push_text_row(&["Rossi", "Italy", "Rome"]);
        t.push_text_row(&["Klate", "S. Africa", "Pretoria"]);
        t.push_text_row(&["Pirlo", "Italy", "Madrid"]); // the error
        t.push_text_row(&["Ramos", "Spain", "Madrid"]);
        (kb, t)
    }

    /// Ground truth oracle: knows the correct pattern and the real world.
    fn oracle() -> impl Oracle {
        |q: &Question| match q {
            Question::ColumnType {
                column, candidates, ..
            } => {
                let want = ["person", "country", "capital"][*column];
                match candidates.iter().position(|c| c == want) {
                    Some(i) => Answer::Choice(i),
                    None => Answer::NoneOfTheAbove,
                }
            }
            Question::Relationship {
                columns,
                candidates,
                ..
            } => {
                let want = match columns {
                    (0, 1) => "nationality",
                    (1, 2) => "hasCapital",
                    _ => "",
                };
                match candidates
                    .iter()
                    .position(|c| c.contains(want) && !want.is_empty())
                {
                    Some(i) => Answer::Choice(i),
                    None => Answer::NoneOfTheAbove,
                }
            }
            Question::Fact {
                subject,
                property,
                object,
            } => Answer::Bool(matches!(
                (subject.as_str(), property.as_str(), object.as_str()),
                ("S. Africa", "hasCapital", "Pretoria") | ("Klate", "nationality", "S. Africa")
            )),
        }
    }

    fn crowd() -> Crowd<impl Oracle> {
        Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.0,
                ..CrowdConfig::default()
            },
            oracle(),
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_clean() {
        let (mut kb, t) = setting();
        let katara = Katara::default();
        let mut crowd = crowd();
        let report = katara.clean(&t, &mut kb, &mut crowd).unwrap();

        // The validated pattern covers all three columns.
        assert_eq!(report.pattern.typed_columns(), vec![0, 1, 2]);
        // Row 2 (Pirlo/Italy/Madrid) is the only erroneous tuple.
        assert_eq!(report.annotation.erroneous_rows(), vec![2]);
        // Its top repair fixes Madrid to Rome.
        let (row, repairs) = &report.repairs[0];
        assert_eq!(*row, 2);
        assert!(!repairs.is_empty());
        assert!(repairs[0]
            .changes
            .iter()
            .any(|(col, val)| *col == 2 && val == "Rome"));
        // Enrichment inserted the missing S. Africa capital fact.
        assert!(report.annotation.enriched_facts >= 1);
    }

    #[test]
    fn reliable_run_reports_no_degradation() {
        let (mut kb, t) = setting();
        let katara = Katara::default();
        let mut crowd = crowd();
        let report = katara.clean(&t, &mut kb, &mut crowd).unwrap();
        assert!(
            !report.degradation.is_degraded(),
            "{:?}",
            report.degradation
        );
        // Everything except the informational cost accounting is at its
        // clean-run default; crowd cost itself is nonzero but benign.
        assert!(report.degradation.questions_asked > 0);
        assert_eq!(
            report.degradation,
            DegradationReport {
                questions_asked: report.degradation.questions_asked,
                budget_remaining: report.degradation.budget_remaining,
                ..DegradationReport::default()
            }
        );
    }

    #[test]
    fn faulty_run_completes_and_reports_degradation() {
        let (mut kb, t) = setting();
        let katara = Katara::default();
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.0,
                faults: katara_crowd::FaultPlan {
                    dropout_rate: 0.4,
                    abstain_rate: 0.2,
                    latency_ms: (5, 50),
                    ..katara_crowd::FaultPlan::default()
                },
                ..CrowdConfig::default()
            },
            oracle(),
        )
        .unwrap();
        let report = katara
            .clean(&t, &mut kb, &mut crowd)
            .expect("pipeline must survive a faulty crowd");
        let d = &report.degradation;
        assert!(d.is_degraded());
        assert!(d.dropouts > 0);
        assert!(d.abstentions > 0);
        assert!(d.simulated_latency_ms > 0);
        // Counters in the report match the crowd's own accounting (the
        // crowd was fresh, so no snapshot offset).
        let s = crowd.stats();
        assert_eq!(d.dropouts, s.dropouts);
        assert_eq!(d.abstentions, s.abstentions);
        assert_eq!(d.questions_retried, s.questions_retried);
        assert_eq!(d.no_quorum_questions, s.no_quorum_questions);
        // No repairs are generated for unresolved rows.
        for (row, _) in &report.repairs {
            assert!(!report.annotation.unresolved_rows().contains(row));
        }
    }

    #[test]
    fn no_pattern_errors_out() {
        let (mut kb, _) = setting();
        let mut t = Table::with_opaque_columns("gibberish", 2);
        t.push_text_row(&["Xqz", "Wvu"]);
        let katara = Katara::default();
        let mut crowd = crowd();
        let err = katara.clean(&t, &mut kb, &mut crowd).unwrap_err();
        assert!(matches!(err, KataraError::NoPatternFound { .. }));
    }

    #[test]
    fn pre_discovery_deadline_errors_out() {
        let (mut kb, t) = setting();
        let katara = Katara::new(KataraConfig {
            deadline: Deadline::after_checks(0),
            ..KataraConfig::default()
        });
        let mut crowd = crowd();
        let err = katara.clean(&t, &mut kb, &mut crowd).unwrap_err();
        assert!(matches!(
            err,
            KataraError::DeadlineExceeded { phase: "resolve" }
        ));
        // An externally cancelled run behaves the same way.
        let dl = Deadline::after_checks(1_000_000);
        dl.cancel();
        let katara = Katara::new(KataraConfig {
            deadline: dl,
            ..KataraConfig::default()
        });
        let err = katara.clean(&t, &mut kb, &mut crowd).unwrap_err();
        assert!(matches!(err, KataraError::DeadlineExceeded { .. }));
    }

    #[test]
    fn mid_run_deadline_degrades_instead_of_erroring() {
        // Checks consumed before validation: clean entry, post-resolve,
        // and the validate-boundary check itself.
        //
        // n = 2 trips at the validate boundary: validation is skipped
        // and the top-scored pattern is taken unvalidated.
        let (mut kb, t) = setting();
        let katara = Katara::new(KataraConfig {
            deadline: Deadline::after_checks(2),
            ..KataraConfig::default()
        });
        let mut crowd = crowd();
        let report = katara
            .clean(&t, &mut kb, &mut crowd)
            .expect("post-discovery expiry must degrade, not error");
        let d = &report.degradation;
        assert!(d.deadline_expired);
        assert_eq!(d.deadline_phase, Some("validate"));
        assert!(d.is_degraded());
        assert!(d.pattern_partially_validated);
        assert_eq!(report.variables_validated, 0);

        // n = 3 survives validation (this tiny world discovers a single
        // pattern, so MUVF has nothing to ask) and trips on the first
        // annotation row: every tuple degrades to Unresolved and repair
        // is skipped.
        let (mut kb3, t3) = setting();
        let katara3 = Katara::new(KataraConfig {
            deadline: Deadline::after_checks(3),
            ..KataraConfig::default()
        });
        let mut crowd3 = self::crowd();
        let report3 = katara3.clean(&t3, &mut kb3, &mut crowd3).unwrap();
        let d3 = &report3.degradation;
        assert_eq!(d3.deadline_phase, Some("annotate"));
        assert_eq!(d3.unresolved_tuples, t3.num_rows());
        assert!(report3.repairs.is_empty());

        // The completed prefix matches an undeadlined run: discovery
        // statistics (and for n = 3 the validated pattern) are identical.
        let (mut kb2, t2) = setting();
        let mut crowd2 = self::crowd();
        let full = Katara::default().clean(&t2, &mut kb2, &mut crowd2).unwrap();
        assert_eq!(
            report.discovery_stats, full.discovery_stats,
            "phases before the expiry must be byte-identical"
        );
        assert_eq!(
            format!("{:?}", report3.pattern),
            format!("{:?}", full.pattern)
        );
    }

    #[test]
    fn inert_deadline_matches_no_deadline_run() {
        let (mut kb_a, t) = setting();
        let (mut kb_b, _) = setting();
        let mut crowd_a = crowd();
        let mut crowd_b = crowd();
        let a = Katara::default()
            .clean(&t, &mut kb_a, &mut crowd_a)
            .unwrap();
        let b = Katara::new(KataraConfig {
            deadline: Deadline::none(),
            ..KataraConfig::default()
        })
        .clean(&t, &mut kb_b, &mut crowd_b)
        .unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn select_kb_prefers_the_covering_kb() {
        let (kb_good, t) = setting();
        // A KB about something else entirely.
        let mut b = katara_kb::KbBuilder::new().with_name("mini-imdb");
        let film = b.class("film");
        b.entity("Vertigo", &[film]);
        let kb_bad = b.finalize();

        let pick = select_kb(
            &t,
            &[&kb_bad, &kb_good],
            &CandidateConfig::default(),
            &DiscoveryConfig::default(),
        );
        let (idx, score) = pick.expect("the good KB yields a pattern");
        assert_eq!(idx, 1);
        assert!(score > 0.0);
    }

    #[test]
    fn select_kb_none_when_nothing_matches() {
        let mut b = katara_kb::KbBuilder::new();
        let film = b.class("film");
        b.entity("Vertigo", &[film]);
        let kb = b.finalize();
        let mut t = Table::with_opaque_columns("t", 1);
        t.push_text_row(&["Nonsense"]);
        assert!(select_kb(
            &t,
            &[&kb],
            &CandidateConfig::default(),
            &DiscoveryConfig::default()
        )
        .is_none());
    }
}
