#!/usr/bin/env bash
# Validate the schema of a BENCH_*.json report (crates/bench/src/perf.rs).
# Five shapes exist: thread-scaling reports (samples keyed by
# "threads"), the resolve report (samples keyed by "config": cold vs
# cold_legacy vs snapshot, plus "distinct_ratio", "triples",
# "index_build_ms", and the kb.plan_* probe-planner counters), the
# serve report (samples keyed by "config" and "concurrency", with req/s
# and latency percentiles), the incremental report (samples keyed by
# "config": full vs delta, at several "edit_rate"s, each carrying its
# discovery+repair "work_counters" sum), and the crowd report (samples
# keyed by fault "plan" and aggregation mode "agg", with
# accuracy-at-budget figures and the crowd.* quality counters). The
# file's "bench" field picks the shape.
# Usage: check_bench_schema.sh FILE...
set -euo pipefail

if [ "$#" -eq 0 ]; then
  echo "usage: $0 BENCH_<name>.json..." >&2
  exit 2
fi

status=0
for file in "$@"; do
  if [ ! -f "$file" ]; then
    echo "$file: missing" >&2
    status=1
    continue
  fi
  ok=1
  for key in '"bench"' '"fixture"' '"mode"' '"parallelism"' '"samples"'; do
    if ! grep -q "$key" "$file"; then
      echo "$file: missing key $key" >&2
      ok=0
    fi
  done
  # mode must be quick or full.
  if ! grep -Eq '"mode": "(quick|full)"' "$file"; then
    echo "$file: \"mode\" must be \"quick\" or \"full\"" >&2
    ok=0
  fi
  # parallelism is a bare integer.
  if ! grep -Eq '"parallelism": [0-9]+,' "$file"; then
    echo "$file: \"parallelism\" must be an integer" >&2
    ok=0
  fi
  # Embedded run metrics: every bench that writes a report also embeds
  # the katara-obs metrics of one instrumented run.
  if ! grep -q '"metrics": {' "$file"; then
    echo "$file: missing embedded \"metrics\" object" >&2
    ok=0
  fi
  if ! grep -q '"schema": "katara-run-metrics/v1"' "$file"; then
    echo "$file: embedded metrics missing the katara-run-metrics/v1 schema tag" >&2
    ok=0
  fi
  if grep -Eq '"bench": "resolve"' "$file"; then
    # Resolve report: cold-vs-snapshot end-to-end clean, plus the
    # columnar-store fields (fixture scale, index-build cost, a
    # legacy-backend cold baseline, and the probe-planner counters).
    if ! grep -Eq '"distinct_ratio": [0-9]+\.[0-9]+,' "$file"; then
      echo "$file: missing numeric \"distinct_ratio\"" >&2
      ok=0
    fi
    if ! grep -Eq '"triples": [0-9]+,' "$file"; then
      echo "$file: missing integer \"triples\" (KB size the probes ran at)" >&2
      ok=0
    fi
    if ! grep -Eq '"index_build_ms": [0-9]+\.[0-9]+,' "$file"; then
      echo "$file: missing numeric \"index_build_ms\" (columnar arena build cost)" >&2
      ok=0
    fi
    for counter in kb.plan_type_first kb.plan_rel_first; do
      if ! grep -Eq '"'"$counter"'": [0-9]+' "$file"; then
        echo "$file: embedded metrics missing the \"$counter\" probe-plan counter" >&2
        ok=0
      fi
    done
    for config in cold cold_legacy snapshot; do
      if ! grep -Eq '\{ "config": "'"$config"'", "iters": [0-9]+, "wall_ms": [0-9]+\.[0-9]+, "speedup": [0-9]+\.[0-9]+ \}' "$file"; then
        echo "$file: no well-formed \"$config\" sample (config/iters/wall_ms/speedup)" >&2
        ok=0
      fi
    done
  elif grep -Eq '"bench": "serve"' "$file"; then
    # Serve report: daemon throughput/latency, cold vs warm snapshot
    # cache, at two or more concurrency levels.
    for config in cold warm; do
      if ! grep -Eq '\{ "config": "'"$config"'", "concurrency": [0-9]+, "requests": [0-9]+, "req_per_s": [0-9]+\.[0-9]+, "p50_ms": [0-9]+\.[0-9]+, "p99_ms": [0-9]+\.[0-9]+ \}' "$file"; then
        echo "$file: no well-formed \"$config\" sample (config/concurrency/requests/req_per_s/p50_ms/p99_ms)" >&2
        ok=0
      fi
    done
    levels=$(grep -Eo '"concurrency": [0-9]+' "$file" | sort -u | wc -l)
    if [ "$levels" -lt 2 ]; then
      echo "$file: serve report must cover at least 2 concurrency levels (found $levels)" >&2
      ok=0
    fi
  elif grep -Eq '"bench": "incremental"' "$file"; then
    # Incremental report: full re-clean vs delta replay at several edit
    # rates, with the logical-work sum alongside each wall time.
    for config in full delta; do
      if ! grep -Eq '\{ "config": "'"$config"'", "edit_rate": [0-9]+\.[0-9]+, "iters": [0-9]+, "wall_ms": [0-9]+\.[0-9]+, "speedup": [0-9]+\.[0-9]+, "work_counters": [0-9]+ \}' "$file"; then
        echo "$file: no well-formed \"$config\" sample (config/edit_rate/iters/wall_ms/speedup/work_counters)" >&2
        ok=0
      fi
    done
    rates=$(grep -Eo '"edit_rate": [0-9]+\.[0-9]+' "$file" | sort -u | wc -l)
    if [ "$rates" -lt 2 ]; then
      echo "$file: incremental report must cover at least 2 edit rates (found $rates)" >&2
      ok=0
    fi
    # The delta path must record its delta.* counters in the embedded
    # metrics — that is what makes "fraction of full work" auditable.
    for counter in delta.tuples_touched delta.patterns_rescored; do
      if ! grep -Eq '"'"$counter"'": [0-9]+' "$file"; then
        echo "$file: embedded metrics missing the \"$counter\" counter" >&2
        ok=0
      fi
    done
  elif grep -Eq '"bench": "crowd"' "$file"; then
    # Crowd report: plurality vs Dawid–Skene on seeded fault plans at
    # equal worker-answer budget. Every sample carries the spend and
    # quality fields; both aggregation modes must be present.
    for agg in plurality dawid-skene; do
      if ! grep -Eq '\{ "plan": "[^"]+", "agg": "'"$agg"'", "questions": [0-9]+, "answers": [0-9]+, "accuracy": [0-9]+\.[0-9]+, "escalations": [0-9]+, "questions_saved": [0-9]+, "wall_ms": [0-9]+\.[0-9]+ \}' "$file"; then
        echo "$file: no well-formed \"$agg\" sample (plan/agg/questions/answers/accuracy/escalations/questions_saved/wall_ms)" >&2
        ok=0
      fi
    done
    plans=$(grep -Eo '"plan": "[^"]+"' "$file" | sort -u | wc -l)
    if [ "$plans" -lt 2 ]; then
      echo "$file: crowd report must cover at least 2 fault plans (found $plans)" >&2
      ok=0
    fi
    # The embedded metrics must carry the Dawid–Skene quality counters
    # of the instrumented run.
    for counter in crowd.em_iterations crowd.posterior_confident crowd.escalations crowd.questions_saved; do
      if ! grep -Eq '"'"$counter"'": [0-9]+' "$file"; then
        echo "$file: embedded metrics missing the \"$counter\" counter" >&2
        ok=0
      fi
    done
  else
    # Thread-scaling report: at least one sample with all four numeric
    # fields on one line.
    if ! grep -Eq '\{ "threads": [0-9]+, "iters": [0-9]+, "wall_ms": [0-9]+\.[0-9]+, "speedup": [0-9]+\.[0-9]+ \}' "$file"; then
      echo "$file: no well-formed sample (threads/iters/wall_ms/speedup)" >&2
      ok=0
    fi
    # The sweep must include the 1-thread baseline.
    if ! grep -Eq '\{ "threads": 1, ' "$file"; then
      echo "$file: missing the threads=1 baseline sample" >&2
      ok=0
    fi
  fi
  if [ "$ok" -eq 1 ]; then
    echo "$file: schema OK"
  else
    status=1
  fi
done
exit "$status"
