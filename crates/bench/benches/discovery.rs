//! Benches for **Table 2 / Table 3 / Figure 6**: candidate generation and
//! the four pattern-discovery algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use katara_baselines::{maxlike_topk, pgm_topk, support_topk, PgmConfig};
use katara_bench::{bench_corpus, discovery_fixture};
use katara_core::candidates::{discover_candidates, CandidateConfig};
use katara_core::rank_join::{discover_topk, DiscoveryConfig};
use katara_datagen::KbFlavor;

/// Table 3's dominant cost: candidate generation (KB lookups, linear in
/// the scanned tuples).
fn bench_candidate_generation(c: &mut Criterion) {
    let corpus = bench_corpus();
    let mut group = c.benchmark_group("table3_candidate_generation");
    group.sample_size(10);
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let kb = corpus.kb(flavor);
        group.bench_function(BenchmarkId::new("web_table", flavor.name()), |b| {
            b.iter(|| {
                discover_candidates(
                    black_box(&corpus.web[0].table),
                    &kb,
                    &CandidateConfig::default(),
                )
            })
        });
        group.bench_function(BenchmarkId::new("person", flavor.name()), |b| {
            b.iter(|| {
                discover_candidates(
                    black_box(&corpus.person.table),
                    &kb,
                    &CandidateConfig::default(),
                )
            })
        });
    }
    group.finish();
}

/// Table 2/3: the four ranking algorithms over identical candidates.
fn bench_algorithms(c: &mut Criterion) {
    let corpus = bench_corpus();
    let f = discovery_fixture(&corpus, KbFlavor::YagoLike);
    let mut group = c.benchmark_group("table2_discovery_algorithms");
    group.sample_size(10);
    group.bench_function("support", |b| {
        b.iter(|| support_topk(&f.table.table, &f.kb, black_box(&f.cands), 1))
    });
    group.bench_function("maxlike", |b| {
        b.iter(|| maxlike_topk(&f.table.table, &f.kb, black_box(&f.cands), 1))
    });
    group.bench_function("pgm", |b| {
        b.iter(|| {
            pgm_topk(
                &f.table.table,
                &f.kb,
                black_box(&f.cands),
                1,
                &PgmConfig::default(),
            )
        })
    });
    group.bench_function("rankjoin", |b| {
        b.iter(|| {
            discover_topk(
                &f.table.table,
                &f.kb,
                black_box(&f.cands),
                1,
                &DiscoveryConfig::default(),
            )
        })
    });
    group.finish();
}

/// Figure 6: top-k sweeps of the rank-join.
fn bench_topk_sweep(c: &mut Criterion) {
    let corpus = bench_corpus();
    let f = discovery_fixture(&corpus, KbFlavor::YagoLike);
    let mut group = c.benchmark_group("fig6_topk_sweep");
    group.sample_size(10);
    for k in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                discover_topk(
                    &f.table.table,
                    &f.kb,
                    black_box(&f.cands),
                    k,
                    &DiscoveryConfig::default(),
                )
            })
        });
    }
    group.finish();
}

/// Worker-pool scaling of candidate discovery. Besides the Criterion
/// timings this emits `BENCH_discovery.json` at the workspace root
/// (threads x wall-time x speedup; quick mode via `KATARA_BENCH_QUICK=1`).
fn bench_thread_scaling(c: &mut Criterion) {
    use katara_bench::perf;
    use katara_core::Threads;

    let corpus = bench_corpus();
    let kb = corpus.kb(KbFlavor::YagoLike);
    let table = &corpus.web[0].table;
    let mut group = c.benchmark_group("discovery_thread_scaling");
    group.sample_size(10);
    let mut report = perf::ScalingReport::new("discovery", "web_table/yago-like");
    for threads in perf::thread_counts() {
        let config = CandidateConfig {
            threads: Threads::fixed(threads),
            ..CandidateConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| discover_candidates(black_box(table), &kb, &config))
        });
        report.measure(threads, perf::sweep_iters(), || {
            black_box(discover_candidates(table, &kb, &config));
        });
    }
    group.finish();
    // One untimed instrumented run so the report records the workload's
    // logical size (KB probes), not just its wall time.
    let rec = std::sync::Arc::new(katara_obs::RunRecorder::new());
    let instrumented = CandidateConfig {
        threads: Threads::fixed(1),
        recorder: rec.clone(),
        ..CandidateConfig::default()
    };
    black_box(discover_candidates(table, &kb, &instrumented));
    let mut metrics = rec.snapshot();
    metrics.threads = 1;
    report.metrics = Some(metrics);
    let path = report.write().expect("write BENCH_discovery.json");
    eprintln!("thread-scaling report: {}", path.display());
}

criterion_group!(
    benches,
    bench_candidate_generation,
    bench_algorithms,
    bench_topk_sweep,
    bench_thread_scaling
);
criterion_main!(benches);
