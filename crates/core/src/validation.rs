//! Pattern validation via crowdsourcing (§5, Algorithm 3).
//!
//! Given the top-k candidate patterns, validation selects the one the
//! crowd agrees with, variable by variable. A *variable* is a column (its
//! type) or an ordered column pair (its relationship). Each pattern's
//! discovery score is normalized into a probability; the scheduler
//! repeatedly validates the variable with the maximum entropy — which by
//! Theorem 1 equals the maximum expected reduction in pattern uncertainty
//! (MUVF, *most-uncertain-variable-first*) — prunes the disagreeing
//! patterns, and renormalizes, until one pattern remains. The AVI baseline
//! (*all-variables-independent*) validates every variable regardless.
//!
//! Each variable is validated with `q` multiple-choice questions, each
//! exposing `k_t` randomly sampled tuples (Q1/Q2 of §5.1); the plurality
//! answer across the `q` questions wins (and each individual question is
//! already replicated inside the crowd platform).
//!
//! Validation does not consume the shared
//! [`TableResolution`](crate::resolve::TableResolution) snapshot: its
//! questions are phrased from KB class/property *names* and raw table
//! cells — it never resolves cells against the KB, so there is nothing
//! for the snapshot to cache here.

use std::collections::HashMap;

use katara_crowd::{Answer, AskOutcome, Crowd, Oracle, Question};
use katara_exec::Deadline;
use katara_kb::Kb;
use katara_table::Table;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::pattern::TablePattern;

/// Which scheduling policy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingStrategy {
    /// Most-uncertain-variable-first (Algorithm 3) — the paper's method.
    Muvf,
    /// All-variables-independent — the paper's baseline.
    Avi,
}

/// Validation knobs.
#[derive(Debug, Clone)]
pub struct ValidationConfig {
    /// Questions per variable, `q` (Figure 7 sweeps 1..7; 5 suffices).
    pub questions_per_variable: usize,
    /// Tuples shown per question, `k_t` (paper: 5).
    pub tuples_per_question: usize,
    /// Seed for tuple sampling.
    pub seed: u64,
    /// Cooperative cancellation: checked at the top of the scheduler
    /// loop. On expiry validation stops like a budget death — the best
    /// pattern so far is returned flagged as partially validated. Inert
    /// by default; the pipeline injects its run deadline here.
    pub deadline: Deadline,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            questions_per_variable: 5,
            tuples_per_question: 5,
            seed: 0,
            deadline: Deadline::none(),
        }
    }
}

/// The result of a validation run.
#[derive(Debug, Clone)]
pub struct ValidationOutcome {
    /// The single surviving pattern.
    pub pattern: TablePattern,
    /// Number of variables actually validated (Table 4's metric).
    /// Variables attempted but lost to no-quorum are not counted.
    pub variables_validated: usize,
    /// Total crowd questions issued by this run.
    pub questions_asked: usize,
    /// False when the crowd budget ran out mid-schedule and the returned
    /// pattern is merely the best seen so far (highest score among the
    /// survivors at the point validation stopped).
    pub fully_validated: bool,
    /// Variables the crowd was asked about but never reached a quorum
    /// on. These are skipped — the pattern set is left unchanged and the
    /// final choice falls back to discovery-score order for them.
    pub no_quorum_variables: usize,
}

/// A validation variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum VarKey {
    Col(usize),
    Pair(usize, usize),
}

/// The value a pattern assigns to a variable. `None` = the pattern does
/// not cover the variable (possible when mixing patterns from different
/// discovery runs).
type VarValue = Option<u32>;

fn pattern_value(p: &TablePattern, v: VarKey) -> VarValue {
    match v {
        VarKey::Col(c) => p.node_for_column(c).and_then(|n| n.class).map(|c| c.0),
        VarKey::Pair(i, j) => p
            .edges()
            .iter()
            .find(|e| e.subject == i && e.object == j)
            .map(|e| e.property.0),
    }
}

/// Collect the variables appearing in any pattern, in deterministic order.
fn collect_vars(patterns: &[TablePattern]) -> Vec<VarKey> {
    let mut vars: Vec<VarKey> = Vec::new();
    let mut push = |v: VarKey| {
        if !vars.contains(&v) {
            vars.push(v);
        }
    };
    for p in patterns {
        for n in p.nodes() {
            if n.class.is_some() {
                push(VarKey::Col(n.column));
            }
        }
        for e in p.edges() {
            push(VarKey::Pair(e.subject, e.object));
        }
    }
    vars.sort_by_key(|v| match *v {
        VarKey::Col(c) => (0, c, 0),
        VarKey::Pair(i, j) => (1, i, j),
    });
    vars
}

/// Normalize scores into probabilities (uniform if all scores are zero).
fn probabilities(patterns: &[TablePattern]) -> Vec<f64> {
    let total: f64 = patterns.iter().map(|p| p.score().max(0.0)).sum();
    if total <= 0.0 {
        return vec![1.0 / patterns.len() as f64; patterns.len()];
    }
    patterns
        .iter()
        .map(|p| p.score().max(0.0) / total)
        .collect()
}

/// Entropy of a variable under the current pattern distribution:
/// `H(v) = -Σ_a Pr(v=a) log2 Pr(v=a)` (Theorem 1 equates this with the
/// expected uncertainty reduction of validating `v`).
fn variable_entropy(patterns: &[TablePattern], probs: &[f64], v: VarKey) -> f64 {
    let mut mass: HashMap<VarValue, f64> = HashMap::new();
    for (p, &pr) in patterns.iter().zip(probs) {
        *mass.entry(pattern_value(p, v)).or_insert(0.0) += pr;
    }
    -mass
        .values()
        .filter(|&&m| m > 0.0)
        .map(|&m| m * m.log2())
        .sum::<f64>()
}

/// Validate the given patterns and return the survivor.
///
/// `patterns` must be non-empty; single-element input returns immediately
/// with zero questions.
pub fn validate_patterns<O: Oracle>(
    table: &Table,
    kb: &Kb,
    mut patterns: Vec<TablePattern>,
    crowd: &mut Crowd<O>,
    config: &ValidationConfig,
    strategy: SchedulingStrategy,
) -> ValidationOutcome {
    assert!(
        !patterns.is_empty(),
        "validation needs at least one pattern"
    );
    let vars = collect_vars(&patterns);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut validated: Vec<VarKey> = Vec::new();
    let mut questions_asked = 0usize;
    let mut fully_validated = true;
    let mut no_quorum_variables = 0usize;

    let var_order: Vec<VarKey> = vars.clone();
    loop {
        // MUVF stops as soon as one pattern remains; AVI, validating each
        // variable independently, cannot exploit that and goes through the
        // whole variable list (this is exactly the Table 4 contrast).
        let done = match strategy {
            SchedulingStrategy::Muvf => patterns.len() <= 1,
            SchedulingStrategy::Avi => validated.len() == var_order.len(),
        };
        if done {
            break;
        }
        if crowd.is_budget_exhausted() || config.deadline.expired() {
            // Degrade gracefully: stop scheduling and return the best
            // pattern seen so far, flagged as partially validated.
            fully_validated = false;
            break;
        }
        let probs = probabilities(&patterns);
        let next = match strategy {
            SchedulingStrategy::Muvf => {
                // Most uncertain first; skip already-validated and
                // zero-entropy variables.
                let best = vars
                    .iter()
                    .filter(|v| !validated.contains(v))
                    .map(|&v| (v, variable_entropy(&patterns, &probs, v)))
                    .max_by(|a, b| {
                        a.1.total_cmp(&b.1)
                            .then_with(|| var_rank(b.0).cmp(&var_rank(a.0)))
                    });
                match best {
                    Some((v, h)) if h > 0.0 => v,
                    // All remaining variables are certain: patterns are
                    // value-identical; keep the highest-scoring one.
                    _ => break,
                }
            }
            SchedulingStrategy::Avi => var_order[validated.len()],
        };

        let (verdict, q_count) = ask_variable(table, kb, &patterns, next, crowd, config, &mut rng);
        questions_asked += q_count;
        if verdict == VarVerdict::BudgetExhausted || verdict == VarVerdict::DeadlineExpired {
            // Not even one aggregated answer came back before the money
            // (or the clock) ran out; the variable stays unvalidated.
            fully_validated = false;
            break;
        }
        validated.push(next);

        match verdict {
            VarVerdict::Value(a) => {
                let filtered: Vec<TablePattern> = patterns
                    .iter()
                    .filter(|p| pattern_value(p, next) == Some(a))
                    .cloned()
                    .collect();
                if !filtered.is_empty() {
                    patterns = filtered;
                }
                // An empty filter (crowd picked a value no pattern holds,
                // possible only through worker error) keeps the set
                // unchanged — the variable still counts as validated.
            }
            VarVerdict::NoneOfTheAbove => {
                // The crowd rejected every candidate: the column has no
                // accurate type / the pair no accurate relationship among
                // the discovered options. Strip the variable from every
                // pattern so annotation never enforces it.
                for p in &mut patterns {
                    strip_variable(p, next);
                }
            }
            VarVerdict::NoQuorum => {
                // The crowd never settled on this variable. Skip it (it
                // stays in `validated` so the scheduler moves on) and
                // leave the pattern set unchanged: the final selection
                // falls back to discovery-score order for it.
                no_quorum_variables += 1;
            }
            VarVerdict::Unasked => {}
            VarVerdict::BudgetExhausted | VarVerdict::DeadlineExpired => {
                unreachable!("handled above")
            }
        }
    }

    // Keep the highest-scoring survivor.
    patterns.sort_by(|a, b| b.score().total_cmp(&a.score()));
    ValidationOutcome {
        // invariant: `patterns` starts non-empty (caller contract) and
        // every filter above falls back to the unfiltered set when it
        // would empty it.
        pattern: patterns.into_iter().next().expect("non-empty"),
        variables_validated: validated.len() - no_quorum_variables,
        questions_asked,
        fully_validated,
        no_quorum_variables,
    }
}

fn var_rank(v: VarKey) -> (usize, usize, usize) {
    match v {
        VarKey::Col(c) => (0, c, 0),
        VarKey::Pair(i, j) => (1, i, j),
    }
}

/// Outcome of validating one variable with the crowd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarVerdict {
    /// The crowd settled on this value.
    Value(u32),
    /// The crowd rejected every candidate.
    NoneOfTheAbove,
    /// Nothing to ask (at most one candidate value).
    Unasked,
    /// Every question for this variable failed to reach a quorum.
    NoQuorum,
    /// The budget ran out before a single aggregated answer came back.
    BudgetExhausted,
    /// The deadline expired before a single aggregated answer came back.
    DeadlineExpired,
}

/// Remove a variable from a pattern after a "none of the above" verdict:
/// a column variable loses its type (the node stays untyped if edges
/// still need it, and disappears otherwise); a pair variable loses its
/// edge (plus any endpoint node left untyped and edge-less).
fn strip_variable(p: &mut TablePattern, var: VarKey) {
    let mut nodes = p.nodes().to_vec();
    let mut edges = p.edges().to_vec();
    match var {
        VarKey::Col(c) => {
            for n in &mut nodes {
                if n.column == c {
                    n.class = None;
                }
            }
        }
        VarKey::Pair(i, j) => {
            edges.retain(|e| !(e.subject == i && e.object == j));
        }
    }
    nodes.retain(|n| {
        n.class.is_some()
            || edges
                .iter()
                .any(|e| e.subject == n.column || e.object == n.column)
    });
    edges.retain(|e| {
        nodes.iter().any(|n| n.column == e.subject) && nodes.iter().any(|n| n.column == e.object)
    });
    let score = p.score();
    if let Ok(stripped) = TablePattern::new(nodes, edges, score) {
        *p = stripped;
    }
}

/// Ask the crowd about one variable: `q` questions, each with fresh
/// sample tuples; plurality of the aggregated answers wins. Returns the
/// verdict and the number of questions issued.
fn ask_variable<O: Oracle>(
    table: &Table,
    kb: &Kb,
    patterns: &[TablePattern],
    var: VarKey,
    crowd: &mut Crowd<O>,
    config: &ValidationConfig,
    rng: &mut StdRng,
) -> (VarVerdict, usize) {
    // Candidate values among the remaining patterns, deterministic order.
    let mut values: Vec<u32> = Vec::new();
    for p in patterns {
        if let Some(v) = pattern_value(p, var) {
            if !values.contains(&v) {
                values.push(v);
            }
        }
    }
    if values.is_empty() {
        return (VarVerdict::Unasked, 0);
    }
    // Note: a single-candidate variable is still asked (candidate +
    // "none of the above") — this only happens under AVI, which validates
    // independently; MUVF never selects a zero-entropy variable, which is
    // exactly the saving Table 4 measures.
    let candidates: Vec<String> = values
        .iter()
        .map(|&v| match var {
            VarKey::Col(_) => kb.class_name(katara_kb::ClassId(v)).to_string(),
            VarKey::Pair(i, j) => format!(
                "{} {} {}",
                column_name(table, i),
                kb.property_name(katara_kb::PropertyId(v)),
                column_name(table, j)
            ),
        })
        .collect();

    let mut votes: HashMap<Answer, usize> = HashMap::new();
    let q = config.questions_per_variable.max(1);
    let mut issued = 0usize;
    let mut budget_hit = false;
    let mut deadline_hit = false;
    for _ in 0..q {
        let sample_rows = sample_rows(table, config.tuples_per_question, rng);
        let question = match var {
            VarKey::Col(c) => Question::ColumnType {
                table: table.name().to_string(),
                column: c,
                header: table.columns().to_vec(),
                sample_rows,
                candidates: candidates.clone(),
            },
            VarKey::Pair(i, j) => Question::Relationship {
                table: table.name().to_string(),
                columns: (i, j),
                header: table.columns().to_vec(),
                sample_rows,
                candidates: candidates.clone(),
            },
        };
        match crowd.ask(&question) {
            AskOutcome::Answered(a) => {
                issued += 1;
                *votes.entry(a).or_insert(0) += 1;
            }
            // A no-quorum question already exhausted the crowd's retry
            // ladder; the remaining sample questions may still settle
            // the variable.
            AskOutcome::NoQuorum => issued += 1,
            AskOutcome::BudgetExhausted => {
                budget_hit = true;
                break;
            }
            AskOutcome::DeadlineExpired => {
                deadline_hit = true;
                break;
            }
        }
    }
    let Some((&winner, _)) = votes.iter().max_by(|a, b| {
        a.1.cmp(b.1)
            .then_with(|| b.0.slot(values.len()).cmp(&a.0.slot(values.len())))
    }) else {
        // Not one aggregated answer for this variable.
        let verdict = if deadline_hit {
            VarVerdict::DeadlineExpired
        } else if budget_hit {
            VarVerdict::BudgetExhausted
        } else {
            VarVerdict::NoQuorum
        };
        return (verdict, issued);
    };
    let verdict = match winner {
        Answer::Choice(i) => match values.get(i) {
            Some(&v) => VarVerdict::Value(v),
            None => VarVerdict::NoneOfTheAbove,
        },
        _ => VarVerdict::NoneOfTheAbove,
    };
    (verdict, issued)
}

fn column_name(table: &Table, c: usize) -> &str {
    table.columns().get(c).map(String::as_str).unwrap_or("?")
}

/// `k_t` sampled rows rendered as strings (with replacement across calls,
/// without within a call when possible).
fn sample_rows(table: &Table, k_t: usize, rng: &mut StdRng) -> Vec<Vec<String>> {
    let n = table.num_rows();
    if n == 0 {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..n).collect();
    // Partial Fisher–Yates for the first k_t slots.
    let take = k_t.min(n);
    for i in 0..take {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx[..take]
        .iter()
        .map(|&r| {
            table
                .row(r)
                .iter()
                .map(|v| v.text_or_empty().to_string())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{PatternEdge, PatternNode};
    use katara_crowd::CrowdConfig;
    use katara_kb::{ClassId, KbBuilder, PropertyId};

    /// Build the KB + table + the *five patterns of Example 8*.
    fn example8() -> (Kb, Table, Vec<TablePattern>) {
        let mut b = KbBuilder::new();
        let country = b.class("country");
        let economy = b.class("economy");
        let state = b.class("state");
        let capital = b.class("capital");
        let city = b.class("city");
        let has_capital = b.property("hasCapital");
        let located_in = b.property("locatedIn");
        let _ = (
            country,
            economy,
            state,
            capital,
            city,
            has_capital,
            located_in,
        );
        let kb = b.finalize();

        let mut t = Table::with_opaque_columns("t", 2);
        t.push_text_row(&["Italy", "Rome"]);
        t.push_text_row(&["Spain", "Madrid"]);
        t.push_text_row(&["France", "Paris"]);
        t.push_text_row(&["Egypt", "Cairo"]);
        t.push_text_row(&["Japan", "Tokyo"]);

        let mk = |tb: ClassId, tc: ClassId, p: PropertyId, score: f64| {
            TablePattern::new(
                vec![
                    PatternNode {
                        column: 0,
                        class: Some(tb),
                    },
                    PatternNode {
                        column: 1,
                        class: Some(tc),
                    },
                ],
                vec![PatternEdge {
                    subject: 0,
                    object: 1,
                    property: p,
                }],
                score,
            )
            .unwrap()
        };
        let patterns = vec![
            mk(country, capital, has_capital, 2.8), // φ1, prob .35
            mk(economy, capital, has_capital, 2.0), // φ2, prob .25
            mk(country, city, located_in, 2.0),     // φ3, prob .25
            mk(country, capital, located_in, 0.8),  // φ4, prob .10
            mk(state, capital, has_capital, 0.4),   // φ5, prob .05
        ];
        (kb, t, patterns)
    }

    /// Oracle matching Example 9's crowd: column B is a country, C is a
    /// capital, and the relationship is hasCapital.
    fn example_oracle() -> impl Oracle {
        |q: &Question| match q {
            Question::ColumnType {
                column, candidates, ..
            } => {
                let want = if *column == 0 { "country" } else { "capital" };
                match candidates.iter().position(|c| c == want) {
                    Some(i) => Answer::Choice(i),
                    None => Answer::NoneOfTheAbove,
                }
            }
            Question::Relationship { candidates, .. } => {
                match candidates.iter().position(|c| c.contains("hasCapital")) {
                    Some(i) => Answer::Choice(i),
                    None => Answer::NoneOfTheAbove,
                }
            }
            Question::Fact { .. } => Answer::Bool(true),
        }
    }

    fn perfect_crowd() -> Crowd<impl Oracle> {
        Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.0,
                ..CrowdConfig::default()
            },
            example_oracle(),
        )
        .unwrap()
    }

    #[test]
    fn example8_entropies() {
        let (_, _, patterns) = example8();
        let probs = probabilities(&patterns);
        let hb = variable_entropy(&patterns, &probs, VarKey::Col(0));
        let hc = variable_entropy(&patterns, &probs, VarKey::Col(1));
        let hbc = variable_entropy(&patterns, &probs, VarKey::Pair(0, 1));
        // Paper: H(vB)=1.07, H(vC)=0.81, H(vBC)=0.93.
        assert!((hb - 1.07).abs() < 0.02, "H(vB)={hb}");
        assert!((hc - 0.81).abs() < 0.02, "H(vC)={hc}");
        assert!((hbc - 0.93).abs() < 0.02, "H(vBC)={hbc}");
        assert!(hb > hbc && hbc > hc, "B first, then the pair");
    }

    #[test]
    fn muvf_follows_example9_and_skips_a_variable() {
        let (kb, t, patterns) = example8();
        let mut crowd = perfect_crowd();
        let out = validate_patterns(
            &t,
            &kb,
            patterns,
            &mut crowd,
            &ValidationConfig::default(),
            SchedulingStrategy::Muvf,
        );
        // Example 9: validate vB, then vBC — vC is never asked.
        assert_eq!(out.variables_validated, 2);
        let p = &out.pattern;
        assert_eq!(
            p.node_for_column(0).unwrap().class,
            kb.class_by_name("country")
        );
        assert_eq!(
            p.node_for_column(1).unwrap().class,
            kb.class_by_name("capital")
        );
        assert_eq!(
            p.edges()[0].property,
            kb.property_by_name("hasCapital").unwrap()
        );
    }

    #[test]
    fn avi_validates_every_variable() {
        let (kb, t, patterns) = example8();
        let mut crowd = perfect_crowd();
        let out = validate_patterns(
            &t,
            &kb,
            patterns,
            &mut crowd,
            &ValidationConfig::default(),
            SchedulingStrategy::Avi,
        );
        assert_eq!(out.variables_validated, 3, "AVI asks all of vB, vC, vBC");
        assert_eq!(
            out.pattern.edges()[0].property,
            kb.property_by_name("hasCapital").unwrap()
        );
    }

    #[test]
    fn muvf_never_validates_more_than_avi() {
        let (kb, t, patterns) = example8();
        let muvf = validate_patterns(
            &t,
            &kb,
            patterns.clone(),
            &mut perfect_crowd(),
            &ValidationConfig::default(),
            SchedulingStrategy::Muvf,
        );
        let avi = validate_patterns(
            &t,
            &kb,
            patterns,
            &mut perfect_crowd(),
            &ValidationConfig::default(),
            SchedulingStrategy::Avi,
        );
        assert!(muvf.variables_validated <= avi.variables_validated);
    }

    #[test]
    fn single_pattern_needs_no_questions() {
        let (kb, t, patterns) = example8();
        let single = vec![patterns[0].clone()];
        let mut crowd = perfect_crowd();
        let out = validate_patterns(
            &t,
            &kb,
            single,
            &mut crowd,
            &ValidationConfig::default(),
            SchedulingStrategy::Muvf,
        );
        assert_eq!(out.variables_validated, 0);
        assert_eq!(out.questions_asked, 0);
    }

    #[test]
    fn identical_value_patterns_terminate() {
        let (kb, t, patterns) = example8();
        // Two copies of φ1 with different scores: zero entropy everywhere.
        let mut p2 = patterns[0].clone();
        p2.set_score(1.0);
        let mut crowd = perfect_crowd();
        let out = validate_patterns(
            &t,
            &kb,
            vec![patterns[0].clone(), p2],
            &mut crowd,
            &ValidationConfig::default(),
            SchedulingStrategy::Muvf,
        );
        assert_eq!(out.questions_asked, 0);
        assert_eq!(out.pattern.score(), 2.8, "higher-scoring copy wins");
    }

    #[test]
    fn noisy_crowd_still_converges_with_enough_questions() {
        let (kb, t, patterns) = example8();
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 0.8,
                seed: 3,
                ..CrowdConfig::default()
            },
            example_oracle(),
        )
        .unwrap();
        let out = validate_patterns(
            &t,
            &kb,
            patterns,
            &mut crowd,
            &ValidationConfig {
                questions_per_variable: 7,
                ..ValidationConfig::default()
            },
            SchedulingStrategy::Muvf,
        );
        assert_eq!(
            out.pattern.node_for_column(0).unwrap().class,
            kb.class_by_name("country")
        );
    }

    #[test]
    fn none_of_the_above_strips_the_variable() {
        let (kb, t, patterns) = example8();
        // Oracle that rejects every relationship candidate but answers
        // types correctly: the pair variable must be stripped from the
        // surviving pattern.
        let oracle = |q: &Question| match q {
            Question::ColumnType {
                column, candidates, ..
            } => {
                let want = if *column == 0 { "country" } else { "capital" };
                match candidates.iter().position(|c| c == want) {
                    Some(i) => Answer::Choice(i),
                    None => Answer::NoneOfTheAbove,
                }
            }
            _ => Answer::NoneOfTheAbove,
        };
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.0,
                ..CrowdConfig::default()
            },
            oracle,
        )
        .unwrap();
        let out = validate_patterns(
            &t,
            &kb,
            patterns,
            &mut crowd,
            &ValidationConfig::default(),
            SchedulingStrategy::Avi, // AVI asks every variable
        );
        assert!(
            out.pattern.edges().is_empty(),
            "rejected relationship must be stripped: {:?}",
            out.pattern.edges()
        );
        // The typed nodes survive.
        assert_eq!(
            out.pattern.node_for_column(0).unwrap().class,
            kb.class_by_name("country")
        );
    }

    #[test]
    fn strip_variable_drops_orphan_untyped_nodes() {
        let (kb, _, patterns) = example8();
        let mut p = patterns[0].clone();
        // Stripping the only edge leaves two typed nodes.
        strip_variable(&mut p, VarKey::Pair(0, 1));
        assert!(p.edges().is_empty());
        assert_eq!(p.nodes().len(), 2);
        // Stripping a column type turns the node untyped; with no edges
        // left it disappears.
        strip_variable(&mut p, VarKey::Col(0));
        assert_eq!(p.nodes().len(), 1);
        assert_eq!(
            p.node_for_column(1).unwrap().class,
            kb.class_by_name("capital")
        );
    }

    #[test]
    fn reliable_crowd_marks_full_validation() {
        let (kb, t, patterns) = example8();
        let mut crowd = perfect_crowd();
        let out = validate_patterns(
            &t,
            &kb,
            patterns,
            &mut crowd,
            &ValidationConfig::default(),
            SchedulingStrategy::Muvf,
        );
        assert!(out.fully_validated);
        assert_eq!(out.no_quorum_variables, 0);
    }

    #[test]
    fn exhausted_budget_returns_best_pattern_so_far() {
        let (kb, t, patterns) = example8();
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.0,
                budget: katara_crowd::Budget::questions(0),
                ..CrowdConfig::default()
            },
            example_oracle(),
        )
        .unwrap();
        let out = validate_patterns(
            &t,
            &kb,
            patterns,
            &mut crowd,
            &ValidationConfig::default(),
            SchedulingStrategy::Muvf,
        );
        assert!(!out.fully_validated);
        assert_eq!(out.variables_validated, 0);
        // Fallback is pure score order: φ1 has the highest score.
        assert_eq!(out.pattern.score(), 2.8);
        assert!(crowd.is_budget_exhausted());
    }

    #[test]
    fn budget_exhaustion_mid_schedule_keeps_partial_progress() {
        let (kb, t, patterns) = example8();
        // Enough budget for the first variable (5 questions) but not the
        // second: the vB verdict is applied, then validation stops.
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.0,
                budget: katara_crowd::Budget::questions(5),
                ..CrowdConfig::default()
            },
            example_oracle(),
        )
        .unwrap();
        let out = validate_patterns(
            &t,
            &kb,
            patterns,
            &mut crowd,
            &ValidationConfig::default(),
            SchedulingStrategy::Muvf,
        );
        assert!(!out.fully_validated);
        assert_eq!(out.variables_validated, 1);
        // vB = country was applied, pruning φ2 (economy) and φ5 (state);
        // the best remaining is still φ1.
        assert_eq!(
            out.pattern.node_for_column(0).unwrap().class,
            kb.class_by_name("country")
        );
        assert_eq!(out.pattern.score(), 2.8);
    }

    #[test]
    fn total_no_quorum_falls_back_to_score_order() {
        let (kb, t, patterns) = example8();
        // Every worker drops out every time: no question ever resolves.
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.0,
                faults: katara_crowd::FaultPlan {
                    dropout_rate: 1.0,
                    ..katara_crowd::FaultPlan::default()
                },
                ..CrowdConfig::default()
            },
            example_oracle(),
        )
        .unwrap();
        let out = validate_patterns(
            &t,
            &kb,
            patterns,
            &mut crowd,
            &ValidationConfig::default(),
            SchedulingStrategy::Muvf,
        );
        // All three variables were attempted, none settled; the run is
        // complete (no budget issue) but validated nothing.
        assert!(out.fully_validated);
        assert_eq!(out.variables_validated, 0);
        assert_eq!(out.no_quorum_variables, 3);
        assert_eq!(out.pattern.score(), 2.8, "score-order fallback");
        assert!(crowd.stats().no_quorum_questions > 0);
    }

    #[test]
    fn questions_accounting() {
        let (kb, t, patterns) = example8();
        let mut crowd = perfect_crowd();
        let cfg = ValidationConfig {
            questions_per_variable: 3,
            ..ValidationConfig::default()
        };
        let out = validate_patterns(
            &t,
            &kb,
            patterns,
            &mut crowd,
            &cfg,
            SchedulingStrategy::Muvf,
        );
        assert_eq!(out.questions_asked, out.variables_validated * 3);
        assert_eq!(crowd.stats().questions(), out.questions_asked);
    }
}
