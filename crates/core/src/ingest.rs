//! Unified ingestion accounting across the KB and table loaders.
//!
//! `katara-kb` and `katara-table` each report on their own trust boundary
//! ([`katara_kb::ingest::IngestReport`], [`katara_table::ingest::IngestReport`]);
//! neither crate knows about the other. This module joins the two sides
//! for one cleaning run, so the pipeline's degradation machinery and the
//! CLI can answer "did everything the user pointed us at actually load?"
//! with a single value.

use katara_obs::{Counter, Recorder};

use crate::pipeline::DegradationReport;

/// What ingestion did across every input of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestSummary {
    /// Report from the KB load, if a KB was loaded from N-Triples.
    pub kb: Option<katara_kb::IngestReport>,
    /// Report from the table load, if the table was loaded from CSV.
    pub table: Option<katara_table::IngestReport>,
}

impl IngestSummary {
    /// Total quarantined lines/records across both loads.
    pub fn quarantined(&self) -> usize {
        self.kb.as_ref().map_or(0, |r| r.quarantined_count)
            + self.table.as_ref().map_or(0, |r| r.quarantined_count)
    }

    /// Hierarchy edges the KB audit dropped to break cycles.
    pub fn repaired_edges(&self) -> usize {
        self.kb.as_ref().map_or(0, |r| r.audit.broken_edges.len())
    }

    /// True when any load deviated from a clean strict parse in a way
    /// that changed the data (quarantined input or repaired hierarchy).
    pub fn is_degraded(&self) -> bool {
        self.kb.as_ref().is_some_and(|r| r.is_degraded())
            || self.table.as_ref().is_some_and(|r| r.is_degraded())
    }

    /// Fold this summary into a run's [`DegradationReport`], so ingestion
    /// losses show up next to crowd faults in one place.
    pub fn apply_to(&self, degradation: &mut DegradationReport) {
        degradation.ingest_quarantined += self.quarantined();
        degradation.ingest_repaired_edges += self.repaired_edges();
    }

    /// Export the ingest accounting as run metrics
    /// (`ingest.{quarantined,repaired_edges}`).
    pub fn record(&self, rec: &dyn Recorder) {
        rec.incr_by(Counter::IngestQuarantined, self.quarantined() as u64);
        rec.incr_by(Counter::IngestRepairedEdges, self.repaired_edges() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use katara_kb::BrokenEdge;

    fn kb_report() -> katara_kb::IngestReport {
        let mut r = katara_kb::IngestReport {
            quarantined_count: 3,
            ..Default::default()
        };
        r.audit.broken_edges.push(BrokenEdge {
            hierarchy: "subClassOf",
            child: "a".into(),
            parent: "b".into(),
            self_loop: false,
        });
        r
    }

    #[test]
    fn empty_summary_is_clean() {
        let s = IngestSummary::default();
        assert!(!s.is_degraded());
        assert_eq!(s.quarantined(), 0);
        assert_eq!(s.repaired_edges(), 0);
    }

    #[test]
    fn sums_both_sides() {
        let t = katara_table::IngestReport {
            quarantined_count: 2,
            ..Default::default()
        };
        let s = IngestSummary {
            kb: Some(kb_report()),
            table: Some(t),
        };
        assert!(s.is_degraded());
        assert_eq!(s.quarantined(), 5);
        assert_eq!(s.repaired_edges(), 1);
    }

    #[test]
    fn folds_into_degradation_report() {
        let s = IngestSummary {
            kb: Some(kb_report()),
            table: None,
        };
        let mut d = DegradationReport::default();
        assert!(!d.is_degraded());
        s.apply_to(&mut d);
        assert_eq!(d.ingest_quarantined, 3);
        assert_eq!(d.ingest_repaired_edges, 1);
        assert!(d.is_degraded(), "ingestion losses count as degradation");
    }
}
