//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the (small) subset of the `rand 0.10` API it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`RngExt`] extension methods `random_bool` / `random_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, deterministic, portable PRNG. Streams are *not*
//! bit-compatible with upstream `rand`; everything in this workspace
//! only relies on determinism per seed, which this crate guarantees.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// The workspace's standard deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl StdRng {
    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Unbiased via 128-bit multiply-shift (Lemire).
                let hi = (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                let hi = (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[inline]
fn unit_f64(rng: &mut StdRng) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in random_range");
        start + unit_f64(rng) * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// Extension methods on RNGs, mirroring `rand::Rng` / `RngExt`.
pub trait RngExt {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool;
    /// Uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for StdRng {
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        unit_f64(self) < p
    }

    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..32).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = r.random_range(0.0..2.5);
            assert!((0.0..2.5).contains(&y));
            let z: u8 = r.random_range(0..=255u8);
            let _ = z;
        }
    }

    #[test]
    fn bool_edges() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(r.random_bool(1.0));
            assert!(!r.random_bool(0.0));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
