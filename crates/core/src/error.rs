//! Error type for the KATARA pipeline.

use std::fmt;

/// Errors surfaced by the cleaning pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum KataraError {
    /// Pattern discovery produced no candidate pattern at all; the paper's
    /// §2 behaviour is "KATARA will terminate" — callers surface this.
    NoPatternFound {
        /// Table the discovery ran on.
        table: String,
        /// KB it ran against.
        kb: String,
    },
    /// A pattern references a column outside the table.
    ColumnOutOfRange {
        /// Offending column index.
        column: usize,
        /// The table's column count.
        num_columns: usize,
    },
    /// A pattern is structurally invalid (e.g. an edge endpoint without a
    /// node).
    MalformedPattern(String),
}

impl fmt::Display for KataraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KataraError::NoPatternFound { table, kb } => {
                write!(f, "no table pattern found for table {table:?} against KB {kb:?}")
            }
            KataraError::ColumnOutOfRange {
                column,
                num_columns,
            } => write!(f, "column {column} out of range (table has {num_columns})"),
            KataraError::MalformedPattern(msg) => write!(f, "malformed pattern: {msg}"),
        }
    }
}

impl std::error::Error for KataraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = KataraError::NoPatternFound {
            table: "soccer".into(),
            kb: "yago".into(),
        };
        assert!(e.to_string().contains("soccer"));
        let e = KataraError::ColumnOutOfRange {
            column: 9,
            num_columns: 3,
        };
        assert!(e.to_string().contains('9'));
    }
}
