//! Table deltas: ordered batches of tuple upserts and deletes.
//!
//! A [`TableDelta`] is the table-side analogue of the KB's
//! `EnrichmentDelta` — the unit of change the incremental cleaning
//! engine consumes. Edits apply *sequentially*: each edit's row index
//! refers to the table state produced by the edits before it, so a
//! delta replays to exactly one post-state regardless of who applies it
//! (the full re-clean comparator or the delta engine).
//!
//! The on-disk form is CSV with a two-column prefix:
//!
//! ```csv
//! op,row,A,B,C
//! upsert,2,Pirlo,Italy,Rome
//! delete,0,,,
//! ```
//!
//! `upsert` with `row == num_rows` appends a new tuple; `delete` drops
//! the row and shifts later rows up. Cell columns after the prefix must
//! match the target table's arity; empty cells are nulls.

use std::fmt;

use crate::csv::{self, CsvError};
use crate::table::Table;
use crate::value::Value;

/// One tuple-level edit.
#[derive(Debug, Clone, PartialEq)]
pub enum TableEdit {
    /// Overwrite row `row` with `cells` (or append when `row` equals the
    /// current row count).
    Upsert {
        /// Target row index in the pre-edit table state.
        row: usize,
        /// The full replacement tuple (one value per column).
        cells: Vec<Value>,
    },
    /// Remove row `row`; later rows shift up by one.
    Delete {
        /// Target row index in the pre-edit table state.
        row: usize,
    },
}

/// An ordered batch of tuple edits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableDelta {
    /// The edits, in application order.
    pub edits: Vec<TableEdit>,
}

/// Errors from parsing or applying a [`TableDelta`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeltaError {
    /// The edits CSV itself failed to parse.
    Csv(CsvError),
    /// A record's `op` field was neither `upsert` nor `delete`.
    BadOp {
        /// 0-based edit index.
        edit: usize,
        /// The offending op string.
        op: String,
    },
    /// A record's `row` field was not a non-negative integer.
    BadRow {
        /// 0-based edit index.
        edit: usize,
        /// The offending row string.
        row: String,
    },
    /// An upsert carried the wrong number of cells for the table.
    Arity {
        /// 0-based edit index.
        edit: usize,
        /// Cells found.
        found: usize,
        /// Table column count.
        expected: usize,
    },
    /// An edit addressed a row outside the (current) table.
    RowOutOfRange {
        /// 0-based edit index.
        edit: usize,
        /// The requested row.
        row: usize,
        /// Rows present when the edit applied.
        num_rows: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Csv(e) => write!(f, "edits csv: {e}"),
            DeltaError::BadOp { edit, op } => {
                write!(f, "edit {edit}: unknown op {op:?} (want upsert|delete)")
            }
            DeltaError::BadRow { edit, row } => {
                write!(f, "edit {edit}: row {row:?} is not a non-negative integer")
            }
            DeltaError::Arity {
                edit,
                found,
                expected,
            } => write!(
                f,
                "edit {edit}: upsert has {found} cells, table has {expected} columns"
            ),
            DeltaError::RowOutOfRange {
                edit,
                row,
                num_rows,
            } => write!(
                f,
                "edit {edit}: row {row} out of range (table has {num_rows} rows)"
            ),
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Csv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CsvError> for DeltaError {
    fn from(e: CsvError) -> Self {
        DeltaError::Csv(e)
    }
}

impl TableDelta {
    /// True when the delta carries no edits.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Number of edits.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// Parse the edits CSV (header `op,row,<columns…>`) for a table with
    /// `num_columns` columns.
    pub fn parse_csv(input: &str, num_columns: usize) -> Result<TableDelta, DeltaError> {
        let t = csv::parse("edits", input)?;
        if t.num_columns() != num_columns + 2 {
            return Err(DeltaError::Csv(CsvError::RaggedRow {
                line: 1,
                found: t.num_columns(),
                expected: num_columns + 2,
            }));
        }
        let mut edits = Vec::with_capacity(t.num_rows());
        for (i, rec) in t.rows().iter().enumerate() {
            let op = rec[0].as_str().unwrap_or("");
            let row_str = rec[1].as_str().unwrap_or("");
            let row: usize = row_str.trim().parse().map_err(|_| DeltaError::BadRow {
                edit: i,
                row: row_str.to_string(),
            })?;
            match op.trim() {
                "upsert" => edits.push(TableEdit::Upsert {
                    row,
                    cells: rec[2..].to_vec(),
                }),
                "delete" => edits.push(TableEdit::Delete { row }),
                other => {
                    return Err(DeltaError::BadOp {
                        edit: i,
                        op: other.to_string(),
                    })
                }
            }
        }
        Ok(TableDelta { edits })
    }

    /// Serialize to the edits CSV form for a table with the given column
    /// names.
    pub fn to_csv(&self, columns: &[String]) -> String {
        let mut header = vec!["op".to_string(), "row".to_string()];
        header.extend(columns.iter().cloned());
        let mut t = Table::new("edits", header);
        for e in &self.edits {
            match e {
                TableEdit::Upsert { row, cells } => {
                    let mut rec = vec![
                        Value::from_cell("upsert"),
                        Value::from_cell(&row.to_string()),
                    ];
                    rec.extend(cells.iter().cloned());
                    t.push_row(rec);
                }
                TableEdit::Delete { row } => {
                    let mut rec = vec![
                        Value::from_cell("delete"),
                        Value::from_cell(&row.to_string()),
                    ];
                    rec.extend(std::iter::repeat_n(Value::Null, columns.len()));
                    t.push_row(rec);
                }
            }
        }
        csv::to_string(&t)
    }

    /// Replay every edit onto `table`, sequentially. On error the table
    /// keeps the edits applied so far (the error names the failing edit).
    pub fn apply(&self, table: &mut Table) -> Result<(), DeltaError> {
        for (i, e) in self.edits.iter().enumerate() {
            match e {
                TableEdit::Upsert { row, cells } => {
                    if cells.len() != table.num_columns() {
                        return Err(DeltaError::Arity {
                            edit: i,
                            found: cells.len(),
                            expected: table.num_columns(),
                        });
                    }
                    if *row < table.num_rows() {
                        for (c, v) in cells.iter().enumerate() {
                            table.set_cell(*row, c, v.clone());
                        }
                    } else if *row == table.num_rows() {
                        table.push_row(cells.clone());
                    } else {
                        return Err(DeltaError::RowOutOfRange {
                            edit: i,
                            row: *row,
                            num_rows: table.num_rows(),
                        });
                    }
                }
                TableEdit::Delete { row } => {
                    if *row >= table.num_rows() {
                        return Err(DeltaError::RowOutOfRange {
                            edit: i,
                            row: *row,
                            num_rows: table.num_rows(),
                        });
                    }
                    table.remove_row(*row);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Table {
        let mut t = Table::with_opaque_columns("soccer", 3);
        t.push_text_row(&["Rossi", "Italy", "Rome"]);
        t.push_text_row(&["Klate", "S. Africa", "Pretoria"]);
        t.push_text_row(&["Pirlo", "Italy", "Madrid"]);
        t
    }

    #[test]
    fn apply_upsert_delete_append() {
        let mut t = fig1();
        let d = TableDelta {
            edits: vec![
                TableEdit::Upsert {
                    row: 2,
                    cells: vec![
                        Value::from_cell("Pirlo"),
                        Value::from_cell("Italy"),
                        Value::from_cell("Rome"),
                    ],
                },
                TableEdit::Delete { row: 0 },
                TableEdit::Upsert {
                    row: 2,
                    cells: vec![
                        Value::from_cell("Ramos"),
                        Value::from_cell("Spain"),
                        Value::from_cell("Madrid"),
                    ],
                },
            ],
        };
        d.apply(&mut t).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.cell(0, 0).as_str(), Some("Klate"));
        assert_eq!(t.cell(1, 2).as_str(), Some("Rome"));
        assert_eq!(t.cell(2, 0).as_str(), Some("Ramos"));
    }

    #[test]
    fn out_of_range_edits_error() {
        let mut t = fig1();
        let d = TableDelta {
            edits: vec![TableEdit::Delete { row: 9 }],
        };
        let err = d.apply(&mut t).unwrap_err();
        assert!(matches!(err, DeltaError::RowOutOfRange { row: 9, .. }));
        let d = TableDelta {
            edits: vec![TableEdit::Upsert {
                row: 0,
                cells: vec![Value::Null],
            }],
        };
        assert!(matches!(
            d.apply(&mut t).unwrap_err(),
            DeltaError::Arity { .. }
        ));
    }

    #[test]
    fn csv_round_trip() {
        let t = fig1();
        let d = TableDelta {
            edits: vec![
                TableEdit::Upsert {
                    row: 1,
                    cells: vec![
                        Value::from_cell("Klate"),
                        Value::from_cell("S. Africa"),
                        Value::Null,
                    ],
                },
                TableEdit::Delete { row: 0 },
            ],
        };
        let text = d.to_csv(t.columns());
        let back = TableDelta::parse_csv(&text, t.num_columns()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn parse_rejects_malformed_records() {
        assert!(matches!(
            TableDelta::parse_csv("op,row,A\nfrobnicate,0,x\n", 1).unwrap_err(),
            DeltaError::BadOp { .. }
        ));
        assert!(matches!(
            TableDelta::parse_csv("op,row,A\nupsert,minus two,x\n", 1).unwrap_err(),
            DeltaError::BadRow { .. }
        ));
        assert!(matches!(
            TableDelta::parse_csv("op,row\n", 3).unwrap_err(),
            DeltaError::Csv(_)
        ));
    }
}
