//! Export the synthetic evaluation corpus to plain files — CSV tables and
//! N-Triples KBs — so the `katara` CLI (and any other RDF/CSV tooling)
//! can be driven against it:
//!
//! ```sh
//! cargo run --release --example export_corpus -- /tmp/katara-corpus
//! katara kb-stats --kb /tmp/katara-corpus/dbpedia-like.nt
//! katara clean    --table /tmp/katara-corpus/soccer.csv \
//!                 --kb /tmp/katara-corpus/dbpedia-like.nt \
//!                 --crowd facts:/tmp/katara-corpus/facts.tsv
//! ```
//!
//! Also writes `facts.tsv` (the world's ground truth in the CLI's
//! facts-file format) so the cleaned run has a perfect oracle.

use std::path::PathBuf;

use katara::datagen::{KbFlavor, SemanticRel};
use katara::eval::corpus::{Corpus, CorpusConfig};
use katara::kb::ntriples;
use katara::table::csv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/katara-corpus".to_string())
        .into();
    std::fs::create_dir_all(&dir)?;

    println!("building corpus…");
    let corpus = Corpus::build(&CorpusConfig::default());

    // KBs.
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let kb = corpus.kb(flavor);
        let path = dir.join(format!("{}.nt", flavor.name()));
        std::fs::write(&path, ntriples::to_string(&kb))?;
        println!(
            "wrote {} ({} entities, {} facts)",
            path.display(),
            kb.num_entities(),
            kb.num_facts()
        );
    }

    // Relational tables.
    for (name, g) in corpus.relational() {
        let path = dir.join(format!("{}.csv", name.to_lowercase()));
        std::fs::write(&path, csv::to_string(&g.table))?;
        println!("wrote {} ({} rows)", path.display(), g.table.num_rows());
    }
    // A few web tables.
    for g in corpus.web.iter().take(5) {
        let path = dir.join(format!("{}.csv", g.table.name()));
        std::fs::write(&path, csv::to_string(&g.table))?;
    }
    println!("wrote 5 web tables");

    // Ground-truth facts for the CLI's facts: crowd mode. The world's
    // statements double as "hasType" rows for annotation type questions.
    let mut tsv = String::new();
    let w = &corpus.world;
    for (ci, c) in w.countries.iter().enumerate() {
        let cap = w.capital_of(ci);
        for rel in [SemanticRel::HasCapital] {
            for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
                tsv.push_str(&format!("{}\t{}\t{}\n", c.name, rel.name(flavor), cap.name));
            }
        }
        for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
            tsv.push_str(&format!(
                "{}\t{}\t{}\n",
                c.name,
                SemanticRel::OfficialLanguage.name(flavor),
                w.language_of(ci)
            ));
        }
    }
    for p in &w.players {
        for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
            tsv.push_str(&format!(
                "{}\t{}\t{}\n",
                p.name,
                SemanticRel::Nationality.name(flavor),
                w.countries[p.country].name
            ));
            tsv.push_str(&format!(
                "{}\t{}\t{}\n",
                p.name,
                SemanticRel::PlaysFor.name(flavor),
                w.clubs[p.club].name
            ));
            tsv.push_str(&format!(
                "{}\t{}\t{}\n",
                p.name,
                SemanticRel::HasHeight.name(flavor),
                p.height
            ));
        }
    }
    for k in &w.clubs {
        for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
            tsv.push_str(&format!(
                "{}\t{}\t{}\n",
                k.name,
                SemanticRel::InLeague.name(flavor),
                w.leagues[k.league]
            ));
            tsv.push_str(&format!(
                "{}\t{}\t{}\n",
                k.name,
                SemanticRel::LocatedIn.name(flavor),
                w.cities[k.city].name
            ));
        }
    }
    for u in &w.universities {
        let city = &w.us_cities[u.city];
        for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
            tsv.push_str(&format!(
                "{}\t{}\t{}\n",
                u.name,
                SemanticRel::InState.name(flavor),
                w.states[city.state].name
            ));
            tsv.push_str(&format!(
                "{}\t{}\t{}\n",
                u.name,
                SemanticRel::LocatedIn.name(flavor),
                city.name
            ));
        }
    }
    // Type statements for annotation's "hasType" questions: leaf plus
    // every ancestor, under both flavors' spellings.
    {
        use katara::datagen::SemanticType;
        let mut add_types = |label: &str, t: SemanticType| {
            for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
                tsv.push_str(&format!("{label}\thasType\t{}\n", t.name(flavor)));
                for &anc in t.ancestors(flavor) {
                    tsv.push_str(&format!("{label}\thasType\t{anc}\n"));
                }
            }
        };
        for p in &w.players {
            add_types(&p.name, SemanticType::SoccerPlayer);
        }
        for k in &w.clubs {
            add_types(&k.name, SemanticType::Club);
        }
        for (ci, c) in w.countries.iter().enumerate() {
            add_types(&c.name, SemanticType::Country);
            add_types(&w.capital_of(ci).name, SemanticType::Capital);
        }
        for c in &w.cities {
            add_types(
                &c.name,
                if c.is_capital {
                    SemanticType::Capital
                } else {
                    SemanticType::City
                },
            );
        }
        for l in &w.languages {
            add_types(l, SemanticType::Language);
        }
        for l in &w.leagues {
            add_types(l, SemanticType::League);
        }
        for (si, st) in w.states.iter().enumerate() {
            add_types(&st.name, SemanticType::State);
            add_types(&w.state_capital_of(si).name, SemanticType::StateCapital);
        }
        for c in &w.us_cities {
            add_types(
                &c.name,
                if c.is_capital {
                    SemanticType::StateCapital
                } else {
                    SemanticType::City
                },
            );
        }
        for u in &w.universities {
            add_types(&u.name, SemanticType::University);
        }
    }

    let facts_path = dir.join("facts.tsv");
    std::fs::write(&facts_path, &tsv)?;
    println!(
        "wrote {} ({} statements)",
        facts_path.display(),
        tsv.lines().count()
    );
    println!(
        "\ntry:\n  katara discover --table {}/soccer.csv --kb {}/dbpedia-like.nt",
        dir.display(),
        dir.display()
    );
    Ok(())
}
