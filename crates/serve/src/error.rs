//! Typed errors for the serving layer.
//!
//! Every way a request can go wrong maps to exactly one variant, and
//! every variant maps to exactly one HTTP status — the fuzz suite's
//! contract is that arbitrary input produces one of these, never a
//! panic.

use std::fmt;
use std::io;

/// Errors surfaced by the request parser and connection handling.
///
/// `#[non_exhaustive]`: hardening may add rejection classes without a
/// breaking change.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The request is syntactically malformed (bad request line, bad
    /// header, unsupported framing). Quarantined with `400`.
    BadRequest(String),
    /// The request exceeds a hard size cap. Quarantined with `400` —
    /// oversized input is treated as hostile, not negotiated.
    RequestTooLarge {
        /// Which cap was hit (`"request line"`, `"headers"`, `"body"`…).
        what: &'static str,
        /// The configured cap, in bytes or entries.
        limit: usize,
    },
    /// The client fed bytes too slowly and hit the read timeout — the
    /// slowloris cutoff. Answered with `408`.
    Timeout,
    /// The peer vanished mid-request (EOF or reset before the request
    /// was complete). There is usually nobody left to answer.
    Disconnected,
    /// Any other I/O failure on the connection.
    Io(io::Error),
}

impl ServeError {
    /// Classify an I/O error from a socket read/write: timeouts become
    /// [`ServeError::Timeout`], peer-gone conditions become
    /// [`ServeError::Disconnected`], the rest stay I/O errors.
    pub fn from_io(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ServeError::Timeout,
            io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe => ServeError::Disconnected,
            _ => ServeError::Io(e),
        }
    }

    /// The HTTP status this error answers with (the failure half of the
    /// DESIGN.md §5g status table).
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) | ServeError::RequestTooLarge { .. } => 400,
            ServeError::Timeout => 408,
            ServeError::Disconnected | ServeError::Io(_) => 400,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::RequestTooLarge { what, limit } => {
                write!(f, "request too large: {what} exceeds {limit}")
            }
            ServeError::Timeout => write!(f, "request read timed out"),
            ServeError::Disconnected => write!(f, "client disconnected mid-request"),
            ServeError::Io(e) => write!(f, "connection i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_classification() {
        assert!(matches!(
            ServeError::from_io(io::Error::new(io::ErrorKind::TimedOut, "t")),
            ServeError::Timeout
        ));
        assert!(matches!(
            ServeError::from_io(io::Error::new(io::ErrorKind::WouldBlock, "t")),
            ServeError::Timeout
        ));
        assert!(matches!(
            ServeError::from_io(io::Error::new(io::ErrorKind::UnexpectedEof, "t")),
            ServeError::Disconnected
        ));
        assert!(matches!(
            ServeError::from_io(io::Error::other("t")),
            ServeError::Io(_)
        ));
    }

    #[test]
    fn status_mapping() {
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        assert_eq!(
            ServeError::RequestTooLarge {
                what: "body",
                limit: 1
            }
            .status(),
            400
        );
        assert_eq!(ServeError::Timeout.status(), 408);
    }

    #[test]
    fn display_is_informative() {
        let e = ServeError::RequestTooLarge {
            what: "headers",
            limit: 64,
        };
        assert!(e.to_string().contains("headers"));
        assert!(e.to_string().contains("64"));
    }
}
