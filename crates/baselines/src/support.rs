//! The Support baseline (§7.1).
//!
//! Ranks every candidate type and relationship *solely by support* — the
//! number of tuples it covers. Because a supertype covers at least as
//! many tuples as any of its subtypes, Support systematically drifts to
//! the most general types ("such as `Thing` or `Object`", as the paper
//! puts it); ties are broken toward the *larger* class, making the drift
//! explicit and deterministic.

use katara_core::candidates::CandidateSet;
use katara_core::pattern::TablePattern;
use katara_core::rank_join::{discover_topk, DiscoveryConfig};
use katara_core::scoring::ScoringConfig;
use katara_kb::Kb;
use katara_table::Table;

/// Top-k patterns under support-only ranking.
pub fn support_topk(table: &Table, kb: &Kb, cands: &CandidateSet, k: usize) -> Vec<TablePattern> {
    // Re-score every candidate with its support and re-sort with the
    // "larger class wins ties" rule, then run the shared top-k machinery
    // with coherence disabled.
    let mut rescored = cands.clone();
    for list in &mut rescored.col_types {
        for c in list.iter_mut() {
            c.tfidf = c.support as f64;
        }
        list.sort_by(|a, b| {
            b.support
                .cmp(&a.support)
                .then_with(|| kb.class_size(b.class).cmp(&kb.class_size(a.class)))
                .then_with(|| a.class.cmp(&b.class))
        });
    }
    for list in rescored.pair_rels.values_mut() {
        for c in list.iter_mut() {
            c.tfidf = c.support as f64;
        }
        list.sort_by(|a, b| {
            b.support.cmp(&a.support).then_with(|| {
                kb.subjects_of_property(b.property)
                    .len()
                    .cmp(&kb.subjects_of_property(a.property).len())
                    .then_with(|| a.property.cmp(&b.property))
            })
        });
    }
    let config = DiscoveryConfig {
        scoring: ScoringConfig {
            coherence_weight: 0.0,
        },
        max_states: 0,
        ..DiscoveryConfig::default()
    };
    discover_topk(table, kb, &rescored, k, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use katara_core::candidates::{discover_candidates, CandidateConfig};
    use katara_kb::KbBuilder;

    /// `entity` ⊃ `country`; both cover every cell, so Support must pick
    /// the bigger `entity` while tf-idf ranking picks `country`.
    fn setting() -> (Kb, Table) {
        let mut b = KbBuilder::new();
        let entity = b.class("entity");
        let country = b.class("country");
        let capital = b.class("capital");
        b.subclass(country, entity).unwrap();
        b.subclass(capital, entity).unwrap();
        let has_capital = b.property("hasCapital");
        for (c, cap) in [("Italy", "Rome"), ("Spain", "Madrid"), ("France", "Paris")] {
            let rc = b.entity(c, &[country]);
            let rcap = b.entity(cap, &[capital]);
            b.fact(rc, has_capital, rcap);
        }
        for i in 0..20 {
            b.entity(&format!("Filler{i}"), &[entity]);
        }
        let kb = b.finalize();
        let mut t = Table::with_opaque_columns("t", 2);
        t.push_text_row(&["Italy", "Rome"]);
        t.push_text_row(&["Spain", "Madrid"]);
        (kb, t)
    }

    #[test]
    fn support_drifts_to_general_types() {
        let (kb, t) = setting();
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        let top = support_topk(&t, &kb, &cands, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(
            top[0].node_for_column(0).unwrap().class,
            kb.class_by_name("entity"),
            "Support must pick the covering supertype"
        );
    }

    #[test]
    fn support_still_finds_relationships() {
        let (kb, t) = setting();
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        let top = support_topk(&t, &kb, &cands, 1);
        assert_eq!(
            top[0].edges()[0].property,
            kb.property_by_name("hasCapital").unwrap()
        );
    }

    #[test]
    fn empty_candidates_yield_nothing() {
        let (kb, _) = setting();
        let mut t = Table::with_opaque_columns("t", 1);
        t.push_text_row(&["Unknown"]);
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        assert!(support_topk(&t, &kb, &cands, 3).is_empty());
    }
}
