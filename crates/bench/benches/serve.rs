//! Bench for the **cleaning daemon** (DESIGN.md §5g): end-to-end HTTP
//! `POST /clean` requests against a live `katara-serve` instance, cold
//! (`?snapshot=cold`, every request rebuilds the `TableResolution`) vs
//! warm (the daemon's snapshot cache hits), at two concurrency levels.
//! Emits `BENCH_serve.json` at the workspace root with requests/s and
//! p50/p99 latencies per batch (quick mode via `KATARA_BENCH_QUICK=1`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use katara_bench::{perf, resolve_crowd, resolve_fixture, ResolveFixture};
use katara_core::annotation::AnnotationConfig;
use katara_core::validation::ValidationConfig;
use katara_core::{Katara, KataraConfig};
use katara_serve::{ServePolicy, Server, ServerConfig};

/// Requests per measured batch.
fn batch_requests() -> usize {
    if perf::quick_mode() {
        6
    } else {
        20
    }
}

/// Concurrency levels to measure.
fn concurrency_levels() -> Vec<usize> {
    if perf::quick_mode() {
        vec![1, 2]
    } else {
        vec![1, 4]
    }
}

/// One blocking HTTP request; returns (status, latency in ms).
fn request(addr: SocketAddr, path: &str, body: &[u8]) -> (u16, f64) {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, start.elapsed().as_secs_f64() * 1e3)
}

/// Run one batch of `n` requests across `concurrency` client threads;
/// returns (per-request latencies in ms, total wall ms).
fn run_batch(
    addr: SocketAddr,
    path: &str,
    body: &[u8],
    n: usize,
    concurrency: usize,
) -> (Vec<f64>, f64) {
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::with_capacity(n)));
    let body: Arc<Vec<u8>> = Arc::new(body.to_vec());
    let path = path.to_string();
    let start = Instant::now();
    let per_thread = n.div_ceil(concurrency);
    let workers: Vec<_> = (0..concurrency)
        .map(|w| {
            let latencies = Arc::clone(&latencies);
            let body = Arc::clone(&body);
            let path = path.clone();
            let count = per_thread.min(n.saturating_sub(w * per_thread));
            std::thread::spawn(move || {
                for _ in 0..count {
                    let (status, ms) = request(addr, &path, &body);
                    assert!(
                        status == 200 || status == 206,
                        "bench request failed with {status}"
                    );
                    latencies.lock().unwrap().push(ms);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    let latencies = Arc::try_unwrap(latencies)
        .expect("all clients joined")
        .into_inner()
        .unwrap();
    (latencies, total_ms)
}

/// One untimed instrumented direct-pipeline run of the same workload,
/// for the report's logical-work metrics (deterministic section).
fn instrumented_metrics(fixture: &ResolveFixture) -> katara_obs::RunMetrics {
    let rec = Arc::new(katara_obs::RunRecorder::new());
    let config = KataraConfig {
        annotation: AnnotationConfig {
            enrich_kb: false,
            ..AnnotationConfig::default()
        },
        validation: ValidationConfig {
            questions_per_variable: 1,
            ..ValidationConfig::default()
        },
        recorder: rec.clone(),
        threads: katara_core::Threads::fixed(1),
        candidates: katara_core::CandidateConfig {
            threads: katara_core::Threads::fixed(1),
            ..katara_core::CandidateConfig::default()
        },
        ..KataraConfig::default()
    };
    let katara = Katara::new(config);
    let mut kb = fixture.kb.clone();
    let mut crowd = resolve_crowd(fixture);
    black_box(
        katara
            .clean(&fixture.table.table, &mut kb, &mut crowd)
            .expect("instrumented clean"),
    );
    let mut metrics = rec.snapshot();
    metrics.threads = 1;
    metrics
}

/// Cold vs warm daemon requests at two concurrency levels. The Criterion
/// group gives the interactive view; the [`perf::ServeReport`] gives the
/// machine-readable artifact.
fn bench_serve(c: &mut Criterion) {
    let fixture = resolve_fixture();
    let body = katara_table::csv::to_string(&fixture.table.table).into_bytes();
    eprintln!(
        "serve fixture: {} ({} injected errors, {} byte body)",
        fixture.name,
        fixture.errors,
        body.len()
    );

    let server = Server::bind(
        ServerConfig {
            max_in_flight: 16,
            ..ServerConfig::default()
        },
        fixture.kb.clone(),
        ServePolicy::Trust,
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // Populate the warm cache before any warm measurement.
    let (status, _) = request(addr, "/clean", &body);
    assert!(status == 200 || status == 206, "warmup failed: {status}");

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("clean_warm", |b| {
        b.iter(|| black_box(request(addr, "/clean", &body)))
    });
    group.bench_function("clean_cold", |b| {
        b.iter(|| black_box(request(addr, "/clean?snapshot=cold", &body)))
    });
    group.finish();

    let mut report = perf::ServeReport::new("serve", &fixture.name);
    let n = batch_requests();
    for concurrency in concurrency_levels() {
        let (lat, wall) = run_batch(addr, "/clean?snapshot=cold", &body, n, concurrency);
        report.record("cold", concurrency, &lat, wall);
        let (lat, wall) = run_batch(addr, "/clean", &body, n, concurrency);
        report.record("warm", concurrency, &lat, wall);
    }
    report.metrics = Some(instrumented_metrics(&fixture));
    let path = report.write().expect("write BENCH_serve.json");
    eprintln!("serve report: {}", path.display());

    handle.shutdown();
    server_thread.join().expect("server drained");
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
