//! Markdown table rendering for experiment reports.

/// A simple Markdown table builder.
#[derive(Debug, Default, Clone)]
pub struct MdTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MdTable {
    /// Start a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        MdTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render as GitHub-flavored Markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.header.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.header {
            out.push_str("---|");
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str("| ");
            out.push_str(&r.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Format a ratio as a 2-decimal string (paper style, e.g. `.78` → `0.78`).
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format seconds with 3 decimals.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = MdTable::new(&["dataset", "P", "R"]);
        t.row(vec!["WikiTables".into(), fmt2(0.78), fmt2(0.86)]);
        let s = t.render();
        assert!(s.contains("| dataset | P | R |"));
        assert!(s.contains("| WikiTables | 0.78 | 0.86 |"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = MdTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
