//! **Table 6** — repair precision/recall on RelationalTables:
//! KATARA (both KBs, k=3) against EQ and SCARE, with 10% errors injected
//! into the FD right-hand-side attributes (so SCARE's reliable-attribute
//! assumption holds), per Appendix D.

use katara_baselines::{eq_repair, scare_repair, ScareConfig};
use katara_core::repair::Repair;
use katara_datagen::KbFlavor;
use katara_table::corrupt::{corrupt_table, CorruptionConfig};

use crate::corpus::Corpus;
use crate::experiments::{appendix_d_fds, katara_repair_run};
use crate::metrics::{repair_precision_recall, PatternScore};
use crate::report::{fmt2, MdTable};

/// Results for one RelationalTables member. `None` = N.A.
#[derive(Debug, Clone)]
pub struct Row {
    /// Table name.
    pub table: &'static str,
    /// KATARA with the Yago-like KB.
    pub katara_yago: Option<PatternScore>,
    /// KATARA with the DBpedia-like KB.
    pub katara_dbpedia: Option<PatternScore>,
    /// EQ.
    pub eq: PatternScore,
    /// SCARE.
    pub scare: PatternScore,
}

/// The structured result.
#[derive(Debug, Clone, Default)]
pub struct Table6 {
    /// One row per table.
    pub rows: Vec<Row>,
}

/// k used for KATARA's possible repairs (paper fixes 3 after Figure 8).
pub const K: usize = 3;

/// Run the experiment.
pub fn run(corpus: &Corpus) -> Table6 {
    let mut out = Table6::default();
    for (name, g) in corpus.relational() {
        let (fds, rhs_cols) = appendix_d_fds(name);
        let seed = 0x7AB6 ^ name.len() as u64;

        // KATARA, both flavors (same corruption seed → same dirty data).
        let katara = |flavor: KbFlavor| -> Option<PatternScore> {
            let run = katara_repair_run(corpus, g, flavor, &rhs_cols, K, seed)?;
            if !run.applicable {
                return None;
            }
            Some(repair_precision_recall(&run.log, &run.proposals))
        };
        let katara_yago = katara(KbFlavor::YagoLike);
        let katara_dbpedia = katara(KbFlavor::DbpediaLike);

        // EQ and SCARE on the identical dirty instance.
        let mut dirty = g.table.clone();
        let log = corrupt_table(
            &mut dirty,
            &CorruptionConfig::paper_default(rhs_cols.clone()),
            seed,
        );
        let to_proposals = |changes: &[(usize, usize, String)]| -> Vec<(usize, Vec<Repair>)> {
            let mut by_row: std::collections::BTreeMap<usize, Vec<(usize, String)>> =
                std::collections::BTreeMap::new();
            for (r, c, v) in changes {
                by_row.entry(*r).or_default().push((*c, v.clone()));
            }
            by_row
                .into_iter()
                .map(|(row, changes)| {
                    (
                        row,
                        vec![Repair {
                            cost: changes.len() as f64,
                            changes,
                        }],
                    )
                })
                .collect()
        };
        let eq = repair_precision_recall(&log, &to_proposals(&eq_repair(&dirty, &fds).changes));
        let scare = repair_precision_recall(
            &log,
            &to_proposals(&scare_repair(&dirty, &fds, &ScareConfig::default()).changes),
        );

        out.rows.push(Row {
            table: name,
            katara_yago,
            katara_dbpedia,
            eq,
            scare,
        });
    }
    out
}

impl Table6 {
    /// Lookup one row.
    pub fn row(&self, table: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.table == table)
    }

    /// Render the Markdown section.
    pub fn render(&self) -> String {
        let mut t = MdTable::new(&[
            "table",
            "KATARA(yago) P",
            "KATARA(yago) R",
            "KATARA(dbpedia) P",
            "KATARA(dbpedia) R",
            "EQ P",
            "EQ R",
            "SCARE P",
            "SCARE R",
        ]);
        for r in &self.rows {
            let opt = |s: &Option<PatternScore>, f: fn(&PatternScore) -> f64| match s {
                Some(s) => fmt2(f(s)),
                None => "N.A.".to_string(),
            };
            t.row(vec![
                r.table.to_string(),
                opt(&r.katara_yago, |s| s.p),
                opt(&r.katara_yago, |s| s.r),
                opt(&r.katara_dbpedia, |s| s.p),
                opt(&r.katara_dbpedia, |s| s.r),
                fmt2(r.eq.p),
                fmt2(r.eq.r),
                fmt2(r.scare.p),
                fmt2(r.scare.r),
            ]);
        }
        format!(
            "## Table 6 — data repairing precision and recall (RelationalTables, k = {K})\n\n{}\n\
             Paper shape: KATARA precision ≥ the automatic methods where \
             KB coverage exists; KATARA recall tracks KB coverage \
             (DBpedia strong on Person, weak on University); Soccer is \
             N.A. under Yago; EQ/SCARE recall tracks data redundancy.\n",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn katara_precision_holds_up() {
        let corpus = Corpus::build(&CorpusConfig::small());
        let t6 = run(&corpus);
        assert_eq!(t6.rows.len(), 3);
        let person = t6.row("Person").unwrap();
        let k_dbp = person.katara_dbpedia.expect("dbpedia covers Person");
        assert!(
            k_dbp.p >= 0.6,
            "KATARA(dbpedia) Person precision {:.2} too low",
            k_dbp.p
        );
        // Soccer under Yago must be N.A. (no soccer relationships).
        let soccer = t6.row("Soccer").unwrap();
        assert!(soccer.katara_yago.is_none());
        assert!(t6.render().contains("N.A."));
    }
}
