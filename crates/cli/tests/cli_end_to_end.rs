//! End-to-end tests for the CLI command logic over real temp files —
//! the paper's Figure 1 scenario, driven exactly as a user would.

use std::path::PathBuf;

use katara_cli::{parse_args, run, Command, CrowdMode, RunStatus};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("katara-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

const KB_NT: &str = r#"
<y:capital> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <y:city> .
<y:Rossi> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:person> .
<y:Klate> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:person> .
<y:Pirlo> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:person> .
<y:Italy> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:country> .
<y:SouthAfrica> <http://www.w3.org/2000/01/rdf-schema#label> "S. Africa" .
<y:SouthAfrica> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:country> .
<y:Spain> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:country> .
<y:Rome> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:capital> .
<y:Pretoria> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:capital> .
<y:Madrid> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:capital> .
<y:Rossi> <y:nationality> <y:Italy> .
<y:Klate> <y:nationality> <y:SouthAfrica> .
<y:Pirlo> <y:nationality> <y:Italy> .
<y:Italy> <y:hasCapital> <y:Rome> .
<y:Spain> <y:hasCapital> <y:Madrid> .
"#;

const TABLE_CSV: &str = "A,B,C\n\
    Rossi,Italy,Rome\n\
    Klate,S. Africa,Pretoria\n\
    Pirlo,Italy,Madrid\n";

const FACTS_TSV: &str = "S. Africa\thasCapital\tPretoria\nKlate\tnationality\tS. Africa\n";

#[test]
fn clean_repairs_figure1_from_files() {
    let dir = tmpdir("clean");
    let kb = dir.join("kb.nt");
    let table = dir.join("t.csv");
    let facts = dir.join("facts.tsv");
    let out = dir.join("repaired.csv");
    let enriched = dir.join("enriched.nt");
    std::fs::write(&kb, KB_NT).unwrap();
    std::fs::write(&table, TABLE_CSV).unwrap();
    std::fs::write(&facts, FACTS_TSV).unwrap();

    let args: Vec<String> = [
        "clean",
        "--table",
        table.to_str().unwrap(),
        "--kb",
        kb.to_str().unwrap(),
        "--crowd",
        &format!("facts:{}", facts.display()),
        "--out",
        out.to_str().unwrap(),
        "--enriched-kb",
        enriched.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    run(parse_args(&args).unwrap()).unwrap();

    // Top-1 repair applied: Madrid -> Rome.
    let repaired = std::fs::read_to_string(&out).unwrap();
    assert!(repaired.contains("Pirlo,Italy,Rome"), "{repaired}");
    assert!(repaired.contains("Klate,S. Africa,Pretoria"));

    // Enrichment wrote the confirmed fact back as N-Triples.
    let nt = std::fs::read_to_string(&enriched).unwrap();
    assert!(
        nt.contains("<y:SouthAfrica> <y:hasCapital> <y:Pretoria> ."),
        "{nt}"
    );
    // And the enriched KB reloads.
    let kb2 = katara_kb::ntriples::parse("enriched", &nt).unwrap();
    let sa = kb2.resources_by_label("S. Africa")[0];
    let pretoria = kb2.resources_by_label("Pretoria")[0];
    let has_capital = kb2.property_by_name("y:hasCapital").unwrap();
    assert!(kb2.holds(sa, has_capital, pretoria));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn discover_and_stats_run() {
    let dir = tmpdir("discover");
    let kb = dir.join("kb.nt");
    let table = dir.join("t.csv");
    std::fs::write(&kb, KB_NT).unwrap();
    std::fs::write(&table, TABLE_CSV).unwrap();

    run(Command::KbStats {
        kb: kb.to_str().unwrap().into(),
    })
    .unwrap();
    run(Command::Discover {
        table: table.to_str().unwrap().into(),
        kb: kb.to_str().unwrap().into(),
        k: 3,
    })
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trust_mode_enriches_everything() {
    let dir = tmpdir("trust");
    let kb = dir.join("kb.nt");
    let table = dir.join("t.csv");
    let enriched = dir.join("enriched.nt");
    std::fs::write(&kb, KB_NT).unwrap();
    std::fs::write(&table, TABLE_CSV).unwrap();
    run(Command::Clean {
        table: table.to_str().unwrap().into(),
        kb: kb.to_str().unwrap().into(),
        crowd: CrowdMode::Trust,
        k: 3,
        out: None,
        enriched_kb: Some(enriched.to_str().unwrap().into()),
        max_questions: None,
    })
    .unwrap();
    // Trust mode confirms even the wrong capital: the KB gains both the
    // S. Africa fact and the (wrong) Italy->Madrid fact — the user chose
    // to trust the table.
    let nt = std::fs::read_to_string(&enriched).unwrap();
    assert!(nt.contains("<y:SouthAfrica> <y:hasCapital> <y:Pretoria>"));
    assert!(nt.contains("<y:Italy> <y:hasCapital> <y:Madrid>"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_budget_degrades_instead_of_failing() {
    let dir = tmpdir("budget");
    let kb = dir.join("kb.nt");
    let table = dir.join("t.csv");
    std::fs::write(&kb, KB_NT).unwrap();
    std::fs::write(&table, TABLE_CSV).unwrap();
    let status = run(Command::Clean {
        table: table.to_str().unwrap().into(),
        kb: kb.to_str().unwrap().into(),
        crowd: CrowdMode::Skeptic,
        k: 3,
        out: None,
        enriched_kb: None,
        max_questions: Some(0),
    })
    .unwrap();
    assert_eq!(status, RunStatus::Degraded);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_files_error_cleanly() {
    let err = run(Command::KbStats {
        kb: "/nonexistent/kb.nt".into(),
    })
    .unwrap_err();
    assert!(matches!(err, katara_cli::CliError::Io(_)));
}
