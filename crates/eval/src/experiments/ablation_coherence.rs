//! **Ablation** (not a paper artifact): how much of RankJoin's Table 2
//! advantage comes from the coherence terms of §4.2? Re-runs the Table 2
//! protocol with the coherence weight swept over {0, ½, 1}; weight 0 is
//! exactly the paper's `naiveScore` strawman.

use katara_core::rank_join::{discover_topk, DiscoveryConfig};
use katara_core::scoring::ScoringConfig;
use katara_datagen::KbFlavor;

use crate::corpus::Corpus;
use crate::experiments::{candidates_for, flavors, ground_truth_for};
use crate::metrics::{pattern_precision_recall, PatternScore};
use crate::report::{fmt2, MdTable};

/// The coherence weights swept.
pub const WEIGHTS: [f64; 3] = [0.0, 0.5, 1.0];

/// One (dataset, flavor) row: top-1 score per weight.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset family.
    pub dataset: &'static str,
    /// KB flavor.
    pub flavor: KbFlavor,
    /// One score per [`WEIGHTS`] entry.
    pub scores: [PatternScore; 3],
}

/// The structured result.
#[derive(Debug, Clone, Default)]
pub struct AblationCoherence {
    /// All rows.
    pub rows: Vec<Row>,
}

/// Run the ablation.
pub fn run(corpus: &Corpus) -> AblationCoherence {
    let mut out = AblationCoherence::default();
    for flavor in flavors() {
        let kb = corpus.kb(flavor);
        for (name, tables) in corpus.families() {
            let mut sums = [PatternScore::default(); 3];
            let mut n = 0usize;
            for g in &tables {
                let cands = candidates_for(&g.table, &kb);
                let (gt_types, gt_rels) = ground_truth_for(g, flavor);
                n += 1;
                for (wi, &w) in WEIGHTS.iter().enumerate() {
                    let cfg = DiscoveryConfig {
                        scoring: ScoringConfig {
                            coherence_weight: w,
                        },
                        max_states: 0,
                        ..DiscoveryConfig::default()
                    };
                    let top = discover_topk(&g.table, &kb, &cands, 1, &cfg);
                    let s = top
                        .first()
                        .map(|p| pattern_precision_recall(&kb, p, &gt_types, &gt_rels))
                        .unwrap_or_default();
                    sums[wi].p += s.p;
                    sums[wi].r += s.r;
                }
            }
            let mut scores = [PatternScore::default(); 3];
            if n > 0 {
                for (wi, s) in sums.into_iter().enumerate() {
                    scores[wi] = PatternScore {
                        p: s.p / n as f64,
                        r: s.r / n as f64,
                    };
                }
            }
            out.rows.push(Row {
                dataset: name,
                flavor,
                scores,
            });
        }
    }
    out
}

impl AblationCoherence {
    /// Lookup a row.
    pub fn row(&self, dataset: &str, flavor: KbFlavor) -> Option<&Row> {
        self.rows
            .iter()
            .find(|r| r.dataset == dataset && r.flavor == flavor)
    }

    /// Render the Markdown section.
    pub fn render(&self) -> String {
        let mut out =
            String::from("## Ablation — coherence weight in the scoring model (top-1 F)\n\n");
        for flavor in flavors() {
            let mut t = MdTable::new(&["dataset", "naive (w=0)", "w=0.5", "full (w=1)"]);
            for r in self.rows.iter().filter(|r| r.flavor == flavor) {
                t.row(vec![
                    r.dataset.to_string(),
                    fmt2(r.scores[0].f_measure()),
                    fmt2(r.scores[1].f_measure()),
                    fmt2(r.scores[2].f_measure()),
                ]);
            }
            out.push_str(&format!("### {}\n\n{}\n", flavor.name(), t.render()));
        }
        out.push_str(
            "Weight 0 is §4.2's `naiveScore` strawman. On the ambiguous \
             (Yago-like) KB the coherence terms pay for themselves; on a \
             clean flat ontology they can cost a leaf-vs-supertype point \
             (relational consistency sometimes prefers the broader type) \
             — the trade Example 5 argues for.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn ablation_is_structurally_sane() {
        // The tiny test corpus is too small for the coherence win to show
        // (the dual-type ambiguity needs the full-size star pool; see the
        // generated EXPERIMENTS.md for the real sweep) — here we only
        // check the sweep runs, stays bounded, and renders.
        let corpus = Corpus::build(&CorpusConfig::small());
        let a = run(&corpus);
        assert_eq!(a.rows.len(), 6);
        for r in &a.rows {
            let naive = r.scores[0].f_measure();
            let full = r.scores[2].f_measure();
            assert!(
                full >= naive - 0.10,
                "{}/{:?}: coherence hurt badly ({full:.2} vs {naive:.2})",
                r.dataset,
                r.flavor
            );
            for s in &r.scores {
                assert!((0.0..=1.0).contains(&s.p) && (0.0..=1.0).contains(&s.r));
            }
        }
        assert!(a.render().contains("naive"));
    }
}
