//! # katara-core — the KATARA data cleaning system
//!
//! The primary contribution of *KATARA: A Data Cleaning System Powered by
//! Knowledge Bases and Crowdsourcing* (SIGMOD 2015), implemented end to
//! end:
//!
//! * [`pattern`] — table patterns (§3.2): labelled directed graphs mapping
//!   columns to KB types and column pairs to KB relationships, with the
//!   full/partial tuple match semantics;
//! * [`candidates`] — candidate type/relationship discovery with tf-idf
//!   ranking (§4.1);
//! * [`scoring`] — the pattern scoring model combining tf-idf with PMI
//!   coherence (§4.2);
//! * [`rank_join`] — top-k pattern discovery with early termination and
//!   type pruning (Algorithms 1–2, §4.3), plus the exhaustive baseline
//!   used for ablation;
//! * [`validation`] — crowd pattern validation with entropy-based
//!   question scheduling (Algorithm 3, §5): MUVF and the AVI baseline;
//! * [`annotation`] — data annotation by KB and crowd with KB enrichment
//!   (§6.1);
//! * [`repair`] — top-k possible repairs from KB instance graphs via
//!   inverted lists (Algorithm 4, §6.2);
//! * [`derived`] — multi-hop (composed) pattern edges, the §9 future-work
//!   extension;
//! * [`ingest`] — unified accounting for what lenient KB/table ingestion
//!   quarantined or repaired, folded into the degradation report;
//! * [`pipeline`] — the end-to-end facade gluing the modules together
//!   (§2), including multi-KB selection.
//!
//! Every stage reports what it did through the zero-dependency
//! `katara-obs` layer (re-exported via the [`prelude`]): attach a
//! [`katara_obs::RunRecorder`] to [`pipeline::KataraConfig::recorder`]
//! and a full `clean` run produces a per-phase span tree plus
//! deterministic counters — KB probes, snapshot-tier hits, crowd spend —
//! exportable as stable JSON ([`katara_obs::RunMetrics`]).
//!
//! ```
//! use katara_core::prelude::*;
//! use katara_crowd::{Answer, Crowd, CrowdConfig, FixedOracle};
//! use katara_kb::KbBuilder;
//! use katara_table::Table;
//!
//! // Build the paper's Figure 1 setting in miniature.
//! let mut b = KbBuilder::new();
//! let country = b.class("country");
//! let capital = b.class("capital");
//! let has_capital = b.property("hasCapital");
//! let italy = b.entity("Italy", &[country]);
//! let rome = b.entity("Rome", &[capital]);
//! b.fact(italy, has_capital, rome);
//! let kb = b.finalize();
//!
//! let mut t = Table::with_opaque_columns("pairs", 2);
//! t.push_text_row(&["Italy", "Rome"]);
//!
//! let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
//! let patterns = discover_topk(&t, &kb, &cands, 3, &DiscoveryConfig::default());
//! assert!(!patterns.is_empty());
//! let best = &patterns[0];
//! assert_eq!(best.node_for_column(0).unwrap().class, Some(country));
//! ```

#![warn(missing_docs)]

pub mod annotation;
pub mod candidates;
pub mod delta;
pub mod derived;
pub mod error;
pub mod ingest;
pub mod pattern;
pub mod pipeline;
pub mod rank_join;
pub mod repair;
pub mod resolve;
pub mod scoring;
pub mod validation;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::annotation::{
        annotate, annotate_resolved, AnnotationConfig, AnnotationResult, Category, TupleStatus,
    };
    pub use crate::candidates::{
        discover_candidates, discover_candidates_direct, discover_candidates_resolved,
        CandidateConfig, CandidateSet, RelCandidate, TypeCandidate,
    };
    pub use crate::delta::DeltaSession;
    pub use crate::error::KataraError;
    pub use crate::ingest::IngestSummary;
    pub use crate::pattern::{MatchReport, PatternEdge, PatternNode, TablePattern, TupleMatch};
    pub use crate::pipeline::{CleaningReport, DegradationReport, Katara, KataraConfig};
    pub use crate::rank_join::{discover_exhaustive, discover_topk, DiscoveryConfig};
    pub use crate::repair::{
        generate_repairs, generate_repairs_resolved, topk_repairs, topk_repairs_resolved, Repair,
        RepairConfig, RepairIndex,
    };
    pub use crate::resolve::{ResolveMode, TableResolution};
    pub use crate::scoring::{score_pattern, ScoringConfig};
    pub use crate::validation::{
        validate_patterns, SchedulingStrategy, ValidationConfig, ValidationOutcome,
    };
    pub use katara_exec::{Deadline, Threads};
    pub use katara_kb::{DeltaOp, EnrichmentDelta};
    pub use katara_obs::{NoopRecorder, Recorder, RunMetrics, RunRecorder, Span};
    pub use katara_table::{TableDelta, TableEdit};
}

pub use prelude::*;
