//! # katara-crowd — a simulated crowdsourcing platform
//!
//! KATARA's evaluation uses an *expert crowd* ("10 students" assumed to
//! know the reference KB, §7.2). This crate simulates that setup so the
//! experiments are reproducible: a pool of [`Worker`]s answers
//! [`Question`]s; each worker gives the ground-truth answer (supplied by an
//! [`Oracle`]) with its configured accuracy, and an adversarially-uniform
//! wrong answer otherwise. The [`Crowd`] platform replicates each question
//! (paper: "each question is asked three times, and the majority answer is
//! taken"), aggregates by plurality vote, and accounts every question and
//! worker answer for the cost experiments (Table 4, Figure 7).
//!
//! The crate is deliberately KB-agnostic: questions carry display strings,
//! so the same platform serves pattern validation (§5) and data annotation
//! (§6) and could front a real crowd.
//!
//! Real crowds are unreliable, so the platform also carries a failure
//! model (the [`fault`] module): a deterministic [`FaultPlan`] injects
//! worker dropout, abstention, spam, and latency; a [`Budget`] caps
//! spending; and [`Crowd::ask`] is fallible, returning an [`AskOutcome`]
//! — no-quorum questions are retried at escalated replication per the
//! [`RetryPolicy`] before the crowd gives up. With the default (inert)
//! plan and an unlimited budget the platform behaves exactly like a
//! reliable crowd.
//!
//! Aggregation is pluggable (the [`aggregate`] module): the default
//! [`AggregationMode::Plurality`] reproduces the paper's majority vote
//! byte for byte, while [`AggregationMode::DawidSkene`] infers a unified
//! per-worker quality score by fixed-iteration EM, stops collecting
//! replicas early once the answer posterior is confident, and escalates
//! disagreements to fresh workers — all charged against the same
//! [`Budget`].

#![warn(missing_docs)]

pub mod aggregate;
pub mod fault;
pub mod oracle;
pub mod platform;
pub mod question;
pub mod worker;

pub use aggregate::{AggregationMode, DawidSkene, DawidSkeneConfig, Posterior};
pub use fault::{AskOutcome, Budget, BudgetState, CrowdError, FaultPlan, RetryPolicy};
pub use oracle::{FixedOracle, Oracle};
pub use platform::{Crowd, CrowdConfig, CrowdStats};
pub use question::{Answer, Question, QuestionKind};
pub use worker::Worker;
