//! Bench for the **shared KB query snapshot** (DESIGN.md §5e): a full
//! end-to-end cleaning run with the [`TableResolution`] built inside the
//! run ("cold") vs injected pre-built ("snapshot"). Emits
//! `BENCH_resolve.json` at the workspace root with the cold/snapshot
//! wall times, the speedup, and the fixture's distinct-value ratio
//! (quick mode via `KATARA_BENCH_QUICK=1`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use katara_bench::{perf, resolve_crowd, resolve_fixture, ResolveFixture};
use katara_core::annotation::AnnotationConfig;
use katara_core::resolve::TableResolution;
use katara_core::validation::ValidationConfig;
use katara_core::{Katara, KataraConfig};

/// The bench pipeline config: enrichment off so the KB is immutable
/// across iterations (the pre-built snapshot stays current), one
/// question per variable so crowd chatter stays small relative to
/// resolution work.
fn bench_config() -> KataraConfig {
    KataraConfig {
        annotation: AnnotationConfig {
            enrich_kb: false,
            ..AnnotationConfig::default()
        },
        validation: ValidationConfig {
            questions_per_variable: 1,
            ..ValidationConfig::default()
        },
        ..KataraConfig::default()
    }
}

fn clean_cold(f: &ResolveFixture) {
    let katara = Katara::new(bench_config());
    let mut kb = f.kb.clone();
    let mut crowd = resolve_crowd(f);
    black_box(
        katara
            .clean(&f.table.table, &mut kb, &mut crowd)
            .expect("cold clean"),
    );
}

fn clean_snapshot(f: &ResolveFixture, res: &TableResolution) {
    let katara = Katara::new(bench_config());
    let mut kb = f.kb.clone();
    let mut crowd = resolve_crowd(f);
    black_box(
        katara
            .clean_with_resolution(&f.table.table, &mut kb, &mut crowd, Some(res))
            .expect("snapshot clean"),
    );
}

/// Cold vs snapshot-cached end-to-end clean. The Criterion group gives
/// the interactive view; the [`perf::ResolveReport`] gives the
/// machine-readable artifact.
fn bench_resolve(c: &mut Criterion) {
    let fixture = resolve_fixture();
    let config = bench_config();
    let res = TableResolution::build(
        &fixture.table.table,
        &fixture.kb,
        config.candidates.max_rows,
    );
    eprintln!(
        "resolve fixture: {} ({} injected errors, distinct ratio {:.4})",
        fixture.name,
        fixture.errors,
        res.distinct_ratio()
    );

    let mut group = c.benchmark_group("resolve_snapshot");
    group.sample_size(10);
    group.bench_function("cold", |b| b.iter(|| clean_cold(&fixture)));
    group.bench_function("snapshot", |b| b.iter(|| clean_snapshot(&fixture, &res)));
    group.finish();

    let mut report = perf::ResolveReport::new("resolve", &fixture.name, res.distinct_ratio());
    report.measure("cold", perf::sweep_iters(), || clean_cold(&fixture));
    report.measure("snapshot", perf::sweep_iters(), || {
        clean_snapshot(&fixture, &res)
    });
    // One untimed instrumented end-to-end run (cold, so the pipeline
    // builds — and instruments — its own snapshot) for the report's
    // logical-work metrics.
    let rec = std::sync::Arc::new(katara_obs::RunRecorder::new());
    let mut obs_config = bench_config();
    obs_config.recorder = rec.clone();
    obs_config.threads = katara_core::Threads::fixed(1);
    obs_config.candidates.threads = katara_core::Threads::fixed(1);
    let katara = Katara::new(obs_config);
    let mut kb = fixture.kb.clone();
    let mut crowd = resolve_crowd(&fixture);
    black_box(
        katara
            .clean(&fixture.table.table, &mut kb, &mut crowd)
            .expect("instrumented clean"),
    );
    let mut metrics = rec.snapshot();
    metrics.threads = 1;
    report.metrics = Some(metrics);
    let path = report.write().expect("write BENCH_resolve.json");
    eprintln!("resolve report: {}", path.display());
}

criterion_group!(benches, bench_resolve);
criterion_main!(benches);
