//! The crowd platform: replication, answer aggregation (plurality or
//! Dawid–Skene EM), cost accounting, fault injection, budgets, and
//! retries.

use std::collections::HashMap;

use katara_exec::Deadline;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::aggregate::{AggregationMode, DawidSkene, DawidSkeneConfig};
use crate::fault::{AskOutcome, Budget, BudgetState, CrowdError, FaultPlan, RetryPolicy};
use crate::oracle::Oracle;
use crate::question::{Answer, Question, QuestionKind};
use crate::worker::Worker;

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct CrowdConfig {
    /// Size of the worker pool (paper: 10 students).
    pub num_workers: usize,
    /// Replicas per question (paper: "each question is asked three
    /// times, and the majority answer is taken").
    pub replication: usize,
    /// Accuracy of every worker (the paper assumes experts; 0.95 default).
    pub worker_accuracy: f64,
    /// Seed for worker assignment and worker error streams.
    pub seed: u64,
    /// Fault-injection plan; the default injects nothing.
    pub faults: FaultPlan,
    /// Usage limits; the default is unlimited.
    pub budget: Budget,
    /// Retry policy for no-quorum questions (default: 3 attempts,
    /// replication escalating 3 → 5 → 7).
    pub retry: RetryPolicy,
    /// How replicated answers are aggregated. The default,
    /// [`AggregationMode::Plurality`], is the paper's scheme and is
    /// byte-identical to the pre-aggregation platform — the Dawid–Skene
    /// machinery is never consulted and no extra randomness is drawn.
    pub aggregation: AggregationMode,
    /// Dawid–Skene knobs (EM rounds, confidence threshold, quality
    /// prior). Inert unless `aggregation` selects
    /// [`AggregationMode::DawidSkene`].
    pub quality: DawidSkeneConfig,
}

impl Default for CrowdConfig {
    fn default() -> Self {
        CrowdConfig {
            num_workers: 10,
            replication: 3,
            worker_accuracy: 0.95,
            seed: 0,
            faults: FaultPlan::default(),
            budget: Budget::default(),
            retry: RetryPolicy::default(),
            aggregation: AggregationMode::default(),
            quality: DawidSkeneConfig::default(),
        }
    }
}

/// Cost and degradation accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrowdStats {
    /// Distinct questions issued, by kind (retried attempts of the same
    /// question count once per attempt — each re-issue is a new HIT).
    pub questions_by_kind: HashMap<QuestionKind, usize>,
    /// Total worker answers actually collected (dropouts and abstentions
    /// deliver nothing and are not counted here).
    pub worker_answers: usize,
    /// Attempts beyond the first, across all questions.
    pub questions_retried: usize,
    /// Total extra replicas requested by retry escalation.
    pub escalations: usize,
    /// Replica slots lost to worker dropout.
    pub dropouts: usize,
    /// Replica slots lost to worker abstention.
    pub abstentions: usize,
    /// Answers produced by spammer workers.
    pub spammer_answers: usize,
    /// Questions that exhausted the retry policy without a quorum.
    pub no_quorum_questions: usize,
    /// Ask attempts denied by the budget.
    pub budget_denied: usize,
    /// Ask attempts denied because the [`Deadline`] had expired.
    pub deadline_denied: usize,
    /// Total simulated answer latency, in milliseconds.
    pub simulated_latency_ms: u64,
    /// EM iterations executed by the Dawid–Skene aggregator (compute
    /// accounting; always zero under plurality).
    pub em_iterations: usize,
    /// Asks settled because posterior confidence cleared the threshold
    /// (Dawid–Skene only).
    pub posterior_confident: usize,
    /// Replica slots adaptive replication never issued because the
    /// posterior was already confident (Dawid–Skene only).
    pub questions_saved: usize,
}

impl CrowdStats {
    /// Total distinct questions issued.
    pub fn questions(&self) -> usize {
        self.questions_by_kind.values().sum()
    }

    /// Questions of one kind.
    pub fn questions_of(&self, kind: QuestionKind) -> usize {
        self.questions_by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Counter-wise difference `self - earlier`, for callers that
    /// snapshot stats before a phase and want that phase's cost alone.
    /// Saturates at zero if `earlier` is not actually earlier.
    pub fn since(&self, earlier: &CrowdStats) -> CrowdStats {
        let mut questions_by_kind = self.questions_by_kind.clone();
        for (kind, n) in &earlier.questions_by_kind {
            let e = questions_by_kind.entry(*kind).or_insert(0);
            *e = e.saturating_sub(*n);
        }
        questions_by_kind.retain(|_, n| *n > 0);
        CrowdStats {
            questions_by_kind,
            worker_answers: self.worker_answers.saturating_sub(earlier.worker_answers),
            questions_retried: self
                .questions_retried
                .saturating_sub(earlier.questions_retried),
            escalations: self.escalations.saturating_sub(earlier.escalations),
            dropouts: self.dropouts.saturating_sub(earlier.dropouts),
            abstentions: self.abstentions.saturating_sub(earlier.abstentions),
            spammer_answers: self.spammer_answers.saturating_sub(earlier.spammer_answers),
            no_quorum_questions: self
                .no_quorum_questions
                .saturating_sub(earlier.no_quorum_questions),
            budget_denied: self.budget_denied.saturating_sub(earlier.budget_denied),
            deadline_denied: self.deadline_denied.saturating_sub(earlier.deadline_denied),
            simulated_latency_ms: self
                .simulated_latency_ms
                .saturating_sub(earlier.simulated_latency_ms),
            em_iterations: self.em_iterations.saturating_sub(earlier.em_iterations),
            posterior_confident: self
                .posterior_confident
                .saturating_sub(earlier.posterior_confident),
            questions_saved: self.questions_saved.saturating_sub(earlier.questions_saved),
        }
    }
}

/// A simulated crowdsourcing platform bound to a ground-truth oracle.
///
/// Questions are replicated over randomly-assigned workers and aggregated
/// per the configured [`AggregationMode`]: plurality voting (the default)
/// or Dawid–Skene EM with adaptive replication. Under a non-default
/// [`FaultPlan`] workers may drop out, abstain, or spam; an attempt only
/// counts if a majority of its requested replicas actually respond
/// (quorum), and failed attempts are re-issued at escalated replication
/// per the [`RetryPolicy`]. A [`Budget`] caps total questions and
/// collected answers.
#[derive(Debug)]
pub struct Crowd<O> {
    oracle: O,
    workers: Vec<Worker>,
    assign_rng: StdRng,
    replication: usize,
    faults: FaultPlan,
    fault_rng: StdRng,
    /// `spammers[i]` marks worker `i` as a spammer.
    spammers: Vec<bool>,
    budget: Budget,
    budget_state: BudgetState,
    retry: RetryPolicy,
    /// Cooperative wall-clock cutoff, checked before every ask attempt.
    /// Inert by default; set per run via [`Crowd::set_deadline`].
    deadline: Deadline,
    aggregation: AggregationMode,
    /// Worker-quality state; `Some` exactly in Dawid–Skene mode.
    quality: Option<DawidSkene>,
    /// Distinct Dawid–Skene asks so far — the escalation pacer's clock.
    ds_asks: usize,
    stats: CrowdStats,
}

impl<O: Oracle> Crowd<O> {
    /// Build a platform from a config and oracle.
    ///
    /// Fails with a [`CrowdError`] if the pool is empty, replication is
    /// zero, or the fault plan has out-of-range rates.
    pub fn new(config: CrowdConfig, oracle: O) -> Result<Self, CrowdError> {
        if config.num_workers == 0 {
            return Err(CrowdError::NoWorkers);
        }
        if config.replication == 0 {
            return Err(CrowdError::NoReplication);
        }
        if !(0.0..=1.0).contains(&config.worker_accuracy) {
            return Err(CrowdError::InvalidRate {
                what: "worker_accuracy",
                value: config.worker_accuracy,
            });
        }
        config.faults.validate()?;
        if config.aggregation == AggregationMode::DawidSkene {
            if !(0.0..=1.0).contains(&config.quality.posterior_confident) {
                return Err(CrowdError::InvalidRate {
                    what: "posterior_confident",
                    value: config.quality.posterior_confident,
                });
            }
            if !(0.0..=config.quality.posterior_confident).contains(&config.quality.escalate_below)
            {
                return Err(CrowdError::InvalidRate {
                    what: "escalate_below",
                    value: config.quality.escalate_below,
                });
            }
            if !(config.quality.prior_quality > 0.0 && config.quality.prior_quality < 1.0) {
                return Err(CrowdError::InvalidRate {
                    what: "prior_quality",
                    value: config.quality.prior_quality,
                });
            }
        }
        let quality = match config.aggregation {
            AggregationMode::Plurality => None,
            AggregationMode::DawidSkene => {
                Some(DawidSkene::new(config.quality.clone(), config.num_workers))
            }
        };
        let workers: Vec<Worker> = (0..config.num_workers)
            .map(|i| Worker::new(i, config.worker_accuracy, config.seed))
            .collect();
        let spammers = Self::pick_spammers(&config.faults, config.num_workers);
        Ok(Crowd {
            oracle,
            workers,
            assign_rng: StdRng::seed_from_u64(config.seed.wrapping_add(0xC0FFEE)),
            replication: config.replication,
            fault_rng: StdRng::seed_from_u64(config.faults.seed.wrapping_add(0xFA_117)),
            faults: config.faults,
            spammers,
            budget: config.budget,
            budget_state: BudgetState::default(),
            retry: config.retry,
            deadline: Deadline::none(),
            aggregation: config.aggregation,
            quality,
            ds_asks: 0,
            stats: CrowdStats::default(),
        })
    }

    /// Deterministically select `round(fraction × n)` spammer workers
    /// from the fault seed (a dedicated stream, so spammer identity does
    /// not perturb the per-ask fault draws).
    fn pick_spammers(faults: &FaultPlan, n: usize) -> Vec<bool> {
        let mut spammers = vec![false; n];
        let k = ((faults.spammer_fraction * n as f64).round() as usize).min(n);
        if k == 0 {
            return spammers;
        }
        let mut rng = StdRng::seed_from_u64(faults.seed.wrapping_add(0x5EED_5EED));
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: the first k entries are a uniform sample.
        for i in 0..k {
            let j = rng.random_range(i..n);
            idx.swap(i, j);
            spammers[idx[i]] = true;
        }
        spammers
    }

    /// Issue one question.
    ///
    /// Each attempt assigns `replication` (escalated on retries) random
    /// workers; answers surviving dropout/abstention are aggregated per
    /// the configured [`AggregationMode`]. An attempt whose responses
    /// fall below a majority of its requested replicas has no quorum and
    /// is retried per the [`RetryPolicy`]. Budget is checked before
    /// every attempt.
    ///
    /// Under plurality, ties break toward the lowest option slot,
    /// deterministically — this path is byte-identical to the
    /// pre-aggregation platform. Under Dawid–Skene the attempt stops
    /// collecting answers early once the posterior is confident
    /// (adaptive replication), and a quorum whose posterior stays below
    /// the confidence bar counts as disagreement: the question is
    /// re-asked with fresh workers at escalated replication, falling
    /// back to the best unconfident answer when attempts, budget, or
    /// deadline run out.
    pub fn ask(&mut self, q: &Question) -> AskOutcome {
        match self.aggregation {
            AggregationMode::Plurality => self.ask_plurality(q),
            AggregationMode::DawidSkene => self.ask_dawid_skene(q),
        }
    }

    /// The plurality ask loop — the byte-equivalence baseline.
    fn ask_plurality(&mut self, q: &Question) -> AskOutcome {
        let base = self.replication;
        for attempt in 0..self.retry.max_attempts.max(1) {
            // The deadline outranks the budget: an expired run must stop
            // spending money, not report the money as the problem.
            if self.deadline.expired() {
                self.stats.deadline_denied += 1;
                if attempt == 0 {
                    return AskOutcome::DeadlineExpired;
                }
                self.stats.no_quorum_questions += 1;
                return AskOutcome::NoQuorum;
            }
            let replicas = self.retry.replication_for(base, attempt);
            if !self.budget_allows(replicas) {
                self.budget_state.exhausted = true;
                self.stats.budget_denied += 1;
                if attempt == 0 {
                    return AskOutcome::BudgetExhausted;
                }
                self.stats.no_quorum_questions += 1;
                return AskOutcome::NoQuorum;
            }
            if attempt > 0 {
                self.stats.questions_retried += 1;
                self.stats.escalations += replicas - base;
            }
            if let Some(a) = self.attempt(q, replicas) {
                return AskOutcome::Answered(a);
            }
        }
        self.stats.no_quorum_questions += 1;
        AskOutcome::NoQuorum
    }

    /// The Dawid–Skene ask loop: same deadline/budget/retry skeleton as
    /// plurality, but a quorumed-yet-unconfident attempt escalates too,
    /// and its answer is kept as a fallback so running out of attempts,
    /// budget, or deadline degrades to the best disagreement answer
    /// instead of a hard no-quorum.
    fn ask_dawid_skene(&mut self, q: &Question) -> AskOutcome {
        self.ds_asks += 1;
        let base = self.replication;
        let quorum = base / 2 + 1;
        let (threshold, escalate_below) = {
            let c = self.quality.as_ref().expect("dawid-skene mode").config();
            (c.posterior_confident, c.escalate_below)
        };
        let correct = self.oracle.answer(q);
        let num_candidates = q.num_options() - usize::from(!matches!(q, Question::Fact { .. }));
        let is_bool = matches!(q, Question::Fact { .. });
        let num_slots = q.num_options();
        let faults_active = !self.faults.is_inert();
        // Votes accumulate across escalation attempts: fresh workers are
        // *added* to the pool of evidence; answers already paid for are
        // never discarded (unlike the plurality retry, which re-asks from
        // scratch — EM can weigh a mixed-vintage vote set, a show of
        // hands cannot).
        let mut votes: Vec<(usize, usize)> = Vec::new();
        let mut last: Option<crate::aggregate::Posterior> = None;
        let mut confident = false;
        for attempt in 0..self.retry.max_attempts.max(1) {
            let add = if attempt == 0 {
                base
            } else {
                self.retry.escalation_step.max(1)
            };
            if self.deadline.expired() {
                self.stats.deadline_denied += 1;
                if attempt == 0 {
                    return AskOutcome::DeadlineExpired;
                }
                break; // settle on the evidence already collected
            }
            if !self.budget_allows(add) {
                self.budget_state.exhausted = true;
                self.stats.budget_denied += 1;
                if attempt == 0 {
                    return AskOutcome::BudgetExhausted;
                }
                break;
            }
            if attempt > 0 {
                self.stats.questions_retried += 1;
                self.stats.escalations += add;
            }
            let mut issued = 0usize;
            for _ in 0..add {
                issued += 1;
                let wi = self.assign_rng.random_range(0..self.workers.len());
                if faults_active {
                    if self.faults.dropout_rate > 0.0
                        && self.fault_rng.random_bool(self.faults.dropout_rate)
                    {
                        self.stats.dropouts += 1;
                        continue;
                    }
                    if self.faults.abstain_rate > 0.0
                        && self.fault_rng.random_bool(self.faults.abstain_rate)
                    {
                        self.stats.abstentions += 1;
                        continue;
                    }
                    let (lo, hi) = self.faults.latency_ms;
                    if hi > 0 {
                        self.stats.simulated_latency_ms += if hi > lo {
                            self.fault_rng.random_range(lo..=hi)
                        } else {
                            hi
                        };
                    }
                }
                let a = if faults_active && self.spammers[wi] {
                    self.stats.spammer_answers += 1;
                    let slot = self.fault_rng.random_range(0..q.num_options());
                    Answer::from_slot(slot, num_candidates, is_bool)
                } else {
                    self.workers[wi].respond(q, correct)
                };
                votes.push((wi, a.slot(num_candidates)));
                self.stats.worker_answers += 1;
                self.budget_state.answers_used += 1;
                // Adaptive replication: once a quorum has answered, peek
                // at the posterior and stop paying for replicas a
                // confident answer does not need.
                if votes.len() >= quorum {
                    let post = self
                        .quality
                        .as_ref()
                        .expect("dawid-skene mode")
                        .posterior(num_slots, &votes);
                    self.stats.em_iterations += post.iterations;
                    let is_confident = post.confidence >= threshold;
                    last = Some(post);
                    if is_confident {
                        confident = true;
                        break;
                    }
                }
            }
            // Each attempt is a new HIT, exactly like the plurality path.
            *self.stats.questions_by_kind.entry(q.kind()).or_insert(0) += 1;
            self.budget_state.questions_used += 1;
            if confident {
                self.stats.questions_saved += add - issued;
                break;
            }
            if votes.len() >= quorum {
                let conf = last
                    .as_ref()
                    .expect("quorum implies a posterior evaluation")
                    .confidence;
                if conf >= escalate_below {
                    // Not torn enough to pay for more replicas: the
                    // weighted MAP answer stands.
                    break;
                }
                // Genuine disagreement — escalate to fresh workers,
                // subject to pacing under a capped budget: escalations
                // may spend only replicas that adaptive replication has
                // already saved, so the run never outpaces plurality's
                // base-replication spend and late questions are never
                // starved by early disagreements.
                let add_next = self.retry.escalation_step.max(1);
                let paced = match self.budget.max_worker_answers {
                    None => true,
                    Some(_) => self.budget_state.answers_used + add_next <= base * self.ds_asks,
                };
                if !paced {
                    break;
                }
            }
            // Below quorum (dropout/abstention): retry, like plurality.
        }
        if votes.len() < quorum {
            self.stats.no_quorum_questions += 1;
            return AskOutcome::NoQuorum;
        }
        let post = last.expect("quorum implies a posterior evaluation");
        self.quality
            .as_mut()
            .expect("dawid-skene mode")
            .commit(q.kind(), &votes, &post);
        if confident {
            self.stats.posterior_confident += 1;
        }
        AskOutcome::Answered(Answer::from_slot(post.slot, num_candidates, is_bool))
    }

    /// True when the budget can fund one more question with `replicas`
    /// collected answers in the worst case.
    fn budget_allows(&self, replicas: usize) -> bool {
        let q_ok = self
            .budget
            .max_questions
            .is_none_or(|m| self.budget_state.questions_used < m);
        let a_ok = self
            .budget
            .max_worker_answers
            .is_none_or(|m| self.budget_state.answers_used + replicas <= m);
        q_ok && a_ok
    }

    /// One attempt at `replicas` replication. Returns the plurality
    /// answer, or `None` if fewer than a majority of replicas responded.
    fn attempt(&mut self, q: &Question, replicas: usize) -> Option<Answer> {
        let correct = self.oracle.answer(q);
        let num_candidates = q.num_options() - usize::from(!matches!(q, Question::Fact { .. }));
        let is_bool = matches!(q, Question::Fact { .. });
        // When the plan is inert the fault stream is never consumed and
        // every replica responds, so this is exactly the reliable-crowd
        // code path.
        let faults_active = !self.faults.is_inert();
        let mut votes: HashMap<usize, usize> = HashMap::new();
        let mut responses = 0usize;
        for _ in 0..replicas {
            let wi = self.assign_rng.random_range(0..self.workers.len());
            if faults_active {
                if self.faults.dropout_rate > 0.0
                    && self.fault_rng.random_bool(self.faults.dropout_rate)
                {
                    self.stats.dropouts += 1;
                    continue;
                }
                if self.faults.abstain_rate > 0.0
                    && self.fault_rng.random_bool(self.faults.abstain_rate)
                {
                    self.stats.abstentions += 1;
                    continue;
                }
                let (lo, hi) = self.faults.latency_ms;
                if hi > 0 {
                    self.stats.simulated_latency_ms += if hi > lo {
                        self.fault_rng.random_range(lo..=hi)
                    } else {
                        hi
                    };
                }
            }
            let a = if faults_active && self.spammers[wi] {
                self.stats.spammer_answers += 1;
                let slot = self.fault_rng.random_range(0..q.num_options());
                Answer::from_slot(slot, num_candidates, is_bool)
            } else {
                self.workers[wi].respond(q, correct)
            };
            *votes.entry(a.slot(num_candidates)).or_insert(0) += 1;
            responses += 1;
            self.stats.worker_answers += 1;
            self.budget_state.answers_used += 1;
        }
        *self.stats.questions_by_kind.entry(q.kind()).or_insert(0) += 1;
        self.budget_state.questions_used += 1;
        if responses < replicas / 2 + 1 {
            return None;
        }
        let (&slot, _) = votes
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .expect("quorum implies at least one vote");
        Some(Answer::from_slot(slot, num_candidates, is_bool))
    }

    /// Ask the same question `times` times (the paper asks `q` questions
    /// per variable with different sample tuples; the *caller* varies the
    /// samples) and return the per-ask outcomes.
    pub fn ask_repeated(&mut self, questions: &[Question]) -> Vec<AskOutcome> {
        questions.iter().map(|q| self.ask(q)).collect()
    }

    /// Accumulated cost statistics.
    pub fn stats(&self) -> &CrowdStats {
        &self.stats
    }

    /// Reset the statistics (e.g. between experiment phases). Budget
    /// accounting is *not* reset: spent money stays spent.
    pub fn reset_stats(&mut self) {
        self.stats = CrowdStats::default();
    }

    /// Live budget accounting.
    pub fn budget_state(&self) -> &BudgetState {
        &self.budget_state
    }

    /// Questions still allowed by the budget, `None` when the question
    /// budget is unlimited.
    pub fn budget_remaining(&self) -> Option<usize> {
        self.budget
            .max_questions
            .map(|m| m.saturating_sub(self.budget_state.questions_used))
    }

    /// True once any request has been denied for lack of budget.
    pub fn is_budget_exhausted(&self) -> bool {
        self.budget_state.exhausted
    }

    /// The fault plan this crowd was built with.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The configured aggregation mode.
    pub fn aggregation(&self) -> AggregationMode {
        self.aggregation
    }

    /// The learned unified quality score of `worker` — `None` under
    /// plurality, where no quality state exists.
    pub fn worker_quality(&self, worker: usize) -> Option<f64> {
        self.quality.as_ref().map(|ds| ds.quality(worker))
    }

    /// The Dawid–Skene aggregator state (`None` under plurality).
    pub fn quality_model(&self) -> Option<&DawidSkene> {
        self.quality.as_ref()
    }

    /// Install a cooperative deadline: once it expires, every further
    /// [`Crowd::ask`] is denied without contacting a single worker. The
    /// pipeline sets this per run from its own deadline so the crowd and
    /// the phases share one cutoff; pass [`Deadline::none`] to clear.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
    }

    /// The active deadline (inert unless [`Crowd::set_deadline`] was
    /// called).
    pub fn deadline(&self) -> &Deadline {
        &self.deadline
    }

    /// Access the oracle (used by annotation to form enrichment facts).
    pub fn oracle(&self) -> &O {
        &self.oracle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FixedOracle;

    fn fact_q(obj: &str) -> Question {
        Question::Fact {
            subject: "Italy".into(),
            property: "hasCapital".into(),
            object: obj.into(),
        }
    }

    fn answer(crowd: &mut Crowd<FixedOracle>, q: &Question) -> Answer {
        crowd.ask(q).answer().expect("reliable crowd answers")
    }

    #[test]
    fn majority_of_accurate_workers_is_correct() {
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 0.9,
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        let mut right = 0;
        for i in 0..200 {
            if answer(&mut crowd, &fact_q(&format!("q{i}"))) == Answer::Bool(true) {
                right += 1;
            }
        }
        // With 0.9 workers and 3-way voting, error prob ≈ 2.8%.
        assert!(right >= 185, "only {right}/200 correct");
        assert_eq!(crowd.stats().questions(), 200);
        assert_eq!(crowd.stats().worker_answers, 600);
    }

    #[test]
    fn perfect_workers_never_err() {
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.0,
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(false)),
        )
        .unwrap();
        for _ in 0..50 {
            assert_eq!(answer(&mut crowd, &fact_q("x")), Answer::Bool(false));
        }
    }

    #[test]
    fn stats_track_kinds() {
        let mut crowd =
            Crowd::new(CrowdConfig::default(), FixedOracle(Answer::Bool(true))).unwrap();
        crowd.ask(&fact_q("a"));
        crowd.ask(&fact_q("b"));
        assert_eq!(crowd.stats().questions_of(QuestionKind::Fact), 2);
        assert_eq!(crowd.stats().questions_of(QuestionKind::ColumnType), 0);
        crowd.reset_stats();
        assert_eq!(crowd.stats().questions(), 0);
    }

    #[test]
    fn stats_since_diffs_counters() {
        let mut crowd =
            Crowd::new(CrowdConfig::default(), FixedOracle(Answer::Bool(true))).unwrap();
        crowd.ask(&fact_q("a"));
        let snap = crowd.stats().clone();
        crowd.ask(&fact_q("b"));
        crowd.ask(&fact_q("c"));
        let delta = crowd.stats().since(&snap);
        assert_eq!(delta.questions(), 2);
        assert_eq!(delta.worker_answers, 6);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut crowd = Crowd::new(
                CrowdConfig {
                    worker_accuracy: 0.5,
                    seed,
                    ..CrowdConfig::default()
                },
                FixedOracle(Answer::Bool(true)),
            )
            .unwrap();
            (0..50).map(|_| crowd.ask(&fact_q("x"))).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn choice_questions_aggregate() {
        let q = Question::ColumnType {
            table: "t".into(),
            column: 0,
            header: vec!["A".into()],
            sample_rows: vec![],
            candidates: vec!["country".into(), "economy".into(), "state".into()],
        };
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 0.95,
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Choice(1)),
        )
        .unwrap();
        let mut hits = 0;
        for _ in 0..100 {
            if crowd.ask(&q) == AskOutcome::Answered(Answer::Choice(1)) {
                hits += 1;
            }
        }
        assert!(hits >= 95, "{hits}");
    }

    #[test]
    fn zero_workers_is_an_error() {
        let err = Crowd::new(
            CrowdConfig {
                num_workers: 0,
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap_err();
        assert_eq!(err, CrowdError::NoWorkers);
    }

    #[test]
    fn zero_replication_is_an_error() {
        let err = Crowd::new(
            CrowdConfig {
                replication: 0,
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap_err();
        assert_eq!(err, CrowdError::NoReplication);
    }

    #[test]
    fn invalid_accuracy_is_an_error() {
        let err = Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.5,
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CrowdError::InvalidRate {
                what: "worker_accuracy",
                ..
            }
        ));
    }

    #[test]
    fn invalid_fault_plan_is_an_error() {
        let err = Crowd::new(
            CrowdConfig {
                faults: FaultPlan {
                    dropout_rate: 2.0,
                    ..FaultPlan::default()
                },
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap_err();
        assert!(matches!(err, CrowdError::InvalidRate { .. }));
    }

    /// The acceptance bar for the fault layer: with every fault knob at
    /// zero and the budget unlimited, the crowd's answer stream is
    /// byte-identical to the default (fault-free) configuration — the
    /// fault RNG is provably never consumed.
    #[test]
    fn inert_fault_plan_is_byte_identical_to_default() {
        let run = |config: CrowdConfig| {
            let mut crowd = Crowd::new(config, FixedOracle(Answer::Bool(true))).unwrap();
            let outcomes = (0..100)
                .map(|i| crowd.ask(&fact_q(&format!("o{i}"))))
                .collect::<Vec<_>>();
            (outcomes, crowd.stats().clone())
        };
        let base = CrowdConfig {
            worker_accuracy: 0.6,
            seed: 11,
            ..CrowdConfig::default()
        };
        // Explicit inert plan with a wild seed, explicit unlimited
        // budget, explicit retry policy.
        let explicit = CrowdConfig {
            faults: FaultPlan {
                seed: 0xDEAD_BEEF,
                ..FaultPlan::default()
            },
            budget: Budget::unlimited(),
            retry: RetryPolicy {
                max_attempts: 5,
                escalation_step: 4,
            },
            ..base.clone()
        };
        assert_eq!(run(base), run(explicit));
    }

    #[test]
    fn total_dropout_exhausts_retries_to_no_quorum() {
        let mut crowd = Crowd::new(
            CrowdConfig {
                faults: FaultPlan {
                    dropout_rate: 1.0,
                    ..FaultPlan::default()
                },
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        assert_eq!(crowd.ask(&fact_q("x")), AskOutcome::NoQuorum);
        let s = crowd.stats();
        // 3 attempts at replication 3, 5, 7: all 15 slots dropped.
        assert_eq!(s.dropouts, 15);
        assert_eq!(s.worker_answers, 0);
        assert_eq!(s.questions_retried, 2);
        assert_eq!(s.escalations, 2 + 4);
        assert_eq!(s.no_quorum_questions, 1);
        assert_eq!(s.questions(), 3);
    }

    #[test]
    fn partial_dropout_still_reaches_quorum() {
        // Majority of *requested* replicas must respond: with
        // replication 3 one dropout leaves 2 ≥ 2 = quorum.
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.0,
                faults: FaultPlan {
                    dropout_rate: 0.2,
                    ..FaultPlan::default()
                },
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        let mut answered = 0;
        for i in 0..100 {
            if let AskOutcome::Answered(a) = crowd.ask(&fact_q(&format!("{i}"))) {
                assert_eq!(a, Answer::Bool(true));
                answered += 1;
            }
        }
        assert!(answered >= 95, "{answered}");
        assert!(crowd.stats().dropouts > 0);
    }

    #[test]
    fn question_budget_exhausts_cleanly() {
        let mut crowd = Crowd::new(
            CrowdConfig {
                budget: Budget::questions(2),
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        assert!(matches!(crowd.ask(&fact_q("a")), AskOutcome::Answered(_)));
        assert!(matches!(crowd.ask(&fact_q("b")), AskOutcome::Answered(_)));
        assert_eq!(crowd.ask(&fact_q("c")), AskOutcome::BudgetExhausted);
        assert!(crowd.is_budget_exhausted());
        assert_eq!(crowd.budget_state().questions_used, 2);
        assert_eq!(crowd.stats().budget_denied, 1);
        // Denied asks consume nothing.
        assert_eq!(crowd.stats().questions(), 2);
        assert_eq!(crowd.stats().worker_answers, 6);
    }

    #[test]
    fn answer_budget_reserves_worst_case() {
        let mut crowd = Crowd::new(
            CrowdConfig {
                budget: Budget {
                    max_worker_answers: Some(7),
                    ..Budget::default()
                },
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        // Two asks fit (6 answers); a third would need up to 3 more.
        assert!(matches!(crowd.ask(&fact_q("a")), AskOutcome::Answered(_)));
        assert!(matches!(crowd.ask(&fact_q("b")), AskOutcome::Answered(_)));
        assert_eq!(crowd.ask(&fact_q("c")), AskOutcome::BudgetExhausted);
        assert_eq!(crowd.budget_state().answers_used, 6);
    }

    #[test]
    fn spammers_answer_uniformly() {
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.0,
                faults: FaultPlan {
                    spammer_fraction: 1.0,
                    ..FaultPlan::default()
                },
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        let mut wrong = 0;
        for i in 0..100 {
            if crowd.ask(&fact_q(&format!("{i}"))) != AskOutcome::Answered(Answer::Bool(true)) {
                wrong += 1;
            }
        }
        // An all-spammer pool is a coin-flipping crowd: despite perfect
        // nominal accuracy, a large share of plurality votes comes out
        // wrong (3 coin flips are wrong-majority half the time).
        assert!(wrong >= 25, "only {wrong}/100 wrong under pure spam");
        assert_eq!(crowd.stats().spammer_answers, crowd.stats().worker_answers);
    }

    #[test]
    fn spammer_fraction_rounds_to_pool_share() {
        let crowd = Crowd::new(
            CrowdConfig {
                faults: FaultPlan {
                    spammer_fraction: 0.3,
                    ..FaultPlan::default()
                },
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        assert_eq!(crowd.spammers.iter().filter(|s| **s).count(), 3);
    }

    #[test]
    fn abstention_and_latency_are_accounted() {
        let mut crowd = Crowd::new(
            CrowdConfig {
                faults: FaultPlan {
                    abstain_rate: 0.3,
                    latency_ms: (1, 5),
                    ..FaultPlan::default()
                },
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        for i in 0..50 {
            crowd.ask(&fact_q(&format!("{i}")));
        }
        let s = crowd.stats();
        assert!(s.abstentions > 0, "{s:?}");
        assert!(s.simulated_latency_ms > 0, "{s:?}");
        // Latency bounds: every collected answer cost 1..=5 ms.
        assert!(s.simulated_latency_ms >= s.worker_answers as u64);
        assert!(s.simulated_latency_ms <= 5 * s.worker_answers as u64);
    }

    /// Same config + fault plan ⇒ identical outcome sequences, retry
    /// counts, and budget trajectories. Different fault seed ⇒ different
    /// fault realisation.
    #[test]
    fn faulty_runs_are_deterministic_per_fault_seed() {
        let run = |fault_seed| {
            let mut crowd = Crowd::new(
                CrowdConfig {
                    worker_accuracy: 0.8,
                    budget: Budget::questions(120),
                    faults: FaultPlan {
                        dropout_rate: 0.35,
                        abstain_rate: 0.15,
                        spammer_fraction: 0.2,
                        latency_ms: (2, 20),
                        seed: fault_seed,
                    },
                    ..CrowdConfig::default()
                },
                FixedOracle(Answer::Bool(true)),
            )
            .unwrap();
            let mut outcomes = Vec::new();
            let mut budgets = Vec::new();
            for i in 0..60 {
                outcomes.push(crowd.ask(&fact_q(&format!("{i}"))));
                budgets.push(crowd.budget_state().clone());
            }
            (outcomes, budgets, crowd.stats().clone())
        };
        assert_eq!(run(7), run(7));
        let (a, _, sa) = run(7);
        let (b, _, sb) = run(8);
        assert!(a != b || sa != sb, "fault seed had no effect");
        // The fault plan actually fired.
        assert!(sa.dropouts > 0 && sa.abstentions > 0 && sa.spammer_answers > 0);
    }

    #[test]
    fn expired_deadline_denies_asks_without_spending() {
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.0,
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        crowd.set_deadline(Deadline::after_checks(0));
        assert_eq!(crowd.ask(&fact_q("a")), AskOutcome::DeadlineExpired);
        assert_eq!(crowd.ask(&fact_q("b")), AskOutcome::DeadlineExpired);
        assert_eq!(crowd.stats().deadline_denied, 2);
        assert_eq!(crowd.stats().questions(), 0, "no worker was contacted");
        assert_eq!(crowd.budget_state().questions_used, 0);
        assert!(
            !crowd.is_budget_exhausted(),
            "deadline expiry is not budget exhaustion"
        );
    }

    #[test]
    fn deadline_mid_run_stops_further_questions() {
        let mut crowd = Crowd::new(
            CrowdConfig {
                worker_accuracy: 1.0,
                ..CrowdConfig::default()
            },
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        // Two asks (one deadline check each) succeed, then expiry.
        crowd.set_deadline(Deadline::after_checks(2));
        assert!(matches!(crowd.ask(&fact_q("a")), AskOutcome::Answered(_)));
        assert!(matches!(crowd.ask(&fact_q("b")), AskOutcome::Answered(_)));
        assert_eq!(crowd.ask(&fact_q("c")), AskOutcome::DeadlineExpired);
        assert_eq!(crowd.stats().questions(), 2);
        assert_eq!(crowd.stats().deadline_denied, 1);
    }

    fn ds_config(overrides: CrowdConfig) -> CrowdConfig {
        CrowdConfig {
            aggregation: AggregationMode::DawidSkene,
            ..overrides
        }
    }

    /// The aggregation analogue of the inert-fault-plan gate: selecting
    /// plurality explicitly — even with wild Dawid–Skene knobs riding
    /// along in the config — must be byte-identical to the default
    /// config. The quality machinery is provably never consulted.
    #[test]
    fn explicit_plurality_is_byte_identical_to_default() {
        let run = |config: CrowdConfig| {
            let mut crowd = Crowd::new(config, FixedOracle(Answer::Bool(true))).unwrap();
            let outcomes = (0..100)
                .map(|i| crowd.ask(&fact_q(&format!("o{i}"))))
                .collect::<Vec<_>>();
            (outcomes, crowd.stats().clone())
        };
        let base = CrowdConfig {
            worker_accuracy: 0.6,
            seed: 23,
            faults: FaultPlan {
                dropout_rate: 0.2,
                spammer_fraction: 0.2,
                seed: 5,
                ..FaultPlan::default()
            },
            ..CrowdConfig::default()
        };
        let explicit = CrowdConfig {
            aggregation: AggregationMode::Plurality,
            quality: DawidSkeneConfig {
                em_iterations: 50,
                posterior_confident: 0.5,
                escalate_below: 0.1,
                prior_quality: 0.31,
                prior_strength: 100.0,
            },
            ..base.clone()
        };
        assert_eq!(run(base), run(explicit));
    }

    #[test]
    fn dawid_skene_reliable_crowd_answers_correctly_and_saves_replicas() {
        let mut crowd = Crowd::new(
            ds_config(CrowdConfig {
                worker_accuracy: 1.0,
                ..CrowdConfig::default()
            }),
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        for i in 0..100 {
            assert_eq!(
                crowd.ask(&fact_q(&format!("{i}"))),
                AskOutcome::Answered(Answer::Bool(true))
            );
        }
        let s = crowd.stats();
        assert_eq!(s.questions(), 100);
        // Adaptive replication: perfect agreeing workers settle at the
        // 2-vote quorum instead of the full 3 replicas.
        assert!(
            s.worker_answers < 300,
            "expected early stops, spent {} answers",
            s.worker_answers
        );
        assert!(s.questions_saved > 0);
        assert!(s.posterior_confident > 0);
        assert!(s.em_iterations > 0);
        assert_eq!(s.worker_answers + s.questions_saved, 300);
    }

    #[test]
    fn dawid_skene_escalates_on_disagreement_but_still_answers() {
        // Coin-flip workers disagree constantly: attempts reach quorum
        // but rarely clear the confidence bar, so the platform escalates
        // to fresh workers and ultimately degrades to the best
        // unconfident answer instead of NoQuorum.
        let mut crowd = Crowd::new(
            ds_config(CrowdConfig {
                worker_accuracy: 0.5,
                ..CrowdConfig::default()
            }),
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        let mut answered = 0;
        for i in 0..50 {
            if matches!(crowd.ask(&fact_q(&format!("{i}"))), AskOutcome::Answered(_)) {
                answered += 1;
            }
        }
        assert_eq!(answered, 50, "disagreement must degrade, not fail");
        let s = crowd.stats();
        assert!(s.escalations > 0, "{s:?}");
        assert!(s.questions_retried > 0);
        assert_eq!(s.no_quorum_questions, 0);
    }

    #[test]
    fn dawid_skene_learns_spammers_and_beats_plurality_under_spam() {
        let config = |aggregation| CrowdConfig {
            worker_accuracy: 0.95,
            faults: FaultPlan {
                spammer_fraction: 0.4,
                seed: 9,
                ..FaultPlan::default()
            },
            aggregation,
            ..CrowdConfig::default()
        };
        let run = |aggregation| {
            let mut crowd =
                Crowd::new(config(aggregation), FixedOracle(Answer::Bool(true))).unwrap();
            let mut right = 0;
            for i in 0..300 {
                if crowd.ask(&fact_q(&format!("{i}"))) == AskOutcome::Answered(Answer::Bool(true)) {
                    right += 1;
                }
            }
            (right, crowd)
        };
        let (plurality_right, _) = run(AggregationMode::Plurality);
        let (ds_right, ds_crowd) = run(AggregationMode::DawidSkene);
        assert!(
            ds_right >= plurality_right,
            "dawid-skene ({ds_right}/300) must not lose to plurality ({plurality_right}/300)"
        );
        // The learned quality separates spammers from honest workers.
        let spammers: Vec<usize> = ds_crowd
            .spammers
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.then_some(i))
            .collect();
        assert_eq!(spammers.len(), 4);
        let honest_min = (0..10)
            .filter(|i| !spammers.contains(i))
            .map(|i| ds_crowd.worker_quality(i).unwrap())
            .fold(
                f64::INFINITY,
                |a, b| if b.total_cmp(&a).is_lt() { b } else { a },
            );
        let spam_max = spammers
            .iter()
            .map(|&i| ds_crowd.worker_quality(i).unwrap())
            .fold(f64::NEG_INFINITY, |a, b| {
                if b.total_cmp(&a).is_gt() {
                    b
                } else {
                    a
                }
            });
        assert!(
            spam_max < honest_min,
            "every spammer ({spam_max:.3}) must rank below every honest worker ({honest_min:.3})"
        );
    }

    #[test]
    fn dawid_skene_is_deterministic_per_seed() {
        let run = |seed| {
            let mut crowd = Crowd::new(
                ds_config(CrowdConfig {
                    worker_accuracy: 0.7,
                    seed,
                    faults: FaultPlan {
                        spammer_fraction: 0.2,
                        dropout_rate: 0.1,
                        seed,
                        ..FaultPlan::default()
                    },
                    ..CrowdConfig::default()
                }),
                FixedOracle(Answer::Bool(true)),
            )
            .unwrap();
            let outcomes: Vec<AskOutcome> = (0..80)
                .map(|i| crowd.ask(&fact_q(&format!("{i}"))))
                .collect();
            let qualities: Vec<u64> = (0..10)
                .map(|w| crowd.worker_quality(w).unwrap().to_bits())
                .collect();
            (outcomes, qualities, crowd.stats().clone())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn dawid_skene_charges_the_budget_and_falls_back_when_it_runs_dry() {
        let mut crowd = Crowd::new(
            ds_config(CrowdConfig {
                worker_accuracy: 1.0,
                budget: Budget {
                    max_worker_answers: Some(7),
                    ..Budget::default()
                },
                ..CrowdConfig::default()
            }),
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        let mut answered = 0;
        let mut denied = 0;
        for i in 0..10 {
            match crowd.ask(&fact_q(&format!("{i}"))) {
                AskOutcome::Answered(_) => answered += 1,
                AskOutcome::BudgetExhausted => denied += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(answered >= 2, "{answered}");
        assert!(denied > 0);
        assert!(crowd.is_budget_exhausted());
        assert!(crowd.budget_state().answers_used <= 7);
    }

    #[test]
    fn dawid_skene_invalid_knobs_are_errors() {
        for quality in [
            DawidSkeneConfig {
                posterior_confident: 1.5,
                ..DawidSkeneConfig::default()
            },
            DawidSkeneConfig {
                prior_quality: 0.0,
                ..DawidSkeneConfig::default()
            },
            DawidSkeneConfig {
                prior_quality: 1.0,
                ..DawidSkeneConfig::default()
            },
        ] {
            let err = Crowd::new(
                ds_config(CrowdConfig {
                    quality: quality.clone(),
                    ..CrowdConfig::default()
                }),
                FixedOracle(Answer::Bool(true)),
            )
            .unwrap_err();
            assert!(matches!(err, CrowdError::InvalidRate { .. }), "{quality:?}");
            // The same knobs are inert — and legal — under plurality.
            assert!(Crowd::new(
                CrowdConfig {
                    quality,
                    ..CrowdConfig::default()
                },
                FixedOracle(Answer::Bool(true)),
            )
            .is_ok());
        }
    }

    #[test]
    fn stats_since_diffs_quality_counters() {
        let mut crowd = Crowd::new(
            ds_config(CrowdConfig {
                worker_accuracy: 1.0,
                ..CrowdConfig::default()
            }),
            FixedOracle(Answer::Bool(true)),
        )
        .unwrap();
        for i in 0..20 {
            crowd.ask(&fact_q(&format!("a{i}")));
        }
        let snap = crowd.stats().clone();
        for i in 0..20 {
            crowd.ask(&fact_q(&format!("b{i}")));
        }
        let delta = crowd.stats().since(&snap);
        assert_eq!(
            delta.em_iterations,
            crowd.stats().em_iterations - snap.em_iterations
        );
        assert_eq!(
            delta.posterior_confident,
            crowd.stats().posterior_confident - snap.posterior_confident
        );
        assert_eq!(
            delta.questions_saved,
            crowd.stats().questions_saved - snap.questions_saved
        );
        assert!(delta.posterior_confident > 0);
    }

    #[test]
    fn inert_deadline_is_byte_identical_to_no_deadline() {
        let run = |with_inert: bool| {
            let mut crowd = Crowd::new(
                CrowdConfig {
                    worker_accuracy: 0.8,
                    faults: FaultPlan {
                        dropout_rate: 0.3,
                        seed: 11,
                        ..FaultPlan::default()
                    },
                    ..CrowdConfig::default()
                },
                FixedOracle(Answer::Bool(true)),
            )
            .unwrap();
            if with_inert {
                crowd.set_deadline(Deadline::none());
            }
            let outcomes: Vec<AskOutcome> = (0..40)
                .map(|i| crowd.ask(&fact_q(&format!("{i}"))))
                .collect();
            (outcomes, crowd.stats().clone())
        };
        assert_eq!(run(false), run(true));
    }
}
