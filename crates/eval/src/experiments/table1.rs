//! **Table 1** — datasets and KB characteristics: the number of columns
//! with a ground-truth type and the number of column pairs with a
//! ground-truth relationship, per dataset family and KB.

use katara_datagen::KbFlavor;

use crate::corpus::Corpus;
use crate::experiments::{flavors, ground_truth_for};
use crate::report::MdTable;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Dataset family name.
    pub dataset: &'static str,
    /// (#typed columns, #relationships) per flavor, Yago first.
    pub counts: [(usize, usize); 2],
}

/// The structured result.
#[derive(Debug, Clone, Default)]
pub struct Table1 {
    /// One row per dataset family.
    pub rows: Vec<Row>,
}

/// Run the experiment.
pub fn run(corpus: &Corpus) -> Table1 {
    let mut out = Table1::default();
    for (name, tables) in corpus.families() {
        let mut counts = [(0usize, 0usize); 2];
        for (fi, flavor) in flavors().into_iter().enumerate() {
            for g in &tables {
                let (types, rels) = ground_truth_for(g, flavor);
                counts[fi].0 += types.iter().filter(|t| t.is_some()).count();
                counts[fi].1 += rels.len();
            }
        }
        out.rows.push(Row {
            dataset: name,
            counts,
        });
    }
    out
}

impl Table1 {
    /// Render the Markdown section.
    pub fn render(&self) -> String {
        let mut t = MdTable::new(&[
            "dataset",
            "yago #-type",
            "yago #-relationship",
            "dbpedia #-type",
            "dbpedia #-relationship",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.dataset.to_string(),
                r.counts[0].0.to_string(),
                r.counts[0].1.to_string(),
                r.counts[1].0.to_string(),
                r.counts[1].1.to_string(),
            ]);
        }
        format!(
            "## Table 1 — datasets and KB characteristics\n\n{}\n\
             Paper shape: WebTables > WikiTables > RelationalTables in raw \
             counts; DBpedia models more RelationalTables relationships \
             than Yago (16 vs 7 in the paper) because Yago lacks the \
             soccer relations.\n",
            t.render()
        )
    }

    /// Lookup a family's counts for assertions.
    pub fn counts_for(&self, dataset: &str, flavor: KbFlavor) -> Option<(usize, usize)> {
        let fi = usize::from(flavor == KbFlavor::DbpediaLike);
        self.rows
            .iter()
            .find(|r| r.dataset == dataset)
            .map(|r| r.counts[fi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn relational_rels_differ_by_flavor() {
        let corpus = Corpus::build(&CorpusConfig::small());
        let t1 = run(&corpus);
        let yago = t1
            .counts_for("RelationalTables", KbFlavor::YagoLike)
            .unwrap();
        let dbp = t1
            .counts_for("RelationalTables", KbFlavor::DbpediaLike)
            .unwrap();
        assert_eq!(yago.0, dbp.0, "type counts agree across flavors");
        assert!(
            dbp.1 > yago.1,
            "dbpedia must model more relationships (soccer): {yago:?} vs {dbp:?}"
        );
        let md = t1.render();
        assert!(md.contains("RelationalTables"));
    }
}
