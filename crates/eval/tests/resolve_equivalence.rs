//! Byte-identical equivalence of the shared-snapshot resolution path
//! and the legacy direct-query path.
//!
//! The [`TableResolution`] snapshot is a performance cache, never a
//! semantics knob: a full cleaning run under [`ResolveMode::Snapshot`]
//! must produce exactly the same report as [`ResolveMode::Direct`] with
//! an identically-seeded crowd, at every worker-pool size. Checked on
//! real corpus tables and on proptest-generated tables full of
//! degenerate cells (empty strings, all-duplicate columns, junk no KB
//! entity matches).

use katara_core::prelude::*;
use katara_crowd::{Answer, Crowd, CrowdConfig, Question};
use katara_datagen::{GeneratedTable, KbFlavor};
use katara_eval::corpus::{Corpus, CorpusConfig};
use katara_eval::experiments::crowd_for;
use katara_kb::{Kb, KbBuilder};
use katara_table::Table;
use proptest::prelude::*;
use std::sync::OnceLock;

fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| Corpus::build(&CorpusConfig::small()))
}

/// The pool sizes the ISSUE pins down: sequential, small, oversubscribed.
const POOLS: [usize; 3] = [1, 2, 8];

fn config(mode: ResolveMode, threads: usize) -> KataraConfig {
    KataraConfig {
        resolve: mode,
        threads: Threads::fixed(threads),
        candidates: CandidateConfig {
            threads: Threads::fixed(threads),
            ..CandidateConfig::default()
        },
        ..KataraConfig::default()
    }
}

/// Run one full clean on a corpus table and render the whole report —
/// pattern, annotations, repairs, degradation — as its debug string, the
/// byte-level artifact the equivalence is asserted on.
fn corpus_clean(g: &GeneratedTable, flavor: KbFlavor, mode: ResolveMode, threads: usize) -> String {
    let corpus = corpus();
    let mut kb = corpus.kb(flavor);
    let mut crowd = crowd_for(corpus, g, flavor, 1.0, 0xC0FFEE);
    let report = Katara::new(config(mode, threads))
        .clean(&g.table, &mut kb, &mut crowd)
        .expect("corpus clean succeeds");
    format!("{report:?}")
}

#[test]
fn snapshot_clean_matches_direct_on_corpus() {
    let corpus = corpus();
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        for (name, g) in [("person", &corpus.person), ("web[0]", &corpus.web[0])] {
            let direct = corpus_clean(g, flavor, ResolveMode::Direct, 1);
            for &threads in &POOLS {
                let snap = corpus_clean(g, flavor, ResolveMode::Snapshot, threads);
                assert_eq!(
                    direct, snap,
                    "{name}/{flavor:?}: snapshot clean differs from direct at {threads} threads"
                );
            }
        }
    }
}

/// An externally pre-built snapshot injected via `clean_with_resolution`
/// must behave exactly like the internally built one.
#[test]
fn injected_snapshot_matches_internal_build() {
    let corpus = corpus();
    let flavor = KbFlavor::DbpediaLike;
    let g = &corpus.person;
    let internal = corpus_clean(g, flavor, ResolveMode::Snapshot, 2);

    let mut kb = corpus.kb(flavor);
    let res = TableResolution::build(&g.table, &kb, CandidateConfig::default().max_rows);
    let mut crowd = crowd_for(corpus, g, flavor, 1.0, 0xC0FFEE);
    let report = Katara::new(config(ResolveMode::Snapshot, 2))
        .clean_with_resolution(&g.table, &mut kb, &mut crowd, Some(&res))
        .expect("injected-snapshot clean succeeds");
    assert_eq!(internal, format!("{report:?}"));
}

/// A tiny hand-built KB mirroring the determinism suite's: two
/// country/capital pairs, so generated tables can both hit and miss.
fn toy_kb() -> Kb {
    let mut b = KbBuilder::new();
    let country = b.class("country");
    let capital = b.class("capital");
    let has_capital = b.property("hasCapital");
    let italy = b.entity("Italy", &[country]);
    let rome = b.entity("Rome", &[capital]);
    let france = b.entity("France", &[country]);
    let paris = b.entity("Paris", &[capital]);
    b.fact(italy, has_capital, rome);
    b.fact(france, has_capital, paris);
    b.finalize()
}

/// Deterministic stand-in oracle for tables with no ground truth: both
/// resolve modes see identical answers, which is all equivalence needs.
fn degenerate_answer(q: &Question) -> Answer {
    match q {
        Question::Fact { .. } => Answer::Bool(true),
        _ => Answer::Choice(0),
    }
}

fn degenerate_clean(table: &Table, mode: ResolveMode, threads: usize) -> String {
    let mut kb = toy_kb();
    let mut crowd = Crowd::new(
        CrowdConfig {
            worker_accuracy: 1.0,
            seed: 7,
            ..CrowdConfig::default()
        },
        degenerate_answer as fn(&Question) -> Answer,
    )
    .expect("crowd config is valid");
    // Degenerate tables may legitimately yield no pattern at all — the
    // two modes must then fail identically, so compare the whole Result.
    let result = Katara::new(config(mode, threads)).clean(table, &mut kb, &mut crowd);
    format!("{result:?}")
}

/// Palette the generated cells draw from. Index 0 is the empty string;
/// "zz"/"  " never resolve; repeating indices yields all-duplicate
/// columns.
const PALETTE: [&str; 7] = ["", "Italy", "Rome", "France", "Paris", "zz", "  "];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn snapshot_clean_matches_direct_on_generated_tables(
        rows in prop::collection::vec(
            prop::collection::vec(0usize..PALETTE.len(), 3usize),
            0..6usize,
        ),
    ) {
        let mut table = Table::with_opaque_columns("generated", 3);
        for row in &rows {
            let cells: Vec<&str> = row.iter().map(|&i| PALETTE[i]).collect();
            table.push_text_row(&cells);
        }

        let direct = degenerate_clean(&table, ResolveMode::Direct, 1);
        for &threads in &POOLS {
            let snap = degenerate_clean(&table, ResolveMode::Snapshot, threads);
            prop_assert_eq!(
                &direct, &snap,
                "snapshot clean differs from direct at {} threads", threads
            );
        }
    }
}
