//! Property-based invariants of the columnar fact-store backend: every
//! query surface must answer byte-identically to the legacy hash-map
//! backend on random KBs — before and after enrichment writes — and the
//! cost-based probe planner must never change results, only probe order.

use katara_kb::{Kb, KbBuilder, ResourceId};
use proptest::prelude::*;

const NC: usize = 5;
const NP: usize = 3;

/// Random KBs with class/property hierarchies, resource facts, literal
/// facts, and colliding labels — enough surface to exercise every index
/// the backends maintain.
fn kb_strategy() -> impl Strategy<Value = Kb> {
    let entity = prop::collection::vec(0usize..NC, 0..3);
    let fact = (0usize..16, 0usize..NP, 0usize..16);
    let lit_fact = (0usize..16, 0usize..NP, 0usize..4);
    let edge = (0usize..NC, 0usize..NC);
    let pedge = (0usize..NP, 0usize..NP);
    (
        prop::collection::vec(entity, 4..16),
        prop::collection::vec(fact, 0..30),
        prop::collection::vec(lit_fact, 0..10),
        prop::collection::vec(edge, 0..4),
        prop::collection::vec(pedge, 0..2),
    )
        .prop_map(|(entities, facts, lit_facts, class_edges, prop_edges)| {
            let mut b = KbBuilder::new();
            let classes: Vec<_> = (0..NC).map(|i| b.class(&format!("c{i}"))).collect();
            let props: Vec<_> = (0..NP).map(|i| b.property(&format!("p{i}"))).collect();
            for (c, p) in class_edges {
                let _ = b.subclass(classes[c], classes[p]);
            }
            for (p, q) in prop_edges {
                let _ = b.subproperty(props[p], props[q]);
            }
            let resources: Vec<_> = entities
                .iter()
                .enumerate()
                .map(|(i, ts)| {
                    let types: Vec<_> = ts.iter().map(|&t| classes[t]).collect();
                    b.entity(&format!("e{i}"), &types)
                })
                .collect();
            for &(s, p, o) in &facts {
                b.fact(
                    resources[s % resources.len()],
                    props[p],
                    resources[o % resources.len()],
                );
            }
            for &(s, p, l) in &lit_facts {
                b.literal_fact(resources[s % resources.len()], props[p], &format!("v{l}"));
            }
            b.finalize()
        })
}

/// Assert that every read surface of the two stores answers identically.
fn assert_query_equivalence(col: &Kb, leg: &Kb) {
    prop_assert_eq!(col.backend_name(), "columnar");
    prop_assert_eq!(leg.backend_name(), "legacy");
    for r in col.resource_ids() {
        prop_assert_eq!(
            col.types_closure(r),
            leg.types_closure(r),
            "closure {:?}",
            r
        );
        prop_assert_eq!(col.facts_of(r), leg.facts_of(r));
        prop_assert_eq!(col.facts_into(r), leg.facts_into(r));
        for o in col.resource_ids() {
            prop_assert_eq!(col.asserted_relations(r, o), leg.asserted_relations(r, o));
            prop_assert_eq!(col.relations_between(r, o), leg.relations_between(r, o));
        }
        for p in col.property_ids() {
            prop_assert_eq!(col.objects_linked(r, p), leg.objects_linked(r, p));
            prop_assert_eq!(col.literals_linked(r, p), leg.literals_linked(r, p));
            prop_assert_eq!(col.subjects_linking(r, p), leg.subjects_linking(r, p));
            prop_assert!(col.holds_literal(r, p, "v1") == leg.holds_literal(r, p, "v1"));
        }
        for c in col.class_ids() {
            prop_assert!(col.has_type(r, c) == leg.has_type(r, c));
        }
    }
    for c in col.class_ids() {
        prop_assert_eq!(col.entities_of_class(c), leg.entities_of_class(c));
    }
    for p in col.property_ids() {
        prop_assert_eq!(col.subjects_of_property(p), leg.subjects_of_property(p));
        prop_assert_eq!(col.objects_of_property(p), leg.objects_of_property(p));
    }
    prop_assert_eq!(
        katara_kb::ntriples::to_string(col),
        katara_kb::ntriples::to_string(leg)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn backends_answer_identically(kb in kb_strategy()) {
        let legacy = kb.with_legacy_backend();
        assert_query_equivalence(&kb, &legacy);
        // And the round trip back to columnar still matches.
        let back = legacy.with_columnar_backend();
        assert_query_equivalence(&back, &legacy);
    }

    #[test]
    fn backends_answer_identically_after_enrichment(
        kb in kb_strategy(),
        writes in prop::collection::vec((0usize..16, 0usize..NP, 0usize..16), 1..8),
        typed in (0usize..16, 0usize..NC),
    ) {
        let mut col = kb.clone();
        let mut leg = kb.with_legacy_backend();
        for k in [&mut col, &mut leg] {
            let rs: Vec<_> = k.resource_ids().collect();
            let ps: Vec<_> = k.property_ids().collect();
            let cs: Vec<_> = k.class_ids().collect();
            for &(s, p, o) in &writes {
                k.add_fact(rs[s % rs.len()], ps[p], rs[o % rs.len()]);
                k.add_literal_fact(rs[o % rs.len()], ps[p], &format!("v{s}"));
            }
            let fresh = k.add_entity("fresh", "Fresh One", &[cs[typed.1]]);
            k.add_type(rs[typed.0 % rs.len()], cs[typed.1]);
            k.add_fact(fresh, ps[0], rs[typed.0 % rs.len()]);
        }
        prop_assert_eq!(col.version(), leg.version());
        assert_query_equivalence(&col, &leg);
    }

    #[test]
    fn planner_choice_never_changes_results(
        kb in kb_strategy(),
        ca_idx in prop::collection::vec(0usize..16, 0..20),
        cb_idx in prop::collection::vec(0usize..16, 0..50),
    ) {
        let legacy = kb.with_legacy_backend();
        let rs: Vec<_> = kb.resource_ids().collect();
        let pick = |idx: &[usize]| -> Vec<(ResourceId, f64)> {
            idx.iter().map(|&i| (rs[i % rs.len()], 1.0)).collect()
        };
        let ca = pick(&ca_idx);
        let cb = pick(&cb_idx);
        let (fast, _plan) = kb.relations_for_candidates_planned(&ca, &cb);
        let (slow, legacy_plan) = legacy.relations_for_candidates_planned(&ca, &cb);
        prop_assert_eq!(legacy_plan, katara_kb::ProbePlan::TypeFirst);
        prop_assert_eq!(fast, slow, "probe plans disagree on output");
    }

    #[test]
    fn arenas_stay_sorted_under_conversion(kb in kb_strategy()) {
        // The sorted-base invariants the gallop probes rely on, observed
        // through the public surface: type closures and ENT sets come
        // back sorted from finalize, on both backends.
        for r in kb.resource_ids() {
            let tc = kb.types_closure(r);
            prop_assert!(tc.windows(2).all(|w| w[0] < w[1]), "closure sorted");
        }
        for c in kb.class_ids() {
            let ents = kb.entities_of_class(c);
            prop_assert!(ents.windows(2).all(|w| w[0] < w[1]), "ENT sorted");
        }
        for p in kb.property_ids() {
            let subs = kb.subjects_of_property(p);
            prop_assert!(subs.windows(2).all(|w| w[0] < w[1]), "subENT sorted");
        }
    }
}
