//! Error type for KB construction and querying.

use std::fmt;

/// Errors surfaced by the knowledge-base layer.
///
/// Lookup misses on *data* (a label with no resource, a pair with no
/// relationship) are not errors — they are empty results, because KB
/// incompleteness is a first-class situation in KATARA. Errors are reserved
/// for *misuse*: unknown ids, inconsistent hierarchy declarations, etc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbError {
    /// An id was used that this KB never allocated.
    UnknownId {
        /// Which id space the offending id belonged to.
        kind: &'static str,
        /// The raw index.
        index: usize,
    },
    /// A `subClassOf`/`subPropertyOf` declaration would create a cycle.
    HierarchyCycle {
        /// Which hierarchy the cycle was found in.
        kind: &'static str,
        /// Human-readable name of the node closing the cycle.
        node: String,
    },
    /// Two declarations conflict (e.g. redefining an entity's name).
    Conflict(String),
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::UnknownId { kind, index } => {
                write!(f, "unknown {kind} id {index}")
            }
            KbError::HierarchyCycle { kind, node } => {
                write!(f, "cycle in {kind} hierarchy at {node:?}")
            }
            KbError::Conflict(msg) => write!(f, "conflicting declaration: {msg}"),
        }
    }
}

impl std::error::Error for KbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = KbError::UnknownId {
            kind: "class",
            index: 7,
        };
        assert_eq!(e.to_string(), "unknown class id 7");
        let e = KbError::HierarchyCycle {
            kind: "subClassOf",
            node: "capital".into(),
        };
        assert!(e.to_string().contains("subClassOf"));
        assert!(e.to_string().contains("capital"));
        let e = KbError::Conflict("x".into());
        assert!(e.to_string().contains('x'));
    }
}
