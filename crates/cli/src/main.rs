//! The `katara` binary — see [`katara_cli`] for the command reference.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match katara_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match katara_cli::run(cmd) {
        Ok(katara_cli::RunStatus::Clean) => {}
        Ok(katara_cli::RunStatus::Degraded) => {
            // The report above is still usable; the exit code lets
            // scripts distinguish "clean" from "completed degraded".
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
