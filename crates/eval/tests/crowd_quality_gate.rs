//! The CI `crowd-quality-smoke` gate: Dawid–Skene aggregation must not
//! regress against the plurality baseline. Runs the two sentinel fault
//! plans — an honest majority and a 40%-spammer pool — at equal
//! worker-answer budget, and fails if Dawid–Skene is less accurate than
//! plurality on either, or fails to spend strictly less on the spammer
//! plan. Everything is seeded, so a failure is a code regression, never
//! flake.

use katara_crowd::AggregationMode;
use katara_eval::experiments::crowd_quality::{plans, run_mode, ANSWER_BUDGET};

#[test]
fn dawid_skene_holds_the_line_on_the_sentinel_plans() {
    for name in ["honest/0.95", "spam40/0.75"] {
        let plan = plans()
            .into_iter()
            .find(|p| p.name == name)
            .expect("sentinel plan exists");
        let plurality = run_mode(&plan, AggregationMode::Plurality);
        let ds = run_mode(&plan, AggregationMode::DawidSkene);
        assert!(plurality.answers <= ANSWER_BUDGET);
        assert!(ds.answers <= ANSWER_BUDGET);
        assert!(
            ds.accuracy >= plurality.accuracy,
            "{name}: Dawid–Skene accuracy {:.3} fell below the plurality \
             baseline {:.3} at equal budget",
            ds.accuracy,
            plurality.accuracy
        );
        assert!(
            ds.questions_saved > 0,
            "{name}: adaptive replication saved nothing"
        );
        if plan.spammer_fraction > 0.0 {
            assert!(
                ds.answers < plurality.answers,
                "{name}: Dawid–Skene spent {} worker answers, plurality {} — \
                 the spammer plan must cost strictly less",
                ds.answers,
                plurality.answers
            );
        }
    }
}
