//! Error type for the KATARA pipeline.

use std::fmt;

use katara_crowd::CrowdError;
use katara_kb::ntriples::NtError;
use katara_kb::KbError;
use katara_table::csv::CsvError;

/// Errors surfaced by the cleaning pipeline.
///
/// Marked `#[non_exhaustive]`: future pipeline stages may add variants
/// without a breaking change, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KataraError {
    /// Pattern discovery produced no candidate pattern at all; the paper's
    /// §2 behaviour is "KATARA will terminate" — callers surface this.
    NoPatternFound {
        /// Table the discovery ran on.
        table: String,
        /// KB it ran against.
        kb: String,
    },
    /// A pattern references a column outside the table.
    ColumnOutOfRange {
        /// Offending column index.
        column: usize,
        /// The table's column count.
        num_columns: usize,
    },
    /// A pattern is structurally invalid (e.g. an edge endpoint without a
    /// node).
    MalformedPattern(String),
    /// The crowd platform could not be set up or used.
    Crowd(CrowdError),
    /// The knowledge-base layer rejected a construction or query.
    Kb(KbError),
    /// A KB could not be ingested from N-Triples text.
    KbIngest(NtError),
    /// A table could not be ingested from CSV text.
    TableIngest(CsvError),
    /// A [`TableDelta`](katara_table::TableDelta) edit could not be
    /// applied by the incremental engine. Edits before the offending one
    /// stay applied; the session remains consistent.
    BadDelta {
        /// Zero-based index of the offending edit within the delta.
        edit: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// The run's [`Deadline`](katara_exec::Deadline) expired before the
    /// named phase could even start producing a partial result. Later
    /// expiry (once discovery has yielded a pattern) degrades the
    /// [`CleaningReport`](crate::pipeline::CleaningReport) instead of
    /// erroring — see
    /// [`DegradationReport::deadline_expired`](crate::pipeline::DegradationReport::deadline_expired).
    DeadlineExceeded {
        /// The pipeline phase that could not start.
        phase: &'static str,
    },
}

impl fmt::Display for KataraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KataraError::NoPatternFound { table, kb } => {
                write!(
                    f,
                    "no table pattern found for table {table:?} against KB {kb:?}"
                )
            }
            KataraError::ColumnOutOfRange {
                column,
                num_columns,
            } => write!(f, "column {column} out of range (table has {num_columns})"),
            KataraError::MalformedPattern(msg) => write!(f, "malformed pattern: {msg}"),
            KataraError::Crowd(_) => write!(f, "crowd platform error"),
            KataraError::Kb(_) => write!(f, "knowledge base error"),
            KataraError::KbIngest(_) => write!(f, "knowledge base ingestion failed"),
            KataraError::TableIngest(_) => write!(f, "table ingestion failed"),
            KataraError::BadDelta { edit, detail } => {
                write!(f, "bad table delta at edit {edit}: {detail}")
            }
            KataraError::DeadlineExceeded { phase } => {
                write!(f, "deadline exceeded before the {phase} phase")
            }
        }
    }
}

impl std::error::Error for KataraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KataraError::Crowd(e) => Some(e),
            KataraError::Kb(e) => Some(e),
            KataraError::KbIngest(e) => Some(e),
            KataraError::TableIngest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CrowdError> for KataraError {
    fn from(e: CrowdError) -> Self {
        KataraError::Crowd(e)
    }
}

impl From<KbError> for KataraError {
    fn from(e: KbError) -> Self {
        KataraError::Kb(e)
    }
}

impl From<NtError> for KataraError {
    fn from(e: NtError) -> Self {
        KataraError::KbIngest(e)
    }
}

impl From<CsvError> for KataraError {
    fn from(e: CsvError) -> Self {
        KataraError::TableIngest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display() {
        let e = KataraError::NoPatternFound {
            table: "soccer".into(),
            kb: "yago".into(),
        };
        assert!(e.to_string().contains("soccer"));
        let e = KataraError::ColumnOutOfRange {
            column: 9,
            num_columns: 3,
        };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn ingest_errors_chain_through_source() {
        let e = KataraError::from(KbError::Conflict("dup".into()));
        assert!(e.source().expect("kb source").to_string().contains("dup"));
        let e = KataraError::from(NtError::Syntax {
            line: 7,
            byte_offset: 120,
            message: "unterminated IRI".into(),
        });
        assert!(e
            .source()
            .expect("nt source")
            .to_string()
            .contains("line 7"));
        let e = KataraError::from(CsvError::Empty);
        assert!(e
            .source()
            .expect("csv source")
            .to_string()
            .contains("empty"));
    }

    #[test]
    fn crowd_errors_chain_through_source() {
        let e = KataraError::from(CrowdError::NoWorkers);
        let src = e.source().expect("wrapped error is the source");
        assert!(src.to_string().contains("worker"));
        // Non-wrapping variants have no source.
        assert!(KataraError::MalformedPattern("x".into()).source().is_none());
    }
}
