//! Strict ingestion is the identity on clean, generator-produced data.
//!
//! The datagen crate produces the corpora every experiment runs on; if
//! the hardened loaders treated any of it differently from the pre-audit
//! parsers, every downstream accuracy number would silently shift. So:
//! for both KB flavors and all five table families, serialize → strict
//! `parse_with_policy` must equal the legacy `parse` byte-for-byte, and
//! both strict and lenient reports must come back clean.
//!
//! The case count of the seed-sweep property is elevated in CI via
//! `KATARA_FUZZ_CASES`.

use std::sync::OnceLock;

use katara_datagen::{
    build_kb, person_table, soccer_table, university_table, web_tables, wiki_tables, KbFlavor,
    KbGenConfig, World, WorldConfig,
};
use katara_kb::ntriples;
use katara_table::csv;
use proptest::prelude::*;

/// Per-test case count: `KATARA_FUZZ_CASES` (CI runs an elevated count)
/// or the given local default.
fn fuzz_cases(default: u32) -> u32 {
    std::env::var("KATARA_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One small world, shared across tests (generation dominates runtime).
fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::tiny()))
}

/// Assert the three KB load paths agree on `text` and report clean loads.
fn assert_kb_round_trip(text: &str) {
    let legacy = ntriples::parse("rt", text).expect("clean dump parses");
    let (strict, strict_report) =
        ntriples::parse_with_policy("rt", text, &katara_kb::IngestPolicy::strict())
            .expect("strict accepts clean dump");
    let (lenient, lenient_report) =
        ntriples::parse_with_policy("rt", text, &katara_kb::IngestPolicy::lenient())
            .expect("lenient accepts clean dump");

    assert_eq!(ntriples::to_string(&legacy), ntriples::to_string(&strict));
    assert_eq!(ntriples::to_string(&legacy), ntriples::to_string(&lenient));
    for report in [&strict_report, &lenient_report] {
        assert!(!report.is_degraded(), "clean dump degraded: {report:?}");
        assert_eq!(report.quarantined_count, 0);
        assert_eq!(report.accepted, report.total_statements);
        assert!(report.audit.broken_edges.is_empty());
    }
}

/// Assert the three table load paths agree on `text` and report clean loads.
fn assert_table_round_trip(text: &str) {
    let legacy = csv::parse("rt", text).expect("clean dump parses");
    let (strict, strict_report) =
        csv::parse_with_policy("rt", text, &katara_table::IngestPolicy::strict())
            .expect("strict accepts clean dump");
    let (lenient, lenient_report) =
        csv::parse_with_policy("rt", text, &katara_table::IngestPolicy::lenient())
            .expect("lenient accepts clean dump");

    assert_eq!(csv::to_string(&legacy), csv::to_string(&strict));
    assert_eq!(csv::to_string(&legacy), csv::to_string(&lenient));
    for report in [&strict_report, &lenient_report] {
        assert!(!report.is_degraded(), "clean dump degraded: {report:?}");
        assert_eq!(report.quarantined_count, 0);
        assert_eq!(report.accepted, report.total_records);
    }
}

#[test]
fn datagen_kbs_round_trip_cleanly_both_flavors() {
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let kb = build_kb(world(), &KbGenConfig::for_flavor(flavor));
        assert_kb_round_trip(&ntriples::to_string(&kb));
    }
}

#[test]
fn datagen_tables_round_trip_cleanly_all_families() {
    let w = world();
    let mut tables = vec![
        person_table(w, 60, 11),
        soccer_table(w, 40, 12),
        university_table(w, 30, 13),
    ];
    tables.extend(wiki_tables(w, 3, 14));
    tables.extend(web_tables(w, 3, 15));
    for g in &tables {
        assert_table_round_trip(&csv::to_string(&g.table));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases(16)))]

    /// The identity holds for any sampling seed and table size, not just
    /// the fixed corpora above.
    #[test]
    fn table_round_trip_holds_for_any_seed(
        n in 1usize..60,
        seed in 0u64..1 << 32,
        family in 0usize..3,
    ) {
        let w = world();
        let g = match family {
            0 => person_table(w, n, seed),
            1 => soccer_table(w, n, seed),
            _ => university_table(w, n, seed),
        };
        assert_table_round_trip(&csv::to_string(&g.table));
    }
}
