//! Machine-readable thread-scaling reports.
//!
//! The `discovery` and `repair` bench targets sweep the worker-pool size
//! and, besides the usual Criterion output, drop a `BENCH_<name>.json`
//! at the workspace root:
//!
//! ```json
//! {
//!   "bench": "discovery",
//!   "fixture": "web_table/yago-like",
//!   "mode": "full",
//!   "parallelism": 8,
//!   "samples": [
//!     { "threads": 1, "iters": 10, "wall_ms": 12.3, "speedup": 1.0 },
//!     { "threads": 2, "iters": 18, "wall_ms": 6.5, "speedup": 1.89 }
//!   ]
//! }
//! ```
//!
//! `speedup` is relative to the `threads: 1` sample. `parallelism`
//! records the machine's available parallelism so a flat curve on a
//! one-core box reads as a hardware limit, not a regression. Set
//! `KATARA_BENCH_QUICK=1` for a cut-down sweep (threads 1–2, fewer
//! iterations) suitable for CI smoke jobs.
//!
//! Every config is sampled with *min-total-time* control: iterations
//! repeat until at least [`min_sample_ms`] of wall time has accumulated
//! (and at least the requested minimum iteration count has run), so a
//! fast config is not judged from two noisy microsecond runs. The actual
//! iteration count lands in the sample's `iters` field.
//!
//! The `resolve` bench target emits the same envelope via
//! [`ResolveReport`], with per-sample `config` labels (`"cold"` builds
//! the KB query snapshot inside every cleaning run, `"snapshot"` reuses
//! a pre-built one) plus the fixture's distinct-value ratio — the
//! fraction of non-null cells that are distinct after normalization,
//! which bounds how much work snapshot reuse can save.
//!
//! Each report also embeds a `"metrics"` object — the
//! [`katara_obs::RunMetrics`] of one *untimed* instrumented run of the
//! benched workload — so a `BENCH_*.json` records not just how fast the
//! fixture ran but how much logical work it did (KB probes, heap pops,
//! repairs generated). The instrumented run happens after all timing;
//! the timed iterations keep the no-op recorder.

use std::path::PathBuf;
use std::time::Instant;

use katara_obs::RunMetrics;

/// Environment variable selecting the cut-down CI sweep.
pub const QUICK_ENV: &str = "KATARA_BENCH_QUICK";

/// True when [`QUICK_ENV`] is set (to anything non-empty).
pub fn quick_mode() -> bool {
    std::env::var(QUICK_ENV).is_ok_and(|v| !v.is_empty())
}

/// The worker-pool sizes to sweep: `[1, 2]` in quick mode, `[1, 2, 4, 8]`
/// otherwise.
pub fn thread_counts() -> Vec<usize> {
    if quick_mode() {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// Timed iterations per thread count: trimmed in quick mode. This is a
/// *minimum* — sampling continues until [`min_sample_ms`] has elapsed.
pub fn sweep_iters() -> usize {
    if quick_mode() {
        3
    } else {
        10
    }
}

/// Minimum accumulated wall time per measured config, in milliseconds:
/// 100 ms in full mode (so per-config means are statistically
/// meaningful), 5 ms in quick mode (CI smoke only checks the plumbing).
pub fn min_sample_ms() -> f64 {
    if quick_mode() {
        5.0
    } else {
        100.0
    }
}

/// Run `f` repeatedly until both `min_iters` iterations and
/// [`min_sample_ms`] of wall time have accumulated; returns the
/// iteration count and the mean wall time per iteration in milliseconds.
fn run_timed<F: FnMut()>(min_iters: usize, mut f: F) -> (usize, f64) {
    let min_total = std::time::Duration::from_secs_f64(min_sample_ms() / 1e3);
    let start = Instant::now();
    let mut iters = 0usize;
    loop {
        f();
        iters += 1;
        if iters >= min_iters.max(1) && start.elapsed() >= min_total {
            break;
        }
    }
    (iters, start.elapsed().as_secs_f64() * 1e3 / iters as f64)
}

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ThreadSample {
    /// Worker-pool size.
    pub threads: usize,
    /// Iterations actually timed (min-total-time control).
    pub iters: usize,
    /// Mean wall time per iteration, in milliseconds.
    pub wall_ms: f64,
    /// Wall-time ratio vs the 1-thread sample (1.0 for the baseline).
    pub speedup: f64,
}

/// A thread-scaling report for one bench target.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Bench name — becomes the `BENCH_<bench>.json` file name.
    pub bench: String,
    /// Human-readable fixture description.
    pub fixture: String,
    /// Measured points, in sweep order.
    pub samples: Vec<ThreadSample>,
    /// Run metrics from one untimed instrumented run of the workload,
    /// embedded under the `"metrics"` key when present.
    pub metrics: Option<RunMetrics>,
}

impl ScalingReport {
    /// Start an empty report.
    pub fn new(bench: &str, fixture: &str) -> Self {
        ScalingReport {
            bench: bench.to_string(),
            fixture: fixture.to_string(),
            samples: Vec::new(),
            metrics: None,
        }
    }

    /// Time at least `min_iters` runs of `f` (and at least
    /// [`min_sample_ms`] of wall time) and record the mean as the sample
    /// for `threads`. Speedups are (re)derived from the 1-thread sample.
    pub fn measure<F: FnMut()>(&mut self, threads: usize, min_iters: usize, f: F) {
        let (iters, wall_ms) = run_timed(min_iters, f);
        self.samples.push(ThreadSample {
            threads,
            iters,
            wall_ms,
            speedup: 1.0,
        });
        let base = self
            .samples
            .iter()
            .find(|s| s.threads == 1)
            .map(|s| s.wall_ms)
            .unwrap_or(wall_ms);
        for s in &mut self.samples {
            s.speedup = if s.wall_ms > 0.0 {
                base / s.wall_ms
            } else {
                1.0
            };
        }
    }

    /// Render the JSON document.
    pub fn to_json(&self) -> String {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mode = if quick_mode() { "quick" } else { "full" };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str(&format!("  \"fixture\": \"{}\",\n", escape(&self.fixture)));
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str(&format!("  \"parallelism\": {parallelism},\n"));
        if let Some(m) = &self.metrics {
            out.push_str("  \"metrics\": ");
            out.push_str(&m.to_json_object(2));
            out.push_str(",\n");
        }
        out.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let comma = if i + 1 < self.samples.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"threads\": {}, \"iters\": {}, \"wall_ms\": {:.3}, \
                 \"speedup\": {:.3} }}{comma}\n",
                s.threads, s.iters, s.wall_ms, s.speedup
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_<bench>.json` at the workspace root; returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let path = root.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// One measured configuration of the resolve bench.
#[derive(Debug, Clone)]
pub struct ResolveSample {
    /// Configuration label: `"cold"` or `"snapshot"`.
    pub config: String,
    /// Iterations actually timed (min-total-time control).
    pub iters: usize,
    /// Mean wall time per iteration, in milliseconds.
    pub wall_ms: f64,
    /// Wall-time ratio vs the `"cold"` sample (1.0 for the baseline).
    pub speedup: f64,
}

/// The cold-vs-snapshot report for the `resolve` bench target — same
/// envelope as [`ScalingReport`] but keyed by configuration label
/// instead of thread count, plus the fixture's distinct-value ratio.
#[derive(Debug, Clone)]
pub struct ResolveReport {
    /// Bench name — becomes the `BENCH_<bench>.json` file name.
    pub bench: String,
    /// Human-readable fixture description.
    pub fixture: String,
    /// Distinct normalized values / non-null cells of the fixture table
    /// (1.0 for an empty table). The lower it is, the more the columnar
    /// snapshot saves.
    pub distinct_ratio: f64,
    /// Total triples in the fixture KB (type assertions + resource facts
    /// + literal facts) — records the scale the probe timings ran at.
    pub triples: u64,
    /// Wall time of one columnar index build (sort + arena assembly) from
    /// the legacy representation, in milliseconds — the one-off cost the
    /// gallop probes amortize.
    pub index_build_ms: f64,
    /// Measured configurations, in measurement order.
    pub samples: Vec<ResolveSample>,
    /// Run metrics from one untimed instrumented run of the workload,
    /// embedded under the `"metrics"` key when present.
    pub metrics: Option<RunMetrics>,
}

impl ResolveReport {
    /// Start an empty report.
    pub fn new(bench: &str, fixture: &str, distinct_ratio: f64) -> Self {
        ResolveReport {
            bench: bench.to_string(),
            fixture: fixture.to_string(),
            distinct_ratio,
            triples: 0,
            index_build_ms: 0.0,
            samples: Vec::new(),
            metrics: None,
        }
    }

    /// Time at least `min_iters` runs of `f` (and at least
    /// [`min_sample_ms`] of wall time) and record the mean as the sample
    /// for `config`. Speedups are (re)derived from the `"cold"` sample.
    pub fn measure<F: FnMut()>(&mut self, config: &str, min_iters: usize, f: F) {
        let (iters, wall_ms) = run_timed(min_iters, f);
        self.samples.push(ResolveSample {
            config: config.to_string(),
            iters,
            wall_ms,
            speedup: 1.0,
        });
        let base = self
            .samples
            .iter()
            .find(|s| s.config == "cold")
            .map(|s| s.wall_ms)
            .unwrap_or(wall_ms);
        for s in &mut self.samples {
            s.speedup = if s.wall_ms > 0.0 {
                base / s.wall_ms
            } else {
                1.0
            };
        }
    }

    /// Render the JSON document.
    pub fn to_json(&self) -> String {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mode = if quick_mode() { "quick" } else { "full" };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str(&format!("  \"fixture\": \"{}\",\n", escape(&self.fixture)));
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str(&format!("  \"parallelism\": {parallelism},\n"));
        out.push_str(&format!(
            "  \"distinct_ratio\": {:.4},\n",
            self.distinct_ratio
        ));
        out.push_str(&format!("  \"triples\": {},\n", self.triples));
        out.push_str(&format!(
            "  \"index_build_ms\": {:.3},\n",
            self.index_build_ms
        ));
        if let Some(m) = &self.metrics {
            out.push_str("  \"metrics\": ");
            out.push_str(&m.to_json_object(2));
            out.push_str(",\n");
        }
        out.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let comma = if i + 1 < self.samples.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"config\": \"{}\", \"iters\": {}, \"wall_ms\": {:.3}, \
                 \"speedup\": {:.3} }}{comma}\n",
                escape(&s.config),
                s.iters,
                s.wall_ms,
                s.speedup
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_<bench>.json` at the workspace root; returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let path = root.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// One measured configuration of the serve bench: a batch of HTTP
/// `/clean` requests at one concurrency level, against either a cold or
/// a warm snapshot cache.
#[derive(Debug, Clone)]
pub struct ServeSample {
    /// Configuration label: `"cold"` (every request rebuilds the
    /// `TableResolution`) or `"warm"` (the daemon's snapshot cache hits).
    pub config: String,
    /// Concurrent client threads issuing requests.
    pub concurrency: usize,
    /// Total requests measured in this batch.
    pub requests: usize,
    /// Completed requests per second over the batch wall time.
    pub req_per_s: f64,
    /// Median request latency, in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, in milliseconds.
    pub p99_ms: f64,
}

/// The throughput/latency report for the `serve` bench target — the
/// same envelope as [`ScalingReport`] but with per-batch request rates
/// and latency percentiles instead of per-iteration wall times.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Bench name — becomes the `BENCH_<bench>.json` file name.
    pub bench: String,
    /// Human-readable fixture description.
    pub fixture: String,
    /// Measured batches, in measurement order.
    pub samples: Vec<ServeSample>,
    /// Run metrics from one untimed instrumented run of the benched
    /// workload, embedded under the `"metrics"` key when present.
    pub metrics: Option<RunMetrics>,
}

impl ServeReport {
    /// Start an empty report.
    pub fn new(bench: &str, fixture: &str) -> Self {
        ServeReport {
            bench: bench.to_string(),
            fixture: fixture.to_string(),
            samples: Vec::new(),
            metrics: None,
        }
    }

    /// Record one batch from its per-request latencies and total wall
    /// time. Percentiles use the nearest-rank method over a total-order
    /// float sort (NaN-safe by construction).
    pub fn record(
        &mut self,
        config: &str,
        concurrency: usize,
        latencies_ms: &[f64],
        total_wall_ms: f64,
    ) {
        let mut sorted = latencies_ms.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        let req_per_s = if total_wall_ms > 0.0 {
            latencies_ms.len() as f64 * 1e3 / total_wall_ms
        } else {
            0.0
        };
        self.samples.push(ServeSample {
            config: config.to_string(),
            concurrency,
            requests: latencies_ms.len(),
            req_per_s,
            p50_ms: pct(0.50),
            p99_ms: pct(0.99),
        });
    }

    /// Render the JSON document.
    pub fn to_json(&self) -> String {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mode = if quick_mode() { "quick" } else { "full" };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str(&format!("  \"fixture\": \"{}\",\n", escape(&self.fixture)));
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str(&format!("  \"parallelism\": {parallelism},\n"));
        if let Some(m) = &self.metrics {
            out.push_str("  \"metrics\": ");
            out.push_str(&m.to_json_object(2));
            out.push_str(",\n");
        }
        out.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let comma = if i + 1 < self.samples.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"config\": \"{}\", \"concurrency\": {}, \"requests\": {}, \
                 \"req_per_s\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3} }}{comma}\n",
                escape(&s.config),
                s.concurrency,
                s.requests,
                s.req_per_s,
                s.p50_ms,
                s.p99_ms
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_<bench>.json` at the workspace root; returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let path = root.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// One measured configuration of the incremental bench: a full re-clean
/// or a delta re-clean at one edit rate.
#[derive(Debug, Clone)]
pub struct IncrementalSample {
    /// Configuration label: `"full"` (re-clean the edited table from
    /// scratch) or `"delta"` (replay the edits through a warm
    /// `DeltaSession`).
    pub config: String,
    /// Fraction of rows edited per applied delta.
    pub edit_rate: f64,
    /// Iterations actually timed (min-total-time control).
    pub iters: usize,
    /// Mean wall time per applied delta, in milliseconds.
    pub wall_ms: f64,
    /// Wall-time ratio vs the `"full"` sample at the same edit rate.
    pub speedup: f64,
    /// Logical work of one instrumented application: the sum of every
    /// `discovery.*` and `repair.*` counter it incremented.
    pub work_counters: u64,
}

/// The full-vs-delta report for the `incremental` bench target — the
/// [`ScalingReport`] envelope keyed by (config, edit rate), with each
/// sample carrying the logical-work counter sum that makes "fraction of
/// full work" checkable without rerunning the bench.
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// Bench name — becomes the `BENCH_<bench>.json` file name.
    pub bench: String,
    /// Human-readable fixture description.
    pub fixture: String,
    /// Measured configurations, in measurement order.
    pub samples: Vec<IncrementalSample>,
    /// Run metrics from one untimed instrumented run of the workload,
    /// embedded under the `"metrics"` key when present.
    pub metrics: Option<RunMetrics>,
}

impl IncrementalReport {
    /// Start an empty report.
    pub fn new(bench: &str, fixture: &str) -> Self {
        IncrementalReport {
            bench: bench.to_string(),
            fixture: fixture.to_string(),
            samples: Vec::new(),
            metrics: None,
        }
    }

    /// Time at least `min_iters` runs of `f` (and at least
    /// [`min_sample_ms`] of wall time) and record the mean as the sample
    /// for `(config, edit_rate)`. Speedups are (re)derived per edit rate
    /// from that rate's `"full"` sample.
    pub fn measure<F: FnMut()>(
        &mut self,
        config: &str,
        edit_rate: f64,
        min_iters: usize,
        work_counters: u64,
        f: F,
    ) {
        let (iters, wall_ms) = run_timed(min_iters, f);
        self.samples.push(IncrementalSample {
            config: config.to_string(),
            edit_rate,
            iters,
            wall_ms,
            speedup: 1.0,
            work_counters,
        });
        let bases: Vec<(f64, f64)> = self
            .samples
            .iter()
            .filter(|s| s.config == "full")
            .map(|s| (s.edit_rate, s.wall_ms))
            .collect();
        for s in &mut self.samples {
            let base = bases
                .iter()
                .find(|(r, _)| *r == s.edit_rate)
                .map(|&(_, w)| w)
                .unwrap_or(s.wall_ms);
            s.speedup = if s.wall_ms > 0.0 {
                base / s.wall_ms
            } else {
                1.0
            };
        }
    }

    /// Render the JSON document.
    pub fn to_json(&self) -> String {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mode = if quick_mode() { "quick" } else { "full" };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str(&format!("  \"fixture\": \"{}\",\n", escape(&self.fixture)));
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str(&format!("  \"parallelism\": {parallelism},\n"));
        if let Some(m) = &self.metrics {
            out.push_str("  \"metrics\": ");
            out.push_str(&m.to_json_object(2));
            out.push_str(",\n");
        }
        out.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let comma = if i + 1 < self.samples.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"config\": \"{}\", \"edit_rate\": {:.4}, \"iters\": {}, \
                 \"wall_ms\": {:.3}, \"speedup\": {:.3}, \"work_counters\": {} }}{comma}\n",
                escape(&s.config),
                s.edit_rate,
                s.iters,
                s.wall_ms,
                s.speedup,
                s.work_counters
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_<bench>.json` at the workspace root; returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let path = root.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// One measured configuration of the crowd bench: one aggregation mode
/// on one seeded fault plan, at the shared worker-answer budget.
#[derive(Debug, Clone)]
pub struct CrowdSample {
    /// Fault-plan label, e.g. `"spam40/0.75"`.
    pub plan: String,
    /// Aggregation mode label: `"plurality"` or `"dawid-skene"`.
    pub agg: String,
    /// Questions the mode answered within the budget.
    pub questions: usize,
    /// Worker answers spent (the budgeted resource).
    pub answers: usize,
    /// Fraction of answered questions matching the ground truth.
    pub accuracy: f64,
    /// Extra replicas issued on disagreement escalation.
    pub escalations: usize,
    /// Replica slots adaptive replication never had to issue.
    pub questions_saved: usize,
    /// Mean wall time of one full sweep run, in milliseconds.
    pub wall_ms: f64,
}

/// The quality report for the `crowd` bench target — the
/// [`ScalingReport`] envelope keyed by (fault plan, aggregation mode),
/// with accuracy-at-budget figures instead of speedups. The CI
/// `crowd-quality-smoke` job regenerates the same numbers through the
/// `crowd_quality_gate` test; this artifact records them.
#[derive(Debug, Clone)]
pub struct CrowdReport {
    /// Bench name — becomes the `BENCH_<bench>.json` file name.
    pub bench: String,
    /// Human-readable fixture description.
    pub fixture: String,
    /// Measured configurations, in measurement order.
    pub samples: Vec<CrowdSample>,
    /// Run metrics from one untimed instrumented run of the workload,
    /// embedded under the `"metrics"` key when present.
    pub metrics: Option<RunMetrics>,
}

impl CrowdReport {
    /// Start an empty report.
    pub fn new(bench: &str, fixture: &str) -> Self {
        CrowdReport {
            bench: bench.to_string(),
            fixture: fixture.to_string(),
            samples: Vec::new(),
            metrics: None,
        }
    }

    /// Record one (plan, mode) configuration.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        plan: &str,
        agg: &str,
        questions: usize,
        answers: usize,
        accuracy: f64,
        escalations: usize,
        questions_saved: usize,
        wall_ms: f64,
    ) {
        self.samples.push(CrowdSample {
            plan: plan.to_string(),
            agg: agg.to_string(),
            questions,
            answers,
            accuracy,
            escalations,
            questions_saved,
            wall_ms,
        });
    }

    /// Render the JSON document.
    pub fn to_json(&self) -> String {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mode = if quick_mode() { "quick" } else { "full" };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str(&format!("  \"fixture\": \"{}\",\n", escape(&self.fixture)));
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str(&format!("  \"parallelism\": {parallelism},\n"));
        if let Some(m) = &self.metrics {
            out.push_str("  \"metrics\": ");
            out.push_str(&m.to_json_object(2));
            out.push_str(",\n");
        }
        out.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let comma = if i + 1 < self.samples.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"plan\": \"{}\", \"agg\": \"{}\", \"questions\": {}, \
                 \"answers\": {}, \"accuracy\": {:.4}, \"escalations\": {}, \
                 \"questions_saved\": {}, \"wall_ms\": {:.3} }}{comma}\n",
                escape(&s.plan),
                escape(&s.agg),
                s.questions,
                s.answers,
                s.accuracy,
                s.escalations,
                s.questions_saved,
                s.wall_ms
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_<bench>.json` at the workspace root; returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        let path = root.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Sum of every `discovery.*` and `repair.*` counter in a metrics
/// snapshot — the logical-work figure the incremental report records per
/// sample (resolution and crowd spend are tracked by their own counters;
/// discovery + repair is what a delta re-clean is supposed to avoid).
pub fn work_counters(metrics: &RunMetrics) -> u64 {
    metrics
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("discovery.") || name.starts_with("repair."))
        .map(|&(_, v)| v)
        .sum()
}

/// Minimal JSON string escaping — fixture names are plain ASCII, but a
/// stray quote must not corrupt the document.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_and_speedups() {
        let mut r = ScalingReport::new("unit", "toy");
        r.measure(1, 2, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        r.measure(2, 2, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert_eq!(r.samples.len(), 2);
        assert!((r.samples[0].speedup - 1.0).abs() < 1e-9);
        assert!(r.samples[1].speedup > 1.0, "{:?}", r.samples);
        let json = r.to_json();
        for key in [
            "\"bench\"",
            "\"fixture\"",
            "\"mode\"",
            "\"parallelism\"",
            "\"samples\"",
            "\"threads\"",
            "\"iters\"",
            "\"wall_ms\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn min_total_time_tops_up_iterations() {
        // A microsecond-scale body must be iterated far beyond the
        // 2-iteration floor to accumulate min_sample_ms of wall time.
        let mut r = ScalingReport::new("unit", "toy");
        let mut count = 0usize;
        r.measure(1, 2, || count += 1);
        assert_eq!(r.samples[0].iters, count);
        assert!(count > 2, "min-total-time should demand more than {count}");
        assert!(r.samples[0].iters as f64 * r.samples[0].wall_ms >= min_sample_ms() * 0.9);
    }

    #[test]
    fn resolve_report_shape_and_speedups() {
        let mut r = ResolveReport::new("resolve", "toy", 0.25);
        r.triples = 1_234;
        r.index_build_ms = 5.5;
        r.measure("cold", 2, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        r.measure("snapshot", 2, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert_eq!(r.samples.len(), 2);
        assert!((r.samples[0].speedup - 1.0).abs() < 1e-9);
        assert!(r.samples[1].speedup > 1.0, "{:?}", r.samples);
        let json = r.to_json();
        for key in [
            "\"bench\"",
            "\"fixture\"",
            "\"mode\"",
            "\"parallelism\"",
            "\"distinct_ratio\"",
            "\"triples\": 1234",
            "\"index_build_ms\": 5.500",
            "\"samples\"",
            "\"config\"",
            "\"cold\"",
            "\"snapshot\"",
            "\"iters\"",
            "\"wall_ms\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn serve_report_shape_and_percentiles() {
        let mut r = ServeReport::new("serve", "toy");
        // 100 latencies 1..=100 ms over 1 s of wall: 100 req/s,
        // p50 ≈ 50-51, p99 ≈ 99-100 by nearest rank.
        let lat: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        r.record("cold", 4, &lat, 1_000.0);
        r.record("warm", 4, &[], 0.0); // degenerate batch stays finite
        let s = &r.samples[0];
        assert_eq!(s.requests, 100);
        assert!((s.req_per_s - 100.0).abs() < 1e-9);
        assert!((49.0..=52.0).contains(&s.p50_ms), "{}", s.p50_ms);
        assert!((98.0..=100.0).contains(&s.p99_ms), "{}", s.p99_ms);
        let empty = &r.samples[1];
        assert_eq!(empty.requests, 0);
        assert_eq!(empty.req_per_s, 0.0);
        let json = r.to_json();
        for key in [
            "\"bench\": \"serve\"",
            "\"config\": \"cold\"",
            "\"concurrency\": 4",
            "\"requests\": 100",
            "\"req_per_s\"",
            "\"p50_ms\"",
            "\"p99_ms\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn incremental_report_speedups_are_per_edit_rate() {
        let mut r = IncrementalReport::new("incremental", "toy");
        r.measure("full", 0.01, 2, 100, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        r.measure("delta", 0.01, 2, 5, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        r.measure("full", 0.1, 2, 100, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert!((r.samples[0].speedup - 1.0).abs() < 1e-9);
        assert!(r.samples[1].speedup > 1.0, "{:?}", r.samples);
        assert!(
            (r.samples[2].speedup - 1.0).abs() < 1e-9,
            "each edit rate gets its own full baseline: {:?}",
            r.samples
        );
        let json = r.to_json();
        for key in [
            "\"bench\": \"incremental\"",
            "\"config\": \"full\"",
            "\"config\": \"delta\"",
            "\"edit_rate\": 0.0100",
            "\"work_counters\": 100",
            "\"work_counters\": 5",
            "\"iters\"",
            "\"wall_ms\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn crowd_report_shape() {
        let mut r = CrowdReport::new("crowd", "toy");
        r.record("honest/0.95", "plurality", 120, 360, 0.9833, 0, 0, 4.2);
        r.record("honest/0.95", "dawid-skene", 120, 253, 1.0, 0, 111, 3.1);
        let json = r.to_json();
        for key in [
            "\"bench\": \"crowd\"",
            "\"plan\": \"honest/0.95\"",
            "\"agg\": \"plurality\"",
            "\"agg\": \"dawid-skene\"",
            "\"questions\": 120",
            "\"answers\": 253",
            "\"accuracy\": 0.9833",
            "\"escalations\": 0",
            "\"questions_saved\": 111",
            "\"wall_ms\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.ends_with("  ]\n}\n"), "{json}");
    }

    #[test]
    fn work_counters_sums_discovery_and_repair_only() {
        use katara_obs::{Counter, Recorder, RunRecorder};
        let rec = RunRecorder::new();
        rec.incr(Counter::DiscoveryHeapPops);
        rec.incr_by(Counter::DiscoveryTypeProbes, 4);
        rec.incr_by(Counter::RepairTuplesRepaired, 2);
        rec.incr_by(Counter::CrowdQuestionsAsked, 99);
        assert_eq!(work_counters(&rec.snapshot()), 7);
    }

    #[test]
    fn escape_keeps_json_valid() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn embedded_metrics_render_inside_the_envelope() {
        use katara_obs::{Counter, Recorder, RunRecorder};
        let rec = RunRecorder::new();
        rec.incr(Counter::DiscoveryHeapPops);
        let mut r = ScalingReport::new("unit", "toy");
        r.measure(1, 1, || {});
        r.metrics = Some(rec.snapshot());
        let json = r.to_json();
        assert!(json.contains("\"metrics\": {"), "{json}");
        assert!(json.contains("\"schema\": \"katara-run-metrics/v1\""));
        assert!(json.contains("\"discovery.heap_pops\": 1"));
        // The embedded object closes at its own indent and the envelope
        // still closes cleanly after it.
        assert!(json.contains("  },\n  \"samples\": ["), "{json}");
        assert!(json.ends_with("  ]\n}\n"), "{json}");
    }
}
