//! # katara-cli — command-line KATARA
//!
//! ```text
//! katara clean    --table data.csv --kb kb.nt [--crowd MODE] [--k N]
//!                 [--out repaired.csv] [--enriched-kb out.nt]
//!                 [--max-questions N] [--strict|--lenient] [--threads N]
//!                 [--direct-resolve] [--metrics OUT.json] [--trace]
//!                 [--delta EDITS.csv] [--crowd-agg plurality|dawid-skene]
//! katara discover --table data.csv --kb kb.nt [--k N] [--strict|--lenient]
//!                 [--threads N] [--direct-resolve]
//! katara kb-stats --kb kb.nt [--strict|--lenient]
//! katara serve    --kb kb.nt [--addr HOST:PORT] [--crowd MODE]
//!                 [--max-in-flight N] [--threads N] [--k N]
//!                 [--default-deadline-ms N] [--strict|--lenient]
//!                 [--journal-dir DIR]
//! katara recover  --journal-dir DIR [--verify] [--out KB.nt]
//! ```
//!
//! The KB is N-Triples (see `katara_kb::ntriples`); tables are CSV with a
//! header row. Crowd modes:
//!
//! * `interactive` — questions are printed to the terminal and answered
//!   on stdin (you are the expert crowd);
//! * `trust` — missing KB facts are presumed true (the table is trusted;
//!   maximal enrichment, no error flags);
//! * `skeptic` — missing KB facts are presumed false (the KB is trusted;
//!   everything unsupported is flagged and repaired);
//! * `facts:FILE` — answer from a TSV of known true statements
//!   (`subject<TAB>property<TAB>object`); anything else is false.
//!
//! `--max-questions N` caps the crowd budget; when it runs dry the
//! pipeline degrades gracefully and the binary exits 3 (0 = clean,
//! 1 = error, 2 = usage).
//!
//! `--strict` (the default) aborts on the first malformed KB statement or
//! CSV record with a line-numbered error. `--lenient` quarantines
//! malformed lines, repairs KB hierarchy cycles by dropping the closing
//! edge, reports what was lost, and exits 3 when anything was — the run
//! completes on whatever loaded cleanly.
//!
//! `--threads N` sizes the worker pool for the discovery and repair hot
//! paths (default: the `KATARA_THREADS` environment variable, else the
//! machine's available parallelism). Results are byte-identical for every
//! thread count — `--threads` is purely a performance knob.
//!
//! `--direct-resolve` disables the shared KB query snapshot (see
//! `katara_core::resolve`) and issues live KB lookups per stage as the
//! pre-snapshot code did. Output is byte-identical either way — like
//! `--threads`, this is purely a performance knob (kept for A/B
//! measurement and as an escape hatch).
//!
//! `--metrics OUT.json` attaches a [`katara_obs::RunRecorder`] to the
//! pipeline and writes the run's [`katara_obs::RunMetrics`] — KB probe
//! counts, snapshot-tier hit rates, crowd spend, repair statistics — as
//! stable JSON. The `"deterministic"` section is byte-identical across
//! `--threads` values and across `--direct-resolve`; wall times and the
//! span tree live in the separate `"nondeterministic"` section. `--trace`
//! prints the per-phase span tree (human-readable, quantized wall times)
//! to stderr; the two flags compose and neither perturbs the repairs.
//!
//! `--crowd-agg` picks how replicated crowd answers are aggregated:
//! `plurality` (the default — the paper's majority vote) or
//! `dawid-skene`, which infers a per-worker quality score by EM, stops
//! replicating early once the answer posterior is confident, and
//! escalates disagreements to fresh workers (see DESIGN.md §5k). Both
//! modes charge the same `--max-questions` budget.
//!
//! `clean --delta EDITS.csv` exercises the incremental engine: the base
//! table is cleaned once to warm a [`DeltaSession`], the edits are
//! applied (CSV with header `op,row,<columns…>`; `op` is `upsert` or
//! `delete`, and an upsert `row` equal to the current row count
//! appends), and the re-clean runs incrementally — byte-identical to a
//! full re-clean of the edited table at a fraction of the work.
//! `--out`, `--enriched-kb`, and the printed report then reflect the
//! edited table; `--metrics` additionally exports the `delta.*` work
//! counters alongside the bootstrap run's.
//!
//! `serve` runs the long-lived cleaning daemon from `katara-serve`: the
//! KB loads once and stays warm, tables arrive as CSV request bodies on
//! `POST /clean`, and SIGTERM drains in-flight requests before exit.
//! See DESIGN.md §5g for the endpoint and status-code contract.
//!
//! `serve --journal-dir DIR` makes the daemon *durable*: crowd-confirmed
//! enrichment is appended to a write-ahead journal and fsynced before
//! each response acknowledges it, and a restarted daemon replays the
//! journal back to the exact pre-crash store. `katara recover
//! --journal-dir DIR` inspects such a directory offline (it never
//! writes, so it is safe against a live daemon); `--verify` additionally
//! round-trips the recovered store through the serializer and fails if
//! recovery is not byte-stable; `--out KB.nt` exports the recovered KB.
//! See DESIGN.md §5h for the journal format and the crash matrix.
//!
//! The library part exists so the command logic is unit-testable; the
//! binary is a thin `main`.

#![warn(missing_docs)]

use std::collections::HashSet;
use std::io::BufRead;
use std::sync::Arc;

use katara_core::prelude::*;
use katara_crowd::{AggregationMode, Answer, Budget, Crowd, CrowdConfig, Oracle, Question};
use katara_kb::{ntriples, sim, Kb};
use katara_serve::{ServePolicy, Server, ServerConfig};
use katara_table::{csv, Table};

/// Ingestion mode selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestChoice {
    /// Abort on the first defect (`--strict`, the default).
    #[default]
    Strict,
    /// Quarantine defects and keep going (`--lenient`).
    Lenient,
}

impl IngestChoice {
    fn kb_policy(self) -> katara_kb::IngestPolicy {
        match self {
            IngestChoice::Strict => katara_kb::IngestPolicy::strict(),
            IngestChoice::Lenient => katara_kb::IngestPolicy::lenient(),
        }
    }

    fn table_policy(self) -> katara_table::IngestPolicy {
        match self {
            IngestChoice::Strict => katara_table::IngestPolicy::strict(),
            IngestChoice::Lenient => katara_table::IngestPolicy::lenient(),
        }
    }
}

/// CLI errors. Every variant maps to a clean non-zero exit in `main`;
/// nothing in the command path panics on user input.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// I/O problem.
    Io(std::io::Error),
    /// KB parse problem.
    Kb(ntriples::NtError),
    /// CSV parse problem.
    Csv(csv::CsvError),
    /// Pipeline problem.
    Katara(KataraError),
    /// Journal recovery/verification problem.
    Journal(katara_kb::JournalError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Kb(e) => write!(f, "kb error: {e}"),
            CliError::Csv(e) => write!(f, "csv error: {e}"),
            CliError::Katara(e) => write!(f, "{e}"),
            CliError::Journal(e) => write!(f, "journal error: {e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Usage(_) => None,
            CliError::Io(e) => Some(e),
            CliError::Kb(e) => Some(e),
            CliError::Csv(e) => Some(e),
            CliError::Katara(e) => Some(e),
            CliError::Journal(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<katara_crowd::CrowdError> for CliError {
    fn from(e: katara_crowd::CrowdError) -> Self {
        CliError::Katara(KataraError::from(e))
    }
}
impl From<ntriples::NtError> for CliError {
    fn from(e: ntriples::NtError) -> Self {
        CliError::Kb(e)
    }
}
impl From<csv::CsvError> for CliError {
    fn from(e: csv::CsvError) -> Self {
        CliError::Csv(e)
    }
}
impl From<KataraError> for CliError {
    fn from(e: KataraError) -> Self {
        CliError::Katara(e)
    }
}
impl From<katara_kb::JournalError> for CliError {
    fn from(e: katara_kb::JournalError) -> Self {
        CliError::Journal(e)
    }
}

/// How the crowd answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrowdMode {
    /// Ask on stdin.
    Interactive,
    /// Missing facts presumed true.
    Trust,
    /// Missing facts presumed false.
    Skeptic,
    /// Answer from a set of known-true `(subject, property, object)`
    /// statements (normalized).
    Facts(HashSet<(String, String, String)>),
}

impl CrowdMode {
    /// Parse a `--crowd` argument.
    pub fn parse(arg: &str) -> Result<Self, CliError> {
        match arg {
            "interactive" => Ok(CrowdMode::Interactive),
            "trust" => Ok(CrowdMode::Trust),
            "skeptic" => Ok(CrowdMode::Skeptic),
            other => match other.strip_prefix("facts:") {
                Some(path) => {
                    let text = std::fs::read_to_string(path)?;
                    Ok(CrowdMode::Facts(parse_facts(&text)))
                }
                None => Err(CliError::Usage(format!(
                    "unknown crowd mode {other:?} (interactive|trust|skeptic|facts:FILE)"
                ))),
            },
        }
    }
}

/// Parse a facts TSV into a normalized statement set.
pub fn parse_facts(text: &str) -> HashSet<(String, String, String)> {
    text.lines()
        .filter_map(|l| {
            let mut parts = l.split('\t');
            let s = parts.next()?.trim();
            let p = parts.next()?.trim();
            let o = parts.next()?.trim();
            if s.is_empty() || p.is_empty() || o.is_empty() {
                return None;
            }
            Some((
                sim::normalize(s),
                ntriples::local_name(p).to_string(),
                sim::normalize(ntriples::local_name(o)),
            ))
        })
        .collect()
}

/// The CLI oracle implementing the four modes. Choice questions (pattern
/// validation) default to the top-ranked candidate outside interactive
/// mode — i.e. discovery's ranking is accepted as-is.
pub struct CliOracle {
    mode: CrowdMode,
}

impl CliOracle {
    /// Build an oracle for a mode.
    pub fn new(mode: CrowdMode) -> Self {
        CliOracle { mode }
    }

    fn ask_stdin(&self, q: &Question) -> Answer {
        println!("\n{q}");
        let options = q.num_options();
        let is_fact = matches!(q, Question::Fact { .. });
        loop {
            if is_fact {
                print!("  [y/n] > ");
            } else {
                print!("  [1-{} or 0 for none of the above] > ", options - 1);
            }
            use std::io::Write;
            let _ = std::io::stdout().flush();
            let mut line = String::new();
            if std::io::stdin().lock().read_line(&mut line).is_err() {
                return Answer::NoneOfTheAbove;
            }
            let t = line.trim();
            if is_fact {
                match t {
                    "y" | "Y" | "yes" => return Answer::Bool(true),
                    "n" | "N" | "no" => return Answer::Bool(false),
                    _ => continue,
                }
            }
            match t.parse::<usize>() {
                Ok(0) => return Answer::NoneOfTheAbove,
                Ok(i) if i < options => return Answer::Choice(i - 1),
                _ => continue,
            }
        }
    }
}

impl Oracle for CliOracle {
    fn answer(&self, q: &Question) -> Answer {
        match (&self.mode, q) {
            (CrowdMode::Interactive, q) => self.ask_stdin(q),
            (_, Question::ColumnType { .. } | Question::Relationship { .. }) => Answer::Choice(0),
            (CrowdMode::Trust, Question::Fact { .. }) => Answer::Bool(true),
            (CrowdMode::Skeptic, Question::Fact { .. }) => Answer::Bool(false),
            (
                CrowdMode::Facts(facts),
                Question::Fact {
                    subject,
                    property,
                    object,
                },
            ) => {
                // Properties in questions may carry IRI/CURIE prefixes
                // (`y:hasCapital`); the facts file uses bare names.
                let prop = ntriples::local_name(property).to_string();
                let key = (
                    sim::normalize(subject),
                    prop,
                    sim::normalize(ntriples::local_name(object)),
                );
                Answer::Bool(facts.contains(&key))
            }
        }
    }
}

/// Parsed command line.
#[derive(Debug)]
pub enum Command {
    /// Full pipeline.
    Clean {
        /// CSV path.
        table: String,
        /// N-Triples path.
        kb: String,
        /// Crowd mode.
        crowd: CrowdMode,
        /// Repairs per erroneous tuple.
        k: usize,
        /// Where to write the repaired CSV (top-1 repairs applied).
        out: Option<String>,
        /// Where to write the enriched KB.
        enriched_kb: Option<String>,
        /// Cap on crowd questions; `None` is unlimited. When the cap is
        /// hit mid-run the pipeline degrades gracefully instead of
        /// failing (exit code 3).
        max_questions: Option<usize>,
        /// Strict or lenient ingestion of the KB and table files.
        ingest: IngestChoice,
        /// Worker threads for the discovery/repair hot paths; `None`
        /// resolves `KATARA_THREADS` / available parallelism.
        threads: Option<usize>,
        /// `true` disables the shared query snapshot (`--direct-resolve`).
        direct_resolve: bool,
        /// Where to write run metrics JSON (`--metrics`); `None` skips
        /// instrumentation entirely (the no-op recorder).
        metrics: Option<String>,
        /// `true` prints the span tree to stderr (`--trace`).
        trace: bool,
        /// Edits CSV for an incremental re-clean (`--delta`); `None`
        /// runs the ordinary one-shot clean.
        delta: Option<String>,
        /// How replicated crowd answers are aggregated (`--crowd-agg`);
        /// plurality is the paper's majority vote, Dawid–Skene learns
        /// per-worker quality and adapts replication.
        crowd_agg: AggregationMode,
    },
    /// Discovery only.
    Discover {
        /// CSV path.
        table: String,
        /// N-Triples path.
        kb: String,
        /// Patterns to show.
        k: usize,
        /// Strict or lenient ingestion of the KB and table files.
        ingest: IngestChoice,
        /// Worker threads for candidate discovery; `None` resolves
        /// `KATARA_THREADS` / available parallelism.
        threads: Option<usize>,
        /// `true` disables the shared query snapshot (`--direct-resolve`).
        direct_resolve: bool,
    },
    /// KB statistics.
    KbStats {
        /// N-Triples path.
        kb: String,
        /// Strict or lenient ingestion of the KB file.
        ingest: IngestChoice,
    },
    /// Long-lived cleaning daemon (`katara serve`).
    Serve {
        /// N-Triples path, loaded once and kept warm.
        kb: String,
        /// Bind address (`HOST:PORT`; port 0 picks a free port).
        addr: String,
        /// Crowd mode for requests that don't override it. Interactive
        /// is rejected — a daemon has no stdin to ask.
        crowd: CrowdMode,
        /// Maximum concurrently executing `/clean` requests.
        max_in_flight: usize,
        /// Worker threads for the cleaning hot paths.
        threads: Option<usize>,
        /// Strict or lenient ingestion of the KB file.
        ingest: IngestChoice,
        /// Default per-request pipeline deadline in milliseconds,
        /// applied when a request carries no `deadline_ms`.
        default_deadline_ms: Option<u64>,
        /// Repairs per erroneous tuple.
        k: usize,
        /// Write-ahead journal directory (`--journal-dir`); `Some`
        /// makes the daemon durable: enrichment persists across
        /// restarts and crashes.
        journal_dir: Option<String>,
    },
    /// Offline journal recovery/inspection (`katara recover`).
    Recover {
        /// The journal directory to recover from.
        journal_dir: String,
        /// Also round-trip the recovered store through the serializer
        /// and fail unless recovery is byte-stable (`--verify`).
        verify: bool,
        /// Where to write the recovered KB as N-Triples.
        out: Option<String>,
    },
}

/// Parse `argv[1..]`.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let usage = || {
        CliError::Usage(
            "katara clean|discover|kb-stats|serve --table T.csv --kb KB.nt \
             [--crowd interactive|trust|skeptic|facts:FILE] [--k N] \
             [--out OUT.csv] [--enriched-kb OUT.nt] [--max-questions N] \
             [--strict|--lenient] [--threads N] [--direct-resolve] \
             [--metrics OUT.json] [--trace] [--delta EDITS.csv] \
             [--crowd-agg plurality|dawid-skene] \
             [--addr HOST:PORT] [--max-in-flight N] [--default-deadline-ms N] \
             [--journal-dir DIR] [--verify]"
                .to_string(),
        )
    };
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?.clone();
    let mut table = None;
    let mut kb = None;
    let mut crowd = CrowdMode::Skeptic;
    let mut k = 3usize;
    let mut out = None;
    let mut enriched_kb = None;
    let mut max_questions = None;
    let mut ingest = IngestChoice::default();
    let mut threads = None;
    let mut direct_resolve = false;
    let mut metrics = None;
    let mut trace = false;
    let mut addr = "127.0.0.1:8743".to_string();
    let mut max_in_flight = 4usize;
    let mut default_deadline_ms = None;
    let mut journal_dir = None;
    let mut verify = false;
    let mut delta = None;
    let mut crowd_agg = None;
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--table" => table = Some(value()?),
            "--kb" => kb = Some(value()?),
            "--crowd" => crowd = CrowdMode::parse(&value()?)?,
            "--k" => {
                k = value()?
                    .parse()
                    .map_err(|_| CliError::Usage("--k needs a number".into()))?
            }
            "--out" => out = Some(value()?),
            "--enriched-kb" => enriched_kb = Some(value()?),
            "--max-questions" => {
                max_questions = Some(
                    value()?
                        .parse()
                        .map_err(|_| CliError::Usage("--max-questions needs a number".into()))?,
                )
            }
            "--strict" => ingest = IngestChoice::Strict,
            "--lenient" => ingest = IngestChoice::Lenient,
            "--threads" => {
                let n: usize = value()?
                    .parse()
                    .map_err(|_| CliError::Usage("--threads needs a number".into()))?;
                if n == 0 {
                    return Err(CliError::Usage("--threads must be at least 1".into()));
                }
                threads = Some(n);
            }
            "--direct-resolve" => direct_resolve = true,
            "--metrics" => metrics = Some(value()?),
            "--trace" => trace = true,
            "--addr" => addr = value()?,
            "--max-in-flight" => {
                max_in_flight = value()?
                    .parse()
                    .map_err(|_| CliError::Usage("--max-in-flight needs a number".into()))?
            }
            "--default-deadline-ms" => {
                default_deadline_ms =
                    Some(value()?.parse().map_err(|_| {
                        CliError::Usage("--default-deadline-ms needs a number".into())
                    })?)
            }
            "--journal-dir" => journal_dir = Some(value()?),
            "--verify" => verify = true,
            "--delta" => delta = Some(value()?),
            "--crowd-agg" => {
                crowd_agg = Some(
                    value()?
                        .parse::<AggregationMode>()
                        .map_err(CliError::Usage)?,
                )
            }
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    let need = |o: Option<String>, what: &str| {
        o.ok_or_else(|| CliError::Usage(format!("missing --{what}")))
    };
    if delta.is_some() && cmd != "clean" {
        return Err(CliError::Usage("--delta only applies to `clean`".into()));
    }
    if crowd_agg.is_some() && cmd != "clean" {
        return Err(CliError::Usage(
            "--crowd-agg only applies to `clean`".into(),
        ));
    }
    match cmd.as_str() {
        "clean" => Ok(Command::Clean {
            table: need(table, "table")?,
            kb: need(kb, "kb")?,
            crowd,
            k,
            out,
            enriched_kb,
            max_questions,
            ingest,
            threads,
            direct_resolve,
            metrics,
            trace,
            delta,
            crowd_agg: crowd_agg.unwrap_or_default(),
        }),
        "discover" | "kb-stats" if metrics.is_some() || trace => Err(CliError::Usage(
            "--metrics/--trace only apply to `clean`".into(),
        )),
        "discover" => Ok(Command::Discover {
            table: need(table, "table")?,
            kb: need(kb, "kb")?,
            k,
            ingest,
            threads,
            direct_resolve,
        }),
        "kb-stats" => Ok(Command::KbStats {
            kb: need(kb, "kb")?,
            ingest,
        }),
        "serve" => {
            if crowd == CrowdMode::Interactive {
                return Err(CliError::Usage(
                    "serve cannot use --crowd interactive (a daemon has no stdin); \
                     use trust, skeptic, or facts:FILE"
                        .into(),
                ));
            }
            if verify {
                return Err(CliError::Usage("--verify only applies to `recover`".into()));
            }
            Ok(Command::Serve {
                kb: need(kb, "kb")?,
                addr,
                crowd,
                max_in_flight,
                threads,
                ingest,
                default_deadline_ms,
                k,
                journal_dir,
            })
        }
        "recover" => Ok(Command::Recover {
            journal_dir: journal_dir
                .ok_or_else(|| CliError::Usage("recover needs --journal-dir DIR".into()))?,
            verify,
            out,
        }),
        _ => Err(usage()),
    }
}

fn load_kb(path: &str, ingest: IngestChoice) -> Result<(Kb, katara_kb::IngestReport), CliError> {
    let text = std::fs::read_to_string(path)?;
    let name = path.rsplit('/').next().unwrap_or(path);
    Ok(ntriples::parse_with_policy(
        name,
        &text,
        &ingest.kb_policy(),
    )?)
}

fn load_table(
    path: &str,
    ingest: IngestChoice,
) -> Result<(Table, katara_table::IngestReport), CliError> {
    let text = std::fs::read_to_string(path)?;
    let name = path.rsplit('/').next().unwrap_or(path);
    Ok(csv::parse_with_policy(name, &text, &ingest.table_policy())?)
}

/// Cap on per-line diagnostics echoed to stdout; the counts are exact.
const MAX_PRINTED: usize = 5;

fn print_kb_ingest(report: &katara_kb::IngestReport) {
    if report.quarantined_count > 0 {
        println!(
            "kb ingest: {} of {} statements quarantined",
            report.quarantined_count, report.total_statements
        );
        for q in report.quarantined.iter().take(MAX_PRINTED) {
            println!("  {q}");
        }
        if report.quarantined_count > MAX_PRINTED {
            println!("  ... and {} more", report.quarantined_count - MAX_PRINTED);
        }
    }
    for e in report.audit.broken_edges.iter().take(MAX_PRINTED) {
        println!("kb audit: {e}");
    }
    if report.audit.broken_edges.len() > MAX_PRINTED {
        println!(
            "kb audit: ... and {} more repaired edges",
            report.audit.broken_edges.len() - MAX_PRINTED
        );
    }
    if !report.dangling_refs.is_empty() {
        println!(
            "kb audit: {} dangling reference(s), e.g. {:?}",
            report.dangling_refs.len(),
            report.dangling_refs[0]
        );
    }
    if !report.audit.label_collisions.is_empty() {
        println!(
            "kb audit: {} label(s) shared by multiple resources",
            report.audit.label_collisions.len()
        );
    }
}

fn print_table_ingest(report: &katara_table::IngestReport) {
    if report.quarantined_count > 0 {
        println!(
            "table ingest: {} of {} records quarantined",
            report.quarantined_count, report.total_records
        );
        for q in report.quarantined.iter().take(MAX_PRINTED) {
            println!("  {q}");
        }
        if report.quarantined_count > MAX_PRINTED {
            println!("  ... and {} more", report.quarantined_count - MAX_PRINTED);
        }
    }
}

/// How a successful run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Everything completed at full fidelity.
    Clean,
    /// The pipeline completed but degraded (budget exhausted, crowd
    /// faults, unresolved tuples). `main` exits 3 so scripts can tell.
    Degraded,
}

/// Resolve an optional `--threads N` into a pool size: an explicit
/// value wins, otherwise fall back to `KATARA_THREADS` / available
/// parallelism via [`Threads::auto`].
fn resolve_threads(threads: Option<usize>) -> Threads {
    threads.map(Threads::fixed).unwrap_or_default()
}

/// Execute a command, writing human-readable output to stdout.
pub fn run(cmd: Command) -> Result<RunStatus, CliError> {
    match cmd {
        Command::KbStats { kb, ingest } => {
            let (kb, report) = load_kb(&kb, ingest)?;
            print_kb_ingest(&report);
            println!("KB `{}`:", kb.name());
            println!("  entities:   {}", kb.num_entities());
            println!("  classes:    {}", kb.num_classes());
            println!("  properties: {}", kb.num_properties());
            println!("  facts:      {}", kb.num_facts());
            if report.is_degraded() {
                Ok(RunStatus::Degraded)
            } else {
                Ok(RunStatus::Clean)
            }
        }
        Command::Discover {
            table,
            kb,
            k,
            ingest,
            threads,
            direct_resolve,
        } => {
            let (kb, kb_report) = load_kb(&kb, ingest)?;
            let (table, table_report) = load_table(&table, ingest)?;
            print_kb_ingest(&kb_report);
            print_table_ingest(&table_report);
            let ingest_summary = IngestSummary {
                kb: Some(kb_report),
                table: Some(table_report),
            };
            let status = if ingest_summary.is_degraded() {
                RunStatus::Degraded
            } else {
                RunStatus::Clean
            };
            let candidate_config = CandidateConfig {
                threads: resolve_threads(threads),
                ..CandidateConfig::default()
            };
            let cands = if direct_resolve {
                discover_candidates_direct(&table, &kb, &candidate_config)
            } else {
                discover_candidates(&table, &kb, &candidate_config)
            };
            let patterns = discover_topk(&table, &kb, &cands, k, &DiscoveryConfig::default());
            if patterns.is_empty() {
                println!("no table pattern found — the KB does not cover this table");
                return Ok(status);
            }
            for (i, p) in patterns.iter().enumerate() {
                println!(
                    "#{} (score {:.3}): {}",
                    i + 1,
                    p.score(),
                    p.describe(&kb, table.columns())
                );
            }
            Ok(status)
        }
        Command::Clean {
            table,
            kb,
            crowd,
            k,
            out,
            enriched_kb,
            max_questions,
            ingest,
            threads,
            direct_resolve,
            metrics,
            trace,
            delta,
            crowd_agg,
        } => {
            let (mut kb, kb_report) = load_kb(&kb, ingest)?;
            let (mut table, table_report) = load_table(&table, ingest)?;
            print_kb_ingest(&kb_report);
            print_table_ingest(&table_report);
            let ingest_summary = IngestSummary {
                kb: Some(kb_report),
                table: Some(table_report),
            };
            let budget = match max_questions {
                Some(n) => Budget::questions(n),
                None => Budget::unlimited(),
            };
            let mut platform = Crowd::new(
                CrowdConfig {
                    // The CLI oracle is deterministic; replication is
                    // pointless noise here.
                    replication: 1,
                    worker_accuracy: 1.0,
                    budget,
                    aggregation: crowd_agg,
                    ..CrowdConfig::default()
                },
                CliOracle::new(crowd),
            )?;
            let pool = resolve_threads(threads);
            // Instrumentation is opt-in: without `--metrics`/`--trace`
            // the pipeline keeps its default no-op recorder.
            let run_recorder = if metrics.is_some() || trace {
                Some(Arc::new(RunRecorder::new()))
            } else {
                None
            };
            let obs_recorder: Arc<dyn Recorder> = match &run_recorder {
                Some(r) => Arc::clone(r) as Arc<dyn Recorder>,
                None => Arc::new(NoopRecorder),
            };
            let config = KataraConfig {
                repairs_k: k,
                // The CLI oracle is deterministic (or a human): one
                // question per variable is exact; repetition would just
                // re-ask the same thing.
                validation: ValidationConfig {
                    questions_per_variable: 1,
                    ..ValidationConfig::default()
                },
                candidates: CandidateConfig {
                    threads: pool,
                    ..CandidateConfig::default()
                },
                threads: pool,
                resolve: if direct_resolve {
                    ResolveMode::Direct
                } else {
                    ResolveMode::Snapshot
                },
                recorder: obs_recorder,
                ..KataraConfig::default()
            };
            let katara = Katara::new(config);
            let mut report = match &delta {
                None => katara.clean(&table, &mut kb, &mut platform)?,
                Some(path) => {
                    let text = std::fs::read_to_string(path)?;
                    let edits = TableDelta::parse_csv(&text, table.num_columns())
                        .map_err(|e| CliError::Usage(format!("--delta {path}: {e}")))?;
                    let base_rows = table.num_rows();
                    // Full clean of the base table warms the session;
                    // the edits then re-clean incrementally.
                    let (mut session, _bootstrap) =
                        katara.delta_session(&table, &mut kb, &mut platform)?;
                    let report = session.clean_delta(&mut kb, &mut platform, &edits)?;
                    println!(
                        "delta: {} edit(s) applied, {} -> {} row(s)",
                        edits.len(),
                        base_rows,
                        session.table().num_rows()
                    );
                    table = session.table().clone();
                    report
                }
            };
            ingest_summary.apply_to(&mut report.degradation);
            if let Some(rec) = &run_recorder {
                ingest_summary.record(rec.as_ref());
                let mut m = rec.snapshot();
                m.threads = pool.get();
                if trace {
                    eprint!("{}", m.render_trace());
                }
                if let Some(path) = &metrics {
                    std::fs::write(path, m.to_json())?;
                    println!("run metrics written to {path}");
                }
            }

            println!(
                "validated pattern: {}",
                report.pattern.describe(&kb, table.columns())
            );
            let a = &report.annotation;
            use katara_core::annotation::TupleStatus;
            println!(
                "tuples: {} validated by KB, {} by KB+crowd, {} erroneous, {} unresolved",
                a.status_count(TupleStatus::ValidatedByKb),
                a.status_count(TupleStatus::ValidatedWithCrowd),
                a.status_count(TupleStatus::Erroneous),
                a.status_count(TupleStatus::Unresolved),
            );
            if !a.feedback_stripped.is_empty() {
                println!(
                    "pattern feedback stripped: {}",
                    a.feedback_stripped.join("; ")
                );
            }
            println!(
                "KB enrichment: {} facts, {} entities | crowd questions: {}",
                a.enriched_facts,
                a.enriched_entities,
                platform.stats().questions()
            );
            for (row, repairs) in &report.repairs {
                println!("row {row}:");
                for (i, r) in repairs.iter().enumerate() {
                    println!("  repair #{} (cost {}): {:?}", i + 1, r.cost, r.changes);
                }
                if let Some(best) = repairs.first() {
                    katara_core::repair::apply_repair(&mut table, *row, best);
                }
            }
            if let Some(path) = out {
                std::fs::write(&path, csv::to_string(&table))?;
                println!("repaired table written to {path}");
            }
            if let Some(path) = enriched_kb {
                std::fs::write(&path, ntriples::to_string(&kb))?;
                println!("enriched KB written to {path}");
            }
            let d = &report.degradation;
            if d.is_degraded() {
                println!("degraded run:");
                if d.ingest_quarantined > 0 {
                    println!(
                        "  {} input line(s)/record(s) quarantined during ingestion",
                        d.ingest_quarantined
                    );
                }
                if d.ingest_repaired_edges > 0 {
                    println!(
                        "  {} KB hierarchy edge(s) dropped to break cycles",
                        d.ingest_repaired_edges
                    );
                }
                if d.budget_exhausted {
                    println!("  crowd budget exhausted");
                }
                if d.pattern_partially_validated {
                    println!("  pattern only partially validated");
                }
                if d.no_quorum_variables > 0 {
                    println!("  {} variable(s) without quorum", d.no_quorum_variables);
                }
                if d.unresolved_tuples > 0 {
                    println!(
                        "  {} tuple(s) unresolved (no repairs proposed for them)",
                        d.unresolved_tuples
                    );
                }
                if d.questions_retried > 0 {
                    println!(
                        "  {} question(s) retried at escalated replication",
                        d.questions_retried
                    );
                }
                Ok(RunStatus::Degraded)
            } else {
                Ok(RunStatus::Clean)
            }
        }
        Command::Recover {
            journal_dir,
            verify,
            out,
        } => {
            let dir = std::path::Path::new(&journal_dir);
            let (kb, report) = if verify {
                katara_kb::journal::verify_dir(dir)?
            } else {
                katara_kb::journal::recover_dir(dir)?
            };
            println!(
                "recovered KB `{}`: {} entities, {} facts (version {})",
                kb.name(),
                kb.num_entities(),
                kb.num_facts(),
                kb.version(),
            );
            println!(
                "journal: checkpoint seq {}, {} record(s) replayed ({} op(s)), \
                 {} stale record(s) skipped, {} torn byte(s) ignored",
                report.checkpoint_seq,
                report.replayed_records,
                report.replayed_ops,
                report.skipped_stale,
                report.truncated_bytes,
            );
            if verify {
                println!("verify: recovered store round-trips byte-identically");
            }
            if let Some(path) = out {
                std::fs::write(&path, ntriples::to_string(&kb))?;
                println!("recovered KB written to {path}");
            }
            Ok(RunStatus::Clean)
        }
        Command::Serve {
            kb,
            addr,
            crowd,
            max_in_flight,
            threads,
            ingest,
            default_deadline_ms,
            k,
            journal_dir,
        } => {
            let (kb, kb_report) = load_kb(&kb, ingest)?;
            print_kb_ingest(&kb_report);
            let policy = match crowd {
                CrowdMode::Trust => ServePolicy::Trust,
                CrowdMode::Skeptic => ServePolicy::Skeptic,
                CrowdMode::Facts(facts) => ServePolicy::Facts(facts),
                // parse_args rejects this; belt and braces for library
                // callers constructing a Command by hand.
                CrowdMode::Interactive => {
                    return Err(CliError::Usage(
                        "serve cannot use the interactive crowd".into(),
                    ))
                }
            };
            let config = ServerConfig {
                addr,
                max_in_flight,
                threads: resolve_threads(threads),
                default_deadline: default_deadline_ms.map(std::time::Duration::from_millis),
                repairs_k: k,
                ..ServerConfig::default()
            };
            let server = match journal_dir {
                Some(dir) => {
                    let (server, replay) =
                        Server::bind_durable(config, kb, policy, std::path::Path::new(&dir))?;
                    println!(
                        "journal `{dir}`: {} record(s) replayed, {} torn byte(s) ignored",
                        replay.replayed_records, replay.truncated_bytes,
                    );
                    server
                }
                None => Server::bind(config, kb, policy)?,
            };
            katara_serve::trap_termination_signals();
            println!("katara-serve listening on {}", server.local_addr()?);
            {
                use std::io::Write;
                let _ = std::io::stdout().flush();
            }
            server.run()?;
            println!("katara-serve drained and exited");
            Ok(RunStatus::Clean)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_clean() {
        let args: Vec<String> = [
            "clean",
            "--table",
            "t.csv",
            "--kb",
            "k.nt",
            "--crowd",
            "trust",
            "--k",
            "5",
            "--max-questions",
            "40",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_args(&args).unwrap() {
            Command::Clean {
                table,
                kb,
                crowd,
                k,
                max_questions,
                ..
            } => {
                assert_eq!(table, "t.csv");
                assert_eq!(kb, "k.nt");
                assert_eq!(crowd, CrowdMode::Trust);
                assert_eq!(k, 5);
                assert_eq!(max_questions, Some(40));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_args_threads() {
        let args: Vec<String> = [
            "discover",
            "--table",
            "t.csv",
            "--kb",
            "k.nt",
            "--threads",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_args(&args).unwrap() {
            Command::Discover { threads, .. } => assert_eq!(threads, Some(4)),
            other => panic!("{other:?}"),
        }
        // Omitted: falls through to the auto default.
        let args: Vec<String> = ["discover", "--table", "t.csv", "--kb", "k.nt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse_args(&args).unwrap() {
            Command::Discover { threads, .. } => assert_eq!(threads, None),
            other => panic!("{other:?}"),
        }
        // Zero workers is a usage error, not a silent clamp.
        let args: Vec<String> = [
            "clean",
            "--table",
            "t.csv",
            "--kb",
            "k.nt",
            "--crowd",
            "trust",
            "--threads",
            "0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(matches!(parse_args(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_args_direct_resolve() {
        let args: Vec<String> = [
            "clean",
            "--table",
            "t.csv",
            "--kb",
            "k.nt",
            "--direct-resolve",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_args(&args).unwrap() {
            Command::Clean { direct_resolve, .. } => assert!(direct_resolve),
            other => panic!("{other:?}"),
        }
        // Defaults to the shared snapshot.
        let args: Vec<String> = ["discover", "--table", "t.csv", "--kb", "k.nt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse_args(&args).unwrap() {
            Command::Discover { direct_resolve, .. } => assert!(!direct_resolve),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_args_metrics_and_trace() {
        let args: Vec<String> = [
            "clean",
            "--table",
            "t.csv",
            "--kb",
            "k.nt",
            "--metrics",
            "m.json",
            "--trace",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_args(&args).unwrap() {
            Command::Clean { metrics, trace, .. } => {
                assert_eq!(metrics.as_deref(), Some("m.json"));
                assert!(trace);
            }
            other => panic!("{other:?}"),
        }
        // Off by default.
        let args: Vec<String> = ["clean", "--table", "t.csv", "--kb", "k.nt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse_args(&args).unwrap() {
            Command::Clean { metrics, trace, .. } => {
                assert_eq!(metrics, None);
                assert!(!trace);
            }
            other => panic!("{other:?}"),
        }
        // Only `clean` is instrumented; other subcommands reject the
        // flags instead of silently ignoring them.
        let args: Vec<String> = ["discover", "--table", "t.csv", "--kb", "k.nt", "--trace"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(parse_args(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_args_delta() {
        let args: Vec<String> = [
            "clean",
            "--table",
            "t.csv",
            "--kb",
            "k.nt",
            "--delta",
            "edits.csv",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_args(&args).unwrap() {
            Command::Clean { delta, .. } => assert_eq!(delta.as_deref(), Some("edits.csv")),
            other => panic!("{other:?}"),
        }
        // One-shot by default.
        let args: Vec<String> = ["clean", "--table", "t.csv", "--kb", "k.nt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse_args(&args).unwrap() {
            Command::Clean { delta, .. } => assert_eq!(delta, None),
            other => panic!("{other:?}"),
        }
        // Only `clean` takes edits.
        let args: Vec<String> = [
            "discover",
            "--table",
            "t.csv",
            "--kb",
            "k.nt",
            "--delta",
            "edits.csv",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(matches!(parse_args(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_args_crowd_agg() {
        let args: Vec<String> = [
            "clean",
            "--table",
            "t.csv",
            "--kb",
            "k.nt",
            "--crowd-agg",
            "dawid-skene",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_args(&args).unwrap() {
            Command::Clean { crowd_agg, .. } => {
                assert_eq!(crowd_agg, AggregationMode::DawidSkene)
            }
            other => panic!("{other:?}"),
        }
        // Plurality by default.
        let args: Vec<String> = ["clean", "--table", "t.csv", "--kb", "k.nt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse_args(&args).unwrap() {
            Command::Clean { crowd_agg, .. } => {
                assert_eq!(crowd_agg, AggregationMode::Plurality)
            }
            other => panic!("{other:?}"),
        }
        // Unknown modes are usage errors.
        let args: Vec<String> = [
            "clean",
            "--table",
            "t.csv",
            "--kb",
            "k.nt",
            "--crowd-agg",
            "median",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(matches!(parse_args(&args), Err(CliError::Usage(_))));
        // Only `clean` aggregates crowd answers.
        let args: Vec<String> = [
            "discover",
            "--table",
            "t.csv",
            "--kb",
            "k.nt",
            "--crowd-agg",
            "plurality",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(matches!(parse_args(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_args_serve() {
        let args: Vec<String> = [
            "serve",
            "--kb",
            "k.nt",
            "--addr",
            "127.0.0.1:9000",
            "--max-in-flight",
            "2",
            "--default-deadline-ms",
            "750",
            "--crowd",
            "trust",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_args(&args).unwrap() {
            Command::Serve {
                kb,
                addr,
                crowd,
                max_in_flight,
                default_deadline_ms,
                ..
            } => {
                assert_eq!(kb, "k.nt");
                assert_eq!(addr, "127.0.0.1:9000");
                assert_eq!(crowd, CrowdMode::Trust);
                assert_eq!(max_in_flight, 2);
                assert_eq!(default_deadline_ms, Some(750));
            }
            other => panic!("{other:?}"),
        }
        // A daemon cannot ask questions on stdin.
        let args: Vec<String> = ["serve", "--kb", "k.nt", "--crowd", "interactive"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(parse_args(&args), Err(CliError::Usage(_))));
        // The KB is still mandatory.
        let args: Vec<String> = ["serve"].iter().map(|s| s.to_string()).collect();
        assert!(matches!(parse_args(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_args_serve_journal_dir() {
        let args: Vec<String> = ["serve", "--kb", "k.nt", "--journal-dir", "wal/"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse_args(&args).unwrap() {
            Command::Serve { journal_dir, .. } => {
                assert_eq!(journal_dir.as_deref(), Some("wal/"));
            }
            other => panic!("{other:?}"),
        }
        // Non-durable by default.
        let args: Vec<String> = ["serve", "--kb", "k.nt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match parse_args(&args).unwrap() {
            Command::Serve { journal_dir, .. } => assert_eq!(journal_dir, None),
            other => panic!("{other:?}"),
        }
        // `--verify` belongs to `recover` alone.
        let args: Vec<String> = ["serve", "--kb", "k.nt", "--verify"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(parse_args(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_args_recover() {
        let args: Vec<String> = [
            "recover",
            "--journal-dir",
            "wal/",
            "--verify",
            "--out",
            "recovered.nt",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        match parse_args(&args).unwrap() {
            Command::Recover {
                journal_dir,
                verify,
                out,
            } => {
                assert_eq!(journal_dir, "wal/");
                assert!(verify);
                assert_eq!(out.as_deref(), Some("recovered.nt"));
            }
            other => panic!("{other:?}"),
        }
        // The journal dir is mandatory.
        let args: Vec<String> = ["recover"].iter().map(|s| s.to_string()).collect();
        assert!(matches!(parse_args(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_args_rejects_unknown() {
        let args: Vec<String> = ["clean", "--bogus"].iter().map(|s| s.to_string()).collect();
        assert!(matches!(parse_args(&args), Err(CliError::Usage(_))));
        let args: Vec<String> = ["clean"].iter().map(|s| s.to_string()).collect();
        assert!(matches!(parse_args(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn facts_file_oracle() {
        let facts = parse_facts("S. Africa\thasCapital\tPretoria\n# junk\nshort\tline\n");
        let oracle = CliOracle::new(CrowdMode::Facts(facts));
        let yes = Question::Fact {
            subject: "s. africa".into(),
            property: "hasCapital".into(),
            object: "PRETORIA".into(),
        };
        assert_eq!(oracle.answer(&yes), Answer::Bool(true));
        let no = Question::Fact {
            subject: "Italy".into(),
            property: "hasCapital".into(),
            object: "Madrid".into(),
        };
        assert_eq!(oracle.answer(&no), Answer::Bool(false));
    }

    #[test]
    fn trust_and_skeptic_modes() {
        let q = Question::Fact {
            subject: "a".into(),
            property: "p".into(),
            object: "b".into(),
        };
        assert_eq!(
            CliOracle::new(CrowdMode::Trust).answer(&q),
            Answer::Bool(true)
        );
        assert_eq!(
            CliOracle::new(CrowdMode::Skeptic).answer(&q),
            Answer::Bool(false)
        );
        // Choice questions accept discovery's ranking.
        let cq = Question::ColumnType {
            table: "t".into(),
            column: 0,
            header: vec![],
            sample_rows: vec![],
            candidates: vec!["a".into(), "b".into()],
        };
        assert_eq!(
            CliOracle::new(CrowdMode::Skeptic).answer(&cq),
            Answer::Choice(0)
        );
    }
}
