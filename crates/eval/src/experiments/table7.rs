//! **Table 7** — repair precision/recall on WikiTables and WebTables
//! (k=3). EQ and SCARE are not applicable: "there is almost no redundancy
//! in them".

use katara_datagen::KbFlavor;

use crate::corpus::Corpus;
use crate::experiments::{flavors, ground_truth_for, katara_repair_run};
use crate::metrics::{repair_precision_recall, PatternScore};
use crate::report::{fmt2, MdTable};

/// One (corpus family, flavor) score.
#[derive(Debug, Clone)]
pub struct Row {
    /// Family name.
    pub dataset: &'static str,
    /// KB flavor.
    pub flavor: KbFlavor,
    /// Aggregated repair score (over all the family's tables).
    pub score: PatternScore,
}

/// The structured result.
#[derive(Debug, Clone, Default)]
pub struct Table7 {
    /// All rows.
    pub rows: Vec<Row>,
}

/// k used for KATARA's possible repairs.
pub const K: usize = 3;

/// Run the experiment (10% errors on pattern-covered columns of every
/// Wiki/Web table; scores aggregated per family).
pub fn run(corpus: &Corpus) -> Table7 {
    let mut out = Table7::default();
    for flavor in flavors() {
        for (name, tables) in [
            ("WikiTables", corpus.wiki.iter().collect::<Vec<_>>()),
            ("WebTables", corpus.web.iter().collect::<Vec<_>>()),
        ] {
            // Pool logs and proposals across the family's tables by
            // offsetting row indexes, then score the pool once.
            let mut pooled_log = katara_table::CorruptionLog::default();
            let mut pooled_proposals = Vec::new();
            let mut offset = 0usize;
            for (ti, g) in tables.iter().enumerate() {
                let (gt_types, _) = ground_truth_for(g, flavor);
                let cols: Vec<usize> = gt_types
                    .iter()
                    .enumerate()
                    .filter_map(|(c, t)| t.map(|_| c))
                    .collect();
                if cols.is_empty() {
                    continue;
                }
                let Some(run) = katara_repair_run(corpus, g, flavor, &cols, K, 0x7AB7 ^ ti as u64)
                else {
                    continue;
                };
                for mut ch in run.log.changes {
                    ch.cell.row += offset;
                    pooled_log.changes.push(ch);
                }
                if run.applicable {
                    for (row, reps) in run.proposals {
                        pooled_proposals.push((row + offset, reps));
                    }
                }
                offset += g.table.num_rows();
            }
            out.rows.push(Row {
                dataset: name,
                flavor,
                score: repair_precision_recall(&pooled_log, &pooled_proposals),
            });
        }
    }
    out
}

impl Table7 {
    /// Lookup one row.
    pub fn row(&self, dataset: &str, flavor: KbFlavor) -> Option<&Row> {
        self.rows
            .iter()
            .find(|r| r.dataset == dataset && r.flavor == flavor)
    }

    /// Render the Markdown section.
    pub fn render(&self) -> String {
        let mut t = MdTable::new(&[
            "dataset",
            "KATARA(yago) P",
            "KATARA(yago) R",
            "KATARA(dbpedia) P",
            "KATARA(dbpedia) R",
            "EQ",
            "SCARE",
        ]);
        for name in ["WikiTables", "WebTables"] {
            let y = self.row(name, KbFlavor::YagoLike);
            let d = self.row(name, KbFlavor::DbpediaLike);
            t.row(vec![
                name.to_string(),
                y.map(|r| fmt2(r.score.p)).unwrap_or_default(),
                y.map(|r| fmt2(r.score.r)).unwrap_or_default(),
                d.map(|r| fmt2(r.score.p)).unwrap_or_default(),
                d.map(|r| fmt2(r.score.r)).unwrap_or_default(),
                "N.A.".to_string(),
                "N.A.".to_string(),
            ]);
        }
        format!(
            "## Table 7 — data repairing on WikiTables and WebTables (k = {K})\n\n{}\n\
             Paper shape: KATARA precision high; recall bounded by KB \
             coverage; the automatic methods cannot run at all without \
             redundancy.\n",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn precision_is_high_where_applicable() {
        let corpus = Corpus::build(&CorpusConfig::small());
        let t7 = run(&corpus);
        assert_eq!(t7.rows.len(), 4);
        for r in &t7.rows {
            if r.score.r > 0.0 {
                assert!(
                    r.score.p >= 0.5,
                    "{}/{:?}: precision {:.2} too low",
                    r.dataset,
                    r.flavor,
                    r.score.p
                );
            }
        }
        let md = t7.render();
        assert!(md.contains("N.A."));
    }
}
