//! **Figure 8** — F-measure of the top-k possible repairs on
//! RelationalTables while varying k, for both KBs. The paper: F
//! stabilizes by k=1 on Yago and k=3 on DBpedia — correct repairs land
//! near the top of the ranking.

use katara_datagen::KbFlavor;

use crate::corpus::Corpus;
use crate::experiments::{flavors, ground_truth_for, katara_repair_run};
use crate::metrics::repair_precision_recall;
use crate::report::{fmt2, MdTable};

/// The k values swept.
pub const KS: [usize; 5] = [1, 2, 3, 4, 5];

/// One series: a table under one flavor; `None` entries mean N.A.
#[derive(Debug, Clone)]
pub struct Series {
    /// Table name.
    pub table: &'static str,
    /// KB flavor.
    pub flavor: KbFlavor,
    /// F at each k (or `None` when KATARA is not applicable).
    pub f: Vec<Option<f64>>,
}

/// The structured result.
#[derive(Debug, Clone, Default)]
pub struct Fig8 {
    /// All series.
    pub series: Vec<Series>,
}

/// Run the experiment (10% errors on pattern-covered columns).
pub fn run(corpus: &Corpus) -> Fig8 {
    let max_k = *KS.iter().max().expect("non-empty");
    let mut out = Fig8::default();
    for flavor in flavors() {
        for (name, g) in corpus.relational() {
            // Errors go into the pattern-covered (= GT-typed) columns.
            let (gt_types, _) = ground_truth_for(g, flavor);
            let cols: Vec<usize> = gt_types
                .iter()
                .enumerate()
                .filter_map(|(c, t)| t.map(|_| c))
                .collect();
            let run = katara_repair_run(corpus, g, flavor, &cols, max_k, 0xF168 ^ flavor as u64);
            let f: Vec<Option<f64>> = match run {
                Some(r) if r.applicable => KS
                    .iter()
                    .map(|&k| {
                        let truncated: Vec<_> = r
                            .proposals
                            .iter()
                            .map(|(row, reps)| (*row, reps.iter().take(k).cloned().collect()))
                            .collect();
                        Some(repair_precision_recall(&r.log, &truncated).f_measure())
                    })
                    .collect(),
                _ => vec![None; KS.len()],
            };
            out.series.push(Series {
                table: name,
                flavor,
                f,
            });
        }
    }
    out
}

impl Fig8 {
    /// The F of one table at one k.
    pub fn f_at(&self, table: &str, flavor: KbFlavor, k: usize) -> Option<f64> {
        let ki = KS.iter().position(|&x| x == k)?;
        self.series
            .iter()
            .find(|s| s.table == table && s.flavor == flavor)
            .and_then(|s| s.f[ki])
    }

    /// Render the Markdown section.
    pub fn render(&self) -> String {
        let mut out = String::from("## Figure 8 — top-k repair F-measure (RelationalTables)\n\n");
        for flavor in flavors() {
            let mut t = MdTable::new(&["k", "Person", "Soccer", "University"]);
            for (ki, k) in KS.iter().enumerate() {
                let cell = |name: &str| {
                    self.series
                        .iter()
                        .find(|s| s.table == name && s.flavor == flavor)
                        .and_then(|s| s.f[ki])
                        .map(fmt2)
                        .unwrap_or_else(|| "N.A.".to_string())
                };
                t.row(vec![
                    k.to_string(),
                    cell("Person"),
                    cell("Soccer"),
                    cell("University"),
                ]);
            }
            out.push_str(&format!("### {}\n\n{}\n", flavor.name(), t.render()));
        }
        out.push_str(
            "Paper shape: F stabilizes at small k (correct repairs rank \
             near the top); Soccer is N.A. under the Yago-like KB (its \
             validated pattern has no relationships).\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn soccer_is_na_under_yago_and_f_monotone() {
        let corpus = Corpus::build(&CorpusConfig::small());
        let f8 = run(&corpus);
        assert!(
            f8.f_at("Soccer", KbFlavor::YagoLike, 1).is_none(),
            "Soccer/Yago must be N.A."
        );
        assert!(f8.f_at("Person", KbFlavor::DbpediaLike, 3).is_some());
        // Recall is monotone in k; F may dip slightly if precision falls,
        // but must not collapse.
        for s in &f8.series {
            let vals: Vec<f64> = s.f.iter().filter_map(|x| *x).collect();
            if let (Some(first), Some(last)) = (vals.first(), vals.last()) {
                assert!(last >= &(first - 0.3), "{s:?}");
            }
        }
        assert!(f8.render().contains("N.A."));
    }
}
