//! The PGM baseline (§7.1) — a probabilistic graphical model over column
//! types, cell entities and relationships, after Limaye et al.
//! (PVLDB 2010).
//!
//! The factor graph has one *type* variable per column (domain: the
//! candidate types), one *relationship* variable per column pair (domain:
//! the candidate relationships) and one *entity* variable per cell
//! (domain: the cell's candidate KB resources). Factors reward entity/
//! type agreement and entity-pair/relationship agreement; inference is
//! loopy sum-product belief propagation. This reproduces both of the
//! paper's findings: effectiveness is *mixed* (cell-level evidence can
//! help or mislead — and there is no type↔relationship coherence prior),
//! and cost is *dominated by message passing* (Table 3's blow-up: "PGM
//! takes hours on tables with around 1K tuples").

use std::collections::HashMap;

use katara_core::candidates::CandidateSet;
use katara_core::pattern::TablePattern;
use katara_core::rank_join::{discover_topk, DiscoveryConfig};
use katara_core::scoring::ScoringConfig;
use katara_kb::{Kb, ResourceId};
use katara_table::Table;

/// PGM knobs.
#[derive(Debug, Clone)]
pub struct PgmConfig {
    /// Rows included in the factor graph (cell variables per row make
    /// the graph — and the inference — grow linearly).
    pub max_rows: usize,
    /// Loopy BP sweeps.
    pub iterations: usize,
    /// Candidate resources kept per cell variable.
    pub max_entities_per_cell: usize,
    /// Log-potential for an entity agreeing with a type.
    pub type_agreement: f64,
    /// Log-potential for an entity pair agreeing with a relationship.
    pub rel_agreement: f64,
    /// Weight of the type-rarity feature in the unary prior. The
    /// published model is supervised; this weight stands in for weights
    /// trained on another corpus, and its coarseness is what makes PGM's
    /// effectiveness "mixed" here.
    pub rarity_weight: f64,
}

impl Default for PgmConfig {
    fn default() -> Self {
        PgmConfig {
            max_rows: 200,
            iterations: 10,
            max_entities_per_cell: 4,
            type_agreement: 2.0,
            rel_agreement: 2.0,
            rarity_weight: 2.5,
        }
    }
}

/// A variable in the factor graph.
#[derive(Debug)]
struct Var {
    domain: usize,
    /// Unary prior (unnormalized).
    prior: Vec<f64>,
    /// Incident factor indexes (with the slot this var occupies).
    factors: Vec<(usize, usize)>,
}

/// A factor over 2 or 3 variables with an explicit potential table
/// (row-major over the variables' domains in order).
#[derive(Debug)]
struct Factor {
    vars: Vec<usize>,
    table: Vec<f64>,
}

/// Top-k patterns via loopy-BP marginals.
pub fn pgm_topk(
    table: &Table,
    kb: &Kb,
    cands: &CandidateSet,
    k: usize,
    config: &PgmConfig,
) -> Vec<TablePattern> {
    let rows = table.num_rows().min(config.max_rows);
    let ncols = table.num_columns();

    // --- Variables --------------------------------------------------------
    let mut vars: Vec<Var> = Vec::new();
    let mut type_var: Vec<Option<usize>> = vec![None; ncols];
    // Unary priors use *support fractions* (label-match coverage), not
    // KATARA's tf-idf — the tf-idf/coherence ranking is KATARA's own
    // contribution, and the published PGM's features amount to coverage
    // statistics. This is precisely what makes its effectiveness
    // "mixed": with the hierarchy, a leaf and its supertypes tie on
    // coverage, and only the entity-level factors break the tie.
    let rows_f = rows.max(1) as f64;
    for (c, list) in cands.col_types.iter().enumerate() {
        if list.is_empty() {
            continue;
        }
        type_var[c] = Some(vars.len());
        vars.push(Var {
            domain: list.len(),
            prior: list
                .iter()
                .map(|t| {
                    let coverage = t.support as f64 / rows_f;
                    let rarity = 1.0 / (1.0 + (kb.class_size(t.class).max(1) as f64).ln());
                    (coverage + config.rarity_weight * rarity).exp()
                })
                .collect(),
            factors: Vec::new(),
        });
    }
    let pairs = cands.pairs();
    let mut rel_var: HashMap<(usize, usize), usize> = HashMap::new();
    for &(i, j) in &pairs {
        let list = cands.rels(i, j);
        rel_var.insert((i, j), vars.len());
        vars.push(Var {
            domain: list.len(),
            prior: list
                .iter()
                .map(|r| (r.support as f64 / rows_f).exp())
                .collect(),
            factors: Vec::new(),
        });
    }
    // Cell entity variables (only for typed columns, non-null cells with
    // at least one candidate resource).
    let mut cell_var: HashMap<(usize, usize), usize> = HashMap::new();
    let mut cell_domain: HashMap<(usize, usize), Vec<ResourceId>> = HashMap::new();
    for r in 0..rows {
        for (c, tv) in type_var.iter().enumerate() {
            if tv.is_none() {
                continue;
            }
            let Some(cell) = table.cell(r, c).as_str() else {
                continue;
            };
            let mut dom: Vec<ResourceId> = kb
                .candidate_resources(cell)
                .into_iter()
                .map(|(res, _)| res)
                .collect();
            dom.truncate(config.max_entities_per_cell);
            if dom.is_empty() {
                continue;
            }
            cell_var.insert((r, c), vars.len());
            vars.push(Var {
                domain: dom.len(),
                prior: vec![1.0; dom.len()],
                factors: Vec::new(),
            });
            cell_domain.insert((r, c), dom);
        }
    }

    // --- Factors ---------------------------------------------------------
    let mut factors: Vec<Factor> = Vec::new();
    let a_type = config.type_agreement.exp();
    let a_rel = config.rel_agreement.exp();
    // Entity/type agreement (iterated in deterministic row/column order —
    // float summation order must not depend on hash iteration).
    for r in 0..rows {
        for c in 0..ncols {
            let Some(&ev) = cell_var.get(&(r, c)) else {
                continue;
            };
            let tv = type_var[c].expect("cell vars only on typed columns");
            let types = &cands.col_types[c];
            let dom = &cell_domain[&(r, c)];
            let mut tab = Vec::with_capacity(types.len() * dom.len());
            for t in types {
                for &e in dom {
                    tab.push(if kb.has_type(e, t.class) { a_type } else { 1.0 });
                }
            }
            push_factor(&mut vars, &mut factors, vec![tv, ev], tab);
        }
    }
    // Entity-pair/relationship agreement.
    for &(i, j) in &pairs {
        let rv = rel_var[&(i, j)];
        let rels = cands.rels(i, j);
        for r in 0..rows {
            let (Some(&ei), Some(&ej)) = (cell_var.get(&(r, i)), cell_var.get(&(r, j))) else {
                continue;
            };
            let di = &cell_domain[&(r, i)];
            let dj = &cell_domain[&(r, j)];
            let mut tab = Vec::with_capacity(rels.len() * di.len() * dj.len());
            for rel in rels {
                for &a in di {
                    for &b in dj {
                        tab.push(if kb.holds(a, rel.property, b) {
                            a_rel
                        } else {
                            1.0
                        });
                    }
                }
            }
            push_factor(&mut vars, &mut factors, vec![rv, ei, ej], tab);
        }
    }

    // --- Loopy sum-product BP ---------------------------------------------
    let beliefs = run_bp(&vars, &factors, config.iterations);

    // --- Read off marginals and build top-k patterns -----------------------
    let mut rescored = cands.clone();
    for (c, list) in rescored.col_types.iter_mut().enumerate() {
        if let Some(tv) = type_var[c] {
            for (idx, cand) in list.iter_mut().enumerate() {
                cand.tfidf = beliefs[tv][idx];
            }
            list.sort_by(|a, b| {
                b.tfidf
                    .total_cmp(&a.tfidf)
                    .then_with(|| a.class.cmp(&b.class))
            });
        }
    }
    for &(i, j) in &pairs {
        let rv = rel_var[&(i, j)];
        let list = rescored.pair_rels.get_mut(&(i, j)).expect("exists");
        for (idx, cand) in list.iter_mut().enumerate() {
            cand.tfidf = beliefs[rv][idx];
        }
        list.sort_by(|a, b| {
            b.tfidf
                .total_cmp(&a.tfidf)
                .then_with(|| a.property.cmp(&b.property))
        });
    }
    let dcfg = DiscoveryConfig {
        scoring: ScoringConfig {
            coherence_weight: 0.0,
        },
        max_states: 0,
        ..DiscoveryConfig::default()
    };
    discover_topk(table, kb, &rescored, k, &dcfg)
}

fn push_factor(vars: &mut [Var], factors: &mut Vec<Factor>, fvars: Vec<usize>, table: Vec<f64>) {
    debug_assert_eq!(
        table.len(),
        fvars.iter().map(|&v| vars[v].domain).product::<usize>()
    );
    let fi = factors.len();
    for (slot, &v) in fvars.iter().enumerate() {
        vars[v].factors.push((fi, slot));
    }
    factors.push(Factor { vars: fvars, table });
}

/// Sum-product loopy BP; returns normalized beliefs per variable.
fn run_bp(vars: &[Var], factors: &[Factor], iterations: usize) -> Vec<Vec<f64>> {
    // Messages factor→var and var→factor, indexed by (factor, slot).
    let mut f2v: Vec<Vec<Vec<f64>>> = factors
        .iter()
        .map(|f| f.vars.iter().map(|&v| vec![1.0; vars[v].domain]).collect())
        .collect();
    let mut v2f: Vec<Vec<Vec<f64>>> = f2v.clone();

    for _ in 0..iterations {
        // var → factor: prior × product of other incoming messages.
        for (fi, f) in factors.iter().enumerate() {
            for (slot, &v) in f.vars.iter().enumerate() {
                let var = &vars[v];
                let mut msg = var.prior.clone();
                for &(ofi, oslot) in &var.factors {
                    if ofi == fi && oslot == slot {
                        continue;
                    }
                    for (m, x) in msg.iter_mut().zip(&f2v[ofi][oslot]) {
                        *m *= x;
                    }
                }
                normalize(&mut msg);
                v2f[fi][slot] = msg;
            }
        }
        // factor → var: marginalize the potential against the other
        // variables' messages.
        for (fi, f) in factors.iter().enumerate() {
            let dims: Vec<usize> = f.vars.iter().map(|&v| vars[v].domain).collect();
            for slot in 0..f.vars.len() {
                let mut msg = vec![0.0; dims[slot]];
                // Iterate the full joint table.
                let mut idx = vec![0usize; dims.len()];
                for (flat, &pot) in f.table.iter().enumerate() {
                    // Decode flat index (row-major).
                    let mut rem = flat;
                    for d in (0..dims.len()).rev() {
                        idx[d] = rem % dims[d];
                        rem /= dims[d];
                    }
                    let mut w = pot;
                    for (oslot, &oi) in idx.iter().enumerate() {
                        if oslot != slot {
                            w *= v2f[fi][oslot][oi];
                        }
                    }
                    msg[idx[slot]] += w;
                }
                normalize(&mut msg);
                f2v[fi][slot] = msg;
            }
        }
    }

    // Beliefs.
    let mut beliefs: Vec<Vec<f64>> = vars.iter().map(|v| v.prior.clone()).collect();
    for (fi, f) in factors.iter().enumerate() {
        for (slot, &v) in f.vars.iter().enumerate() {
            for (b, m) in beliefs[v].iter_mut().zip(&f2v[fi][slot]) {
                *b *= m;
            }
        }
    }
    for b in &mut beliefs {
        normalize(b);
    }
    beliefs
}

fn normalize(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    if s > 0.0 && s.is_finite() {
        for x in v.iter_mut() {
            *x /= s;
        }
    } else {
        let u = 1.0 / v.len() as f64;
        for x in v.iter_mut() {
            *x = u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use katara_core::candidates::{discover_candidates, CandidateConfig};
    use katara_kb::KbBuilder;

    fn setting() -> (Kb, Table) {
        let mut b = KbBuilder::new();
        let economy = b.class("economy");
        let country = b.class("country");
        let capital = b.class("capital");
        let city = b.class("city");
        b.subclass(country, economy).unwrap();
        b.subclass(capital, city).unwrap();
        let has_capital = b.property("hasCapital");
        for (c, cap) in [("Italy", "Rome"), ("Spain", "Madrid"), ("France", "Paris")] {
            let rc = b.entity(c, &[country]);
            let rcap = b.entity(cap, &[capital]);
            b.fact(rc, has_capital, rcap);
        }
        for i in 0..15 {
            b.entity(&format!("Corp{i}"), &[economy]);
            b.entity(&format!("Town{i}"), &[city]);
        }
        let kb = b.finalize();
        let mut t = Table::with_opaque_columns("t", 2);
        t.push_text_row(&["Italy", "Rome"]);
        t.push_text_row(&["Spain", "Madrid"]);
        t.push_text_row(&["France", "Paris"]);
        (kb, t)
    }

    #[test]
    fn pgm_finds_a_reasonable_pattern() {
        let (kb, t) = setting();
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        let top = pgm_topk(&t, &kb, &cands, 1, &PgmConfig::default());
        assert_eq!(top.len(), 1);
        let p = &top[0];
        // Coverage priors tie `country` with its supertype `economy`
        // (every country cell is both) — the published model's "mixed"
        // behaviour; either is acceptable here, but never the unrelated
        // `capital`/`city`.
        let picked = p.node_for_column(0).unwrap().class;
        assert!(
            picked == kb.class_by_name("country") || picked == kb.class_by_name("economy"),
            "picked {picked:?}"
        );
        // The relationship, however, is pinned by the entity factors.
        assert_eq!(
            p.edges()[0].property,
            kb.property_by_name("hasCapital").unwrap()
        );
    }

    #[test]
    fn pgm_marginals_are_probabilities() {
        let (kb, t) = setting();
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        // Smoke the BP engine directly through the public API with k big
        // enough to expose the ranking.
        let top = pgm_topk(&t, &kb, &cands, 4, &PgmConfig::default());
        for w in top.windows(2) {
            assert!(w[0].score() >= w[1].score());
        }
    }

    #[test]
    fn pgm_handles_empty_candidates() {
        let (kb, _) = setting();
        let mut t = Table::with_opaque_columns("t", 1);
        t.push_text_row(&["Unknown"]);
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        assert!(pgm_topk(&t, &kb, &cands, 3, &PgmConfig::default()).is_empty());
    }

    #[test]
    fn pgm_is_deterministic() {
        let (kb, t) = setting();
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        let a = pgm_topk(&t, &kb, &cands, 2, &PgmConfig::default());
        let b = pgm_topk(&t, &kb, &cands, 2, &PgmConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.nodes(), y.nodes());
            assert_eq!(x.edges(), y.edges());
        }
    }
}
