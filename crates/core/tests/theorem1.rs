//! A numeric property-check of the paper's **Theorem 1**: the expected
//! reduction in pattern uncertainty from validating a variable `v`
//! equals the entropy of `v` itself,
//!
//! ```text
//! E(ΔH(φ))(v) = Σ_a Pr(v=a)·H_{P|v=a}(φ) − H_P(φ)  … = −H(v)   (reduction)
//! ```
//!
//! (Appendix A proves it symbolically; here we verify it numerically on
//! random pattern distributions, which also pins down the sign/direction
//! conventions the scheduler relies on.)

use proptest::prelude::*;

/// H(X) = −Σ p log2 p over a normalized distribution.
fn entropy(probs: &[f64]) -> f64 {
    -probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.log2())
        .sum::<f64>()
}

/// The scheduler's quantity: entropy of variable `v` whose value for
/// pattern `i` is `values[i]`.
fn variable_entropy(probs: &[f64], values: &[u8]) -> f64 {
    let mut mass = std::collections::HashMap::new();
    for (&p, &v) in probs.iter().zip(values) {
        *mass.entry(v).or_insert(0.0) += p;
    }
    let m: Vec<f64> = mass.values().copied().collect();
    entropy(&m)
}

/// Direct computation of the *expected posterior uncertainty*
/// `Σ_a Pr(v=a) · H(φ | v=a)`.
fn expected_posterior_entropy(probs: &[f64], values: &[u8]) -> f64 {
    let mut by_value: std::collections::HashMap<u8, Vec<f64>> = std::collections::HashMap::new();
    for (&p, &v) in probs.iter().zip(values) {
        by_value.entry(v).or_default().push(p);
    }
    by_value
        .values()
        .map(|group| {
            let pr_a: f64 = group.iter().sum();
            if pr_a <= 0.0 {
                return 0.0;
            }
            let conditional: Vec<f64> = group.iter().map(|p| p / pr_a).collect();
            pr_a * entropy(&conditional)
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn theorem1_holds_numerically(
        raw in prop::collection::vec(0.01f64..1.0, 2..10),
        values in prop::collection::vec(0u8..4, 10),
    ) {
        let n = raw.len();
        let total: f64 = raw.iter().sum();
        let probs: Vec<f64> = raw.iter().map(|p| p / total).collect();
        let values = &values[..n];

        let h_phi = entropy(&probs);
        let h_v = variable_entropy(&probs, values);
        let expected_posterior = expected_posterior_entropy(&probs, values);

        // Theorem 1: H(φ) − E[H(φ | v)] = H(v).
        let reduction = h_phi - expected_posterior;
        prop_assert!(
            (reduction - h_v).abs() < 1e-9,
            "reduction {reduction} != H(v) {h_v}"
        );
        // Corollaries the scheduler relies on: the reduction is
        // non-negative and bounded by the total uncertainty.
        prop_assert!(reduction >= -1e-12);
        prop_assert!(reduction <= h_phi + 1e-12);
    }

    #[test]
    fn constant_variables_reduce_nothing(
        raw in prop::collection::vec(0.01f64..1.0, 2..10),
    ) {
        let total: f64 = raw.iter().sum();
        let probs: Vec<f64> = raw.iter().map(|p| p / total).collect();
        let values = vec![7u8; probs.len()];
        prop_assert!(variable_entropy(&probs, &values).abs() < 1e-12);
        let reduction = entropy(&probs) - expected_posterior_entropy(&probs, &values);
        prop_assert!(reduction.abs() < 1e-9);
    }

    #[test]
    fn fully_discriminating_variables_reduce_everything(
        raw in prop::collection::vec(0.01f64..1.0, 2..4),
    ) {
        // Each pattern has a distinct value: validating v identifies the
        // pattern, so the expected posterior entropy is zero.
        let total: f64 = raw.iter().sum();
        let probs: Vec<f64> = raw.iter().map(|p| p / total).collect();
        let values: Vec<u8> = (0..probs.len() as u8).collect();
        prop_assert!(expected_posterior_entropy(&probs, &values).abs() < 1e-12);
        prop_assert!(
            (variable_entropy(&probs, &values) - entropy(&probs)).abs() < 1e-9
        );
    }
}

/// The paper's Example 8/9 numbers, end to end.
#[test]
fn example8_numbers() {
    let probs = [0.35, 0.25, 0.25, 0.10, 0.05];
    // v_B: country for φ1, φ3, φ4; economy for φ2; state for φ5.
    let v_b = [0u8, 1, 0, 0, 2];
    let v_c = [0u8, 0, 1, 0, 0]; // capital except φ3 (city)
    let v_bc = [0u8, 0, 1, 1, 0]; // hasCapital except φ3, φ4 (locatedIn)

    let hb = variable_entropy(&probs, &v_b);
    let hc = variable_entropy(&probs, &v_c);
    let hbc = variable_entropy(&probs, &v_bc);
    assert!((hb - 1.07).abs() < 0.01, "H(vB) = {hb}");
    assert!((hc - 0.81).abs() < 0.01, "H(vC) = {hc}");
    assert!((hbc - 0.93).abs() < 0.01, "H(vBC) = {hbc}");

    // Theorem 1 on each variable.
    let h = entropy(&probs);
    for values in [&v_b, &v_c, &v_bc] {
        let reduction = h - expected_posterior_entropy(&probs, values);
        let hv = variable_entropy(&probs, values);
        assert!((reduction - hv).abs() < 1e-9);
    }
}
