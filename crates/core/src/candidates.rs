//! Candidate type and relationship discovery (§4.1).
//!
//! For every column the candidate types of its cell values are retrieved
//! through `Q_types`, and for every ordered column pair the candidate
//! relationships through `Q_rels^1`/`Q_rels^2`; candidates are scored with
//! the paper's normalized tf-idf and returned as ranked lists — the inputs
//! to the rank-join (§4.3) and to the Support/MaxLike/PGM baselines.
//!
//! ### tf-idf
//!
//! Each cell is a query term; each candidate type `T` is a document whose
//! terms are `ENT(T)`:
//!
//! ```text
//! tf(T, cell)  = 1 / log(|ENT(T)|)      if cell has type T, else 0
//! idf(T, cell) = log(#types in K / #types of cell)   if cell is typed
//! tf-idf(T, A) = Σ_cells tf·idf, normalized to [0,1] by the column max
//! ```
//!
//! We use `1 / (1 + ln |ENT(T)|)` for the term frequency so singleton
//! types (|ENT| = 1, where `log` would divide by zero) stay finite while
//! preserving the paper's ranking intent (rarer types score higher).
//! Relationship scores are defined "similarly" (paper's wording) with
//! `subENT(P)` as the document.
//!
//! ### Canonical fold order
//!
//! Scores accumulate per *distinct normalized value* (weighted by its
//! occurrence count), folded in normalized-string order — not per row.
//! Floating-point addition is order-sensitive, so pinning the fold order
//! to a property of the value multiset (rather than row order) is what
//! lets the incremental engine ([`crate::delta`]) re-fold a column from
//! maintained counts and land on bit-identical scores.

use std::collections::HashMap;
use std::sync::Arc;

use katara_exec::{par_map_indexed, par_map_indexed_with, Threads};
use katara_kb::{sim, ClassId, Kb, PropertyId};
use katara_obs::{Counter, NoopRecorder, Recorder};
use katara_table::Table;

use crate::resolve::TableResolution;

/// A candidate type for a column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeCandidate {
    /// The type.
    pub class: ClassId,
    /// Normalized tf-idf score in `[0, 1]`.
    pub tfidf: f64,
    /// Number of tuples whose cell carries this type — the Support
    /// baseline ranks by this.
    pub support: usize,
}

/// A candidate relationship for an ordered column pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelCandidate {
    /// The relationship.
    pub property: PropertyId,
    /// Normalized tf-idf score in `[0, 1]`.
    pub tfidf: f64,
    /// Number of tuples exhibiting this relationship.
    pub support: usize,
    /// True if the evidence came (at least once) from a literal object
    /// (`Q_rels^2`), e.g. `hasHeight(Rossi, "1.78")`.
    pub to_literal: bool,
}

/// Configuration for candidate discovery.
#[derive(Debug, Clone)]
pub struct CandidateConfig {
    /// Scan at most this many rows (the paper distributes candidate
    /// generation for the 316K-row Person table; we sample instead —
    /// statistics converge long before that).
    pub max_rows: usize,
    /// Drop type candidates supported by fewer than this fraction of the
    /// scanned non-null cells. Filters accidental homonym noise.
    pub min_support_fraction: f64,
    /// Drop relationship candidates below this support fraction. Higher
    /// than the type threshold: a relationship holding for only a small
    /// minority of rows (players *born in* the capital column's city) is
    /// incidental co-occurrence, not the column pair's semantics.
    /// Borderline spurious edges that survive (e.g. `hasCapital` on a
    /// generic city column with many capitals) are caught later by
    /// annotation-time pattern feedback
    /// ([`crate::annotation::AnnotationConfig::feedback_threshold`]).
    pub min_rel_support_fraction: f64,
    /// Keep at most this many candidates per ranked list.
    pub max_candidates: usize,
    /// Worker threads for the per-column / per-pair KB-query loops (the
    /// paper distributes candidate generation for the 316K-row Person
    /// table, §7.1). The output is byte-identical for every thread count;
    /// with one thread the historical sequential loop runs, sharing one
    /// `Q_types`/`Q_rels` memo cache across all columns and pairs.
    pub threads: Threads,
    /// Sink for `discovery.{type,rel}_probes` counters. Probes are counted
    /// per non-null cell / cell pair — the *logical* KB query sites — so
    /// totals are identical across thread counts and across the snapshot
    /// vs direct paths, regardless of memoization.
    pub recorder: Arc<dyn Recorder>,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            max_rows: 1000,
            min_support_fraction: 0.05,
            min_rel_support_fraction: 0.3,
            max_candidates: 12,
            threads: Threads::auto(),
            recorder: Arc::new(NoopRecorder),
        }
    }
}

/// The ranked candidate lists for one table against one KB.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CandidateSet {
    /// Per column: candidate types, descending tf-idf (ties: fewer
    /// instances first, as in Algorithm 1's tie-break).
    pub col_types: Vec<Vec<TypeCandidate>>,
    /// Per ordered column pair `(i, j)`: candidate relationships,
    /// descending tf-idf.
    pub pair_rels: HashMap<(usize, usize), Vec<RelCandidate>>,
    /// Rows actually scanned (after `max_rows` capping).
    pub rows_scanned: usize,
}

impl CandidateSet {
    /// Candidate relationships for pair `(i, j)` (empty slice if none).
    pub fn rels(&self, i: usize, j: usize) -> &[RelCandidate] {
        static EMPTY: Vec<RelCandidate> = Vec::new();
        self.pair_rels.get(&(i, j)).unwrap_or(&EMPTY)
    }

    /// Column pairs that have at least one candidate relationship.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let mut p: Vec<(usize, usize)> = self.pair_rels.keys().copied().collect();
        p.sort_unstable();
        p
    }
}

/// Discover the ranked candidate lists for `table` against `kb`.
///
/// Builds a [`TableResolution`] snapshot (each distinct normalized cell
/// value resolved once, pair relations prememoized) and runs the
/// snapshot-path scan — byte-identical to the historical direct-query
/// path ([`discover_candidates_direct`]) at every thread count, because
/// both accumulate the same per-row query results in the same order.
pub fn discover_candidates(table: &Table, kb: &Kb, config: &CandidateConfig) -> CandidateSet {
    let resolution =
        TableResolution::build(table, kb, config.max_rows).with_recorder(config.recorder.clone());
    discover_candidates_resolved(table, kb, &resolution, config)
}

/// Snapshot-path discovery over a prebuilt [`TableResolution`] for the
/// same `(table, kb)` pair. Workers share the read-only snapshot instead
/// of rebuilding per-worker `Q_types`/`Q_rels` memo maps, so the plain
/// order-preserving `par_map_indexed` suffices. A stale or row-capped
/// snapshot degrades to equivalent live queries per cell (slower,
/// identical output).
pub fn discover_candidates_resolved(
    table: &Table,
    kb: &Kb,
    resolution: &TableResolution,
    config: &CandidateConfig,
) -> CandidateSet {
    let rows = table.num_rows().min(config.max_rows);
    let ncols = table.num_columns();

    // ---- Types per column ------------------------------------------------
    let col_types: Vec<Vec<TypeCandidate>> = par_map_indexed(config.threads, ncols, |c| {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        let mut non_null = 0usize;
        for r in 0..rows {
            let Some(id) = resolution.value_id(c, r) else {
                continue;
            };
            non_null += 1;
            *counts.entry(id).or_insert(0) += 1;
        }
        let acc = fold_types_from_counts(kb, resolution, &counts);
        config
            .recorder
            .incr_by(Counter::DiscoveryTypeProbes, non_null as u64);
        rank_types(kb, acc, non_null, config)
    });

    // ---- Relationships per ordered pair -----------------------------------
    let pairs: Vec<(usize, usize)> = (0..ncols)
        .flat_map(|i| (0..ncols).filter(move |&j| j != i).map(move |j| (i, j)))
        .collect();
    let ranked_pairs: Vec<Vec<RelCandidate>> = par_map_indexed(config.threads, pairs.len(), |pi| {
        let (i, j) = pairs[pi];
        let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
        let mut non_null = 0usize;
        for r in 0..rows {
            let (Some(a), Some(b)) = (resolution.value_id(i, r), resolution.value_id(j, r)) else {
                continue;
            };
            non_null += 1;
            *counts.entry((a, b)).or_insert(0) += 1;
        }
        let acc = fold_rels_from_counts(kb, resolution, &counts);
        config
            .recorder
            .incr_by(Counter::DiscoveryRelProbes, non_null as u64);
        rank_rels(kb, acc, non_null, config)
    });
    let mut pair_rels: HashMap<(usize, usize), Vec<RelCandidate>> = HashMap::new();
    for (pi, ranked) in ranked_pairs.into_iter().enumerate() {
        if !ranked.is_empty() {
            pair_rels.insert(pairs[pi], ranked);
        }
    }

    CandidateSet {
        col_types,
        pair_rels,
        rows_scanned: rows,
    }
}

/// The historical direct-query discovery path: no shared snapshot, each
/// worker memoizes `Q_types` (per distinct cell string) and `Q_rels` (per
/// distinct string pair) locally and results are merged back in
/// column/pair order. Kept as the reference implementation for the
/// snapshot equivalence suite and for cold-path benchmarking; the output
/// is byte-identical to [`discover_candidates`] for every thread count.
pub fn discover_candidates_direct(
    table: &Table,
    kb: &Kb,
    config: &CandidateConfig,
) -> CandidateSet {
    let rows = table.num_rows().min(config.max_rows);
    let ncols = table.num_columns();

    // ---- Types per column ------------------------------------------------
    // Parallel across columns; per-worker cache of Q_types per distinct
    // normalized value (the KB normalizes its query argument, and
    // `sim::normalize` is idempotent, so querying by the norm is
    // result-identical to querying by any raw spelling of it).
    let num_classes = kb.num_classes().max(1) as f64;
    let col_types: Vec<Vec<TypeCandidate>> = par_map_indexed_with(
        config.threads,
        ncols,
        HashMap::<String, Vec<ClassId>>::new,
        |type_cache, c| {
            let mut counts: HashMap<String, usize> = HashMap::new();
            let mut non_null = 0usize;
            for r in 0..rows {
                let Some(cell) = table.cell(r, c).as_str() else {
                    continue;
                };
                non_null += 1;
                *counts.entry(sim::normalize(cell)).or_insert(0) += 1;
            }
            let mut groups: Vec<(String, usize)> = counts.into_iter().collect();
            groups.sort_unstable();
            let mut acc: HashMap<ClassId, (f64, usize)> = HashMap::new();
            for (norm, count) in &groups {
                if !type_cache.contains_key(norm) {
                    type_cache.insert(norm.clone(), kb.types_of_value(norm));
                }
                fold_type_group(kb, num_classes, &type_cache[norm], *count, &mut acc);
            }
            config
                .recorder
                .incr_by(Counter::DiscoveryTypeProbes, non_null as u64);
            rank_types(kb, acc, non_null, config)
        },
    );

    // ---- Relationships per ordered pair -----------------------------------
    // Parallel across ordered pairs (same i-outer/j-inner order as the
    // historical double loop); per-worker cache of Q_rels per distinct
    // normalized value pair: (resource-object, literal-object) relations.
    type RelCacheEntry = (Vec<PropertyId>, Vec<PropertyId>);
    let num_props = kb.num_properties().max(1) as f64;
    let pairs: Vec<(usize, usize)> = (0..ncols)
        .flat_map(|i| (0..ncols).filter(move |&j| j != i).map(move |j| (i, j)))
        .collect();
    let ranked_pairs: Vec<Vec<RelCandidate>> = par_map_indexed_with(
        config.threads,
        pairs.len(),
        HashMap::<(String, String), RelCacheEntry>::new,
        |rel_cache, pi| {
            let (i, j) = pairs[pi];
            let mut counts: HashMap<(String, String), usize> = HashMap::new();
            let mut non_null = 0usize;
            for r in 0..rows {
                let (Some(a), Some(b)) = (table.cell(r, i).as_str(), table.cell(r, j).as_str())
                else {
                    continue;
                };
                non_null += 1;
                *counts
                    .entry((sim::normalize(a), sim::normalize(b)))
                    .or_insert(0) += 1;
            }
            let mut groups: Vec<((String, String), usize)> = counts.into_iter().collect();
            groups.sort_unstable();
            let mut acc: HashMap<PropertyId, (f64, usize, bool)> = HashMap::new();
            for (key, count) in &groups {
                if !rel_cache.contains_key(key) {
                    rel_cache.insert(
                        key.clone(),
                        (
                            kb.relations_between_values(&key.0, &key.1),
                            kb.relations_to_literal(&key.0, &key.1),
                        ),
                    );
                }
                let (res_rels, lit_rels) = &rel_cache[key];
                fold_rel_group(kb, num_props, res_rels, lit_rels, *count, &mut acc);
            }
            config
                .recorder
                .incr_by(Counter::DiscoveryRelProbes, non_null as u64);
            rank_rels(kb, acc, non_null, config)
        },
    );
    // Deterministic merge in pair order (insertion order is irrelevant to
    // `HashMap` equality, but keeping it makes the walk reproducible).
    let mut pair_rels: HashMap<(usize, usize), Vec<RelCandidate>> = HashMap::new();
    for (pi, ranked) in ranked_pairs.into_iter().enumerate() {
        if !ranked.is_empty() {
            pair_rels.insert(pairs[pi], ranked);
        }
    }

    CandidateSet {
        col_types,
        pair_rels,
        rows_scanned: rows,
    }
}

/// Fold one distinct value's `Q_types` result (weighted by its occurrence
/// count) into a column's tf-idf accumulator. The caller iterates distinct
/// values in normalized-string order — the canonical fold order shared by
/// the full paths and the delta engine's re-fold.
pub(crate) fn fold_type_group(
    kb: &Kb,
    num_classes: f64,
    types: &[ClassId],
    count: usize,
    acc: &mut HashMap<ClassId, (f64, usize)>,
) {
    if types.is_empty() {
        return;
    }
    let idf = (num_classes / types.len() as f64).ln().max(0.0);
    let w = count as f64;
    for &t in types {
        let tf = 1.0 / (1.0 + (kb.class_size(t) as f64).ln());
        let e = acc.entry(t).or_insert((0.0, 0));
        e.0 += w * (tf * idf);
        e.1 += count;
    }
}

/// [`fold_type_group`]'s relationship counterpart.
pub(crate) fn fold_rel_group(
    kb: &Kb,
    num_props: f64,
    res: &[PropertyId],
    lit: &[PropertyId],
    count: usize,
    acc: &mut HashMap<PropertyId, (f64, usize, bool)>,
) {
    let total = res.len() + lit.len();
    if total == 0 {
        return;
    }
    let idf = (num_props / total as f64).ln().max(0.0);
    let w = count as f64;
    for (&p, is_lit) in res
        .iter()
        .map(|p| (p, false))
        .chain(lit.iter().map(|p| (p, true)))
    {
        let doc = kb.subjects_of_property(p).len();
        let tf = 1.0 / (1.0 + (doc.max(1) as f64).ln());
        let e = acc.entry(p).or_insert((0.0, 0, false));
        e.0 += w * (tf * idf);
        e.1 += count;
        e.2 |= is_lit;
    }
}

/// Canonical fold of a column's per-distinct-value occurrence counts into
/// the type tf-idf accumulator: distinct values sorted by normalized
/// string, each folded once via [`fold_type_group`].
pub(crate) fn fold_types_from_counts(
    kb: &Kb,
    resolution: &TableResolution,
    counts: &HashMap<u32, usize>,
) -> HashMap<ClassId, (f64, usize)> {
    let num_classes = kb.num_classes().max(1) as f64;
    let mut ids: Vec<(&str, u32, usize)> = counts
        .iter()
        .map(|(&id, &n)| (resolution.norm_of(id), id, n))
        .collect();
    ids.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let mut acc = HashMap::new();
    for (_, id, count) in ids {
        let types = resolution.types_of(kb, id);
        fold_type_group(kb, num_classes, &types, count, &mut acc);
    }
    acc
}

/// [`fold_types_from_counts`] for an ordered column pair's per-distinct
/// value-id-pair counts, sorted by `(norm_a, norm_b)`.
pub(crate) fn fold_rels_from_counts(
    kb: &Kb,
    resolution: &TableResolution,
    counts: &HashMap<(u32, u32), usize>,
) -> HashMap<PropertyId, (f64, usize, bool)> {
    /// Sort key for one distinct id pair: normalized spellings first
    /// (the canonical fold order), then the ids and the pair count.
    type PairKey<'a> = ((&'a str, &'a str), (u32, u32), usize);
    let num_props = kb.num_properties().max(1) as f64;
    let mut keys: Vec<PairKey> = counts
        .iter()
        .map(|(&(a, b), &n)| ((resolution.norm_of(a), resolution.norm_of(b)), (a, b), n))
        .collect();
    keys.sort_unstable_by(|x, y| x.0.cmp(&y.0));
    let mut acc = HashMap::new();
    for (_, (a, b), count) in keys {
        let rels = resolution.pair_relations(kb, a, b);
        fold_rel_group(kb, num_props, &rels.res, &rels.lit, count, &mut acc);
    }
    acc
}

pub(crate) fn rank_types(
    kb: &Kb,
    acc: HashMap<ClassId, (f64, usize)>,
    non_null: usize,
    config: &CandidateConfig,
) -> Vec<TypeCandidate> {
    let min_support = min_support(non_null, config.min_support_fraction);
    let mut list: Vec<TypeCandidate> = acc
        .into_iter()
        .filter(|&(_, (_, sup))| sup >= min_support)
        .map(|(class, (raw, support))| TypeCandidate {
            class,
            tfidf: raw,
            support,
        })
        .collect();
    // Normalize by the column max.
    let max = list.iter().map(|t| t.tfidf).fold(0.0f64, f64::max);
    if max > 0.0 {
        for t in &mut list {
            t.tfidf /= max;
        }
    }
    // Descending tf-idf; ties → more discriminative (fewer instances).
    list.sort_by(|a, b| {
        b.tfidf
            .total_cmp(&a.tfidf)
            .then_with(|| kb.class_size(a.class).cmp(&kb.class_size(b.class)))
            .then_with(|| a.class.cmp(&b.class))
    });
    list.truncate(config.max_candidates);
    list
}

pub(crate) fn rank_rels(
    kb: &Kb,
    acc: HashMap<PropertyId, (f64, usize, bool)>,
    non_null: usize,
    config: &CandidateConfig,
) -> Vec<RelCandidate> {
    let min_support = min_support(non_null, config.min_rel_support_fraction);
    let mut list: Vec<RelCandidate> = acc
        .into_iter()
        .filter(|&(_, (_, sup, _))| sup >= min_support)
        .map(|(property, (raw, support, to_literal))| RelCandidate {
            property,
            tfidf: raw,
            support,
            to_literal,
        })
        .collect();
    let max = list.iter().map(|t| t.tfidf).fold(0.0f64, f64::max);
    if max > 0.0 {
        for t in &mut list {
            t.tfidf /= max;
        }
    }
    list.sort_by(|a, b| {
        b.tfidf
            .total_cmp(&a.tfidf)
            .then_with(|| {
                kb.subjects_of_property(a.property)
                    .len()
                    .cmp(&kb.subjects_of_property(b.property).len())
            })
            .then_with(|| a.property.cmp(&b.property))
    });
    list.truncate(config.max_candidates);
    list
}

fn min_support(non_null: usize, fraction: f64) -> usize {
    (((non_null as f64) * fraction).ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use katara_kb::KbBuilder;

    /// A KB where `country` is rarer (hence more discriminative) than
    /// `place`, and two relationship kinds exist.
    fn kb_and_table() -> (Kb, Table) {
        let mut b = KbBuilder::new();
        let place = b.class("place");
        let country = b.class("country");
        let capital = b.class("capital");
        b.subclass(country, place).unwrap();
        b.subclass(capital, place).unwrap();
        let has_capital = b.property("hasCapital");

        let countries = ["Italy", "Spain", "France", "Germany"];
        let capitals = ["Rome", "Madrid", "Paris", "Berlin"];
        for (c, cap) in countries.iter().zip(capitals.iter()) {
            let rc = b.entity(c, &[country]);
            let rcap = b.entity(cap, &[capital]);
            b.fact(rc, has_capital, rcap);
        }
        // Extra places dilute `place`.
        for i in 0..20 {
            b.entity(&format!("Hamlet{i}"), &[place]);
        }
        let kb = b.finalize();

        let mut t = Table::with_opaque_columns("t", 2);
        t.push_text_row(&["Italy", "Rome"]);
        t.push_text_row(&["Spain", "Madrid"]);
        t.push_text_row(&["France", "Paris"]);
        (kb, t)
    }

    #[test]
    fn country_ranks_above_place() {
        let (kb, t) = kb_and_table();
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        let country = kb.class_by_name("country").unwrap();
        let place = kb.class_by_name("place").unwrap();
        let col0 = &cands.col_types[0];
        let pos = |c| col0.iter().position(|x| x.class == c);
        assert!(pos(country).unwrap() < pos(place).unwrap());
        assert!(
            (col0[0].tfidf - 1.0).abs() < 1e-12,
            "top is normalized to 1"
        );
        assert_eq!(col0[0].support, 3);
    }

    #[test]
    fn relationship_discovered_with_direction() {
        let (kb, t) = kb_and_table();
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        let has_capital = kb.property_by_name("hasCapital").unwrap();
        let rels = cands.rels(0, 1);
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].property, has_capital);
        assert_eq!(rels[0].support, 3);
        assert!(!rels[0].to_literal);
        assert!(cands.rels(1, 0).is_empty(), "reverse direction is empty");
        assert_eq!(cands.pairs(), vec![(0, 1)]);
    }

    #[test]
    fn literal_relationships_flagged() {
        let mut b = KbBuilder::new();
        let person = b.class("person");
        let height = b.property("hasHeight");
        for (n, h) in [("Rossi", "1.78"), ("Klate", "1.69")] {
            let r = b.entity(n, &[person]);
            b.literal_fact(r, height, h);
        }
        let kb = b.finalize();
        let mut t = Table::with_opaque_columns("t", 2);
        t.push_text_row(&["Rossi", "1.78"]);
        t.push_text_row(&["Klate", "1.69"]);
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        let rels = cands.rels(0, 1);
        assert_eq!(rels.len(), 1);
        assert!(rels[0].to_literal);
        // The literal column has no type candidates.
        assert!(cands.col_types[1].is_empty());
    }

    #[test]
    fn min_support_filters_homonym_noise() {
        let mut b = KbBuilder::new();
        let country = b.class("country");
        let fruit = b.class("fruit");
        for n in ["Italy", "Spain", "France", "Germany", "Austria"] {
            b.entity(n, &[country]);
        }
        // One cell value is ALSO a fruit (homonym).
        b.entity_labeled("Italy_(fruit)", "Italy", &[fruit]);
        let kb = b.finalize();

        let mut t = Table::with_opaque_columns("t", 1);
        for n in ["Italy", "Spain", "France", "Germany", "Austria"] {
            t.push_text_row(&[n]);
        }
        let config = CandidateConfig {
            min_support_fraction: 0.3,
            ..CandidateConfig::default()
        };
        let cands = discover_candidates(&t, &kb, &config);
        let classes: Vec<ClassId> = cands.col_types[0].iter().map(|c| c.class).collect();
        assert!(classes.contains(&kb.class_by_name("country").unwrap()));
        assert!(
            !classes.contains(&kb.class_by_name("fruit").unwrap()),
            "fruit supported by 1/5 cells must be filtered at 0.3"
        );
    }

    #[test]
    fn max_rows_caps_scanning() {
        let (kb, mut t) = kb_and_table();
        for _ in 0..100 {
            t.push_text_row(&["Italy", "Rome"]);
        }
        let config = CandidateConfig {
            max_rows: 2,
            ..CandidateConfig::default()
        };
        let cands = discover_candidates(&t, &kb, &config);
        assert_eq!(cands.rows_scanned, 2);
        assert_eq!(cands.col_types[0][0].support, 2);
    }

    #[test]
    fn unknown_values_give_empty_lists() {
        let (kb, _) = kb_and_table();
        let mut t = Table::with_opaque_columns("t", 2);
        t.push_text_row(&["NotInKb1", "NotInKb2"]);
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        assert!(cands.col_types[0].is_empty());
        assert!(cands.col_types[1].is_empty());
        assert!(cands.pair_rels.is_empty());
    }

    /// The tentpole guarantee: candidate discovery is a pure function of
    /// (table, kb, config) — the worker count never shows in the output.
    #[test]
    fn thread_count_invariant() {
        let (kb, mut t) = kb_and_table();
        t.push_text_row(&["", "Rome"]); // degenerate cells included
        t.push_text_row(&["Italy", ""]);
        let at = |n: usize| {
            discover_candidates(
                &t,
                &kb,
                &CandidateConfig {
                    threads: Threads::fixed(n),
                    ..CandidateConfig::default()
                },
            )
        };
        let sequential = at(1);
        for n in [2, 3, 8] {
            assert_eq!(at(n), sequential, "threads={n}");
        }
    }

    /// The snapshot path (default) and the historical direct path must be
    /// byte-identical, including on typos, literals, and null cells.
    #[test]
    fn snapshot_path_matches_direct_path() {
        let (kb, mut t) = kb_and_table();
        t.push_text_row(&["", "Rome"]);
        t.push_text_row(&["Madird", "Itlay"]);
        t.push_text_row(&["Italy", "Rome"]);
        let config = CandidateConfig::default();
        assert_eq!(
            discover_candidates(&t, &kb, &config),
            discover_candidates_direct(&t, &kb, &config)
        );
        // A row-capped snapshot (pair memo narrower than the scan) still
        // matches because uncovered pairs are computed on demand.
        let res = crate::resolve::TableResolution::build(&t, &kb, 1);
        assert_eq!(
            discover_candidates_resolved(&t, &kb, &res, &config),
            discover_candidates_direct(&t, &kb, &config)
        );
    }

    #[test]
    fn null_cells_skipped() {
        let (kb, _) = kb_and_table();
        let mut t = Table::with_opaque_columns("t", 2);
        t.push_text_row(&["Italy", ""]);
        t.push_text_row(&["", "Rome"]);
        t.push_text_row(&["Spain", "Madrid"]);
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        assert_eq!(cands.col_types[0][0].support, 2);
        let rels = cands.rels(0, 1);
        assert_eq!(rels[0].support, 1, "only the (Spain, Madrid) row pairs up");
    }
}
