//! **Scaling** (supporting Table 3's claim): candidate generation "is
//! linear w.r.t. the number of tuples" — the paper distributes the
//! 316K-row Person table over 30 machines on that basis. Here the Person
//! table is regenerated at growing sizes and discovery is timed
//! single-threaded; the per-tuple cost must stay flat.

use std::time::Duration;

use katara_core::candidates::{discover_candidates, CandidateConfig};
use katara_core::rank_join::{discover_topk, DiscoveryConfig};
use katara_datagen::{person_table, KbFlavor};

use crate::corpus::Corpus;
use crate::report::MdTable;
use crate::timing::time_avg;

/// The Person sizes swept.
pub const SIZES: [usize; 4] = [1_000, 2_000, 5_000, 10_000];

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Rows in the Person table.
    pub rows: usize,
    /// Full discovery time (candidates + rank-join, uncapped row scan).
    pub time: Duration,
}

/// The structured result.
#[derive(Debug, Clone, Default)]
pub struct Scaling {
    /// One point per size.
    pub points: Vec<Point>,
}

/// Run the sweep against the DBpedia-like KB.
pub fn run(corpus: &Corpus, repeats: usize) -> Scaling {
    let kb = corpus.kb(KbFlavor::DbpediaLike);
    let config = CandidateConfig {
        max_rows: usize::MAX, // scan everything: that is the point
        ..CandidateConfig::default()
    };
    let mut out = Scaling::default();
    for &rows in &SIZES {
        let g = person_table(&corpus.world, rows, 11);
        let time = time_avg(repeats, || {
            let cands = discover_candidates(&g.table, &kb, &config);
            let _ = discover_topk(&g.table, &kb, &cands, 1, &DiscoveryConfig::default());
        });
        out.points.push(Point { rows, time });
    }
    out
}

impl Scaling {
    /// Per-tuple cost in microseconds at each point.
    pub fn per_tuple_us(&self) -> Vec<f64> {
        self.points
            .iter()
            .map(|p| p.time.as_secs_f64() * 1e6 / p.rows as f64)
            .collect()
    }

    /// Render the Markdown section.
    pub fn render(&self) -> String {
        let mut t = MdTable::new(&["Person rows", "discovery (s)", "µs / tuple"]);
        for (p, us) in self.points.iter().zip(self.per_tuple_us()) {
            t.row(vec![
                p.rows.to_string(),
                format!("{:.3}", p.time.as_secs_f64()),
                format!("{us:.1}"),
            ]);
        }
        format!(
            "## Scaling — discovery cost vs Person size (dbpedia-like)\n\n{}\n\
             Paper claim: candidate generation is linear in the tuple \
             count. Expect flat-or-falling per-tuple cost: the \
             per-distinct-value query cache saturates on redundant data, \
             so the growth is bounded by the linear cache-hit path.\n",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn per_tuple_cost_stays_flat() {
        let corpus = Corpus::build(&CorpusConfig::small());
        let s = run(&corpus, 1);
        assert_eq!(s.points.len(), SIZES.len());
        let us = s.per_tuple_us();
        // Flat within a generous factor (small sizes amortize fixed
        // costs poorly; superlinear growth would blow far past this).
        let first = us[0].max(0.01);
        let last = *us.last().unwrap();
        assert!(
            last < first * 4.0,
            "per-tuple cost grew {first:.2} -> {last:.2} µs"
        );
    }
}
