//! End-to-end integration tests spanning every crate: world → KB →
//! table → discovery → validation → annotation → repair.

use katara::core::prelude::*;
use katara::crowd::{Crowd, CrowdConfig};
use katara::datagen::{KbFlavor, TableOracle};
use katara::eval::corpus::{Corpus, CorpusConfig};
use katara::eval::metrics::{pattern_precision_recall, repair_precision_recall};
use katara::table::corrupt::{corrupt_table, CorruptionConfig};

fn corpus() -> Corpus {
    Corpus::build(&CorpusConfig::small())
}

fn crowd_for(
    corpus: &Corpus,
    g: &katara::datagen::GeneratedTable,
    flavor: KbFlavor,
) -> Crowd<TableOracle> {
    Crowd::new(
        CrowdConfig {
            worker_accuracy: 1.0,
            ..CrowdConfig::default()
        },
        TableOracle::new(corpus.facts.clone(), g.ground_truth.clone(), flavor),
    )
    .expect("test crowd config is valid")
}

#[test]
fn discovery_recovers_person_ground_truth() {
    let corpus = corpus();
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let kb = corpus.kb(flavor);
        let g = &corpus.person;
        let cands = discover_candidates(&g.table, &kb, &CandidateConfig::default());
        let top = discover_topk(&g.table, &kb, &cands, 1, &DiscoveryConfig::default());
        let cfg = katara::datagen::KbGenConfig::for_flavor(flavor);
        let score = pattern_precision_recall(
            &kb,
            &top[0],
            &g.ground_truth.types_for(flavor),
            &g.ground_truth.rels_for(&cfg),
        );
        assert!(
            score.f_measure() > 0.7,
            "{flavor:?}: top pattern F {:.2} too low",
            score.f_measure()
        );
    }
}

#[test]
fn full_pipeline_repairs_injected_errors() {
    let corpus = corpus();
    let flavor = KbFlavor::DbpediaLike;
    let g = &corpus.person;

    let mut dirty = g.table.clone();
    let log = corrupt_table(
        &mut dirty,
        &CorruptionConfig::paper_default(vec![1, 2, 3]),
        99,
    );
    assert!(!log.is_empty());

    let mut kb = corpus.kb(flavor);
    let mut crowd = crowd_for(&corpus, g, flavor);
    let katara = Katara::default();
    let report = katara.clean(&dirty, &mut kb, &mut crowd).unwrap();

    let score = repair_precision_recall(&log, &report.repairs);
    assert!(
        score.p > 0.7,
        "precision {:.2} too low ({} errors, {} flagged)",
        score.p,
        log.len(),
        report.repairs.len()
    );
    assert!(score.r > 0.4, "recall {:.2} too low", score.r);
}

#[test]
fn enrichment_reduces_crowd_cost_on_second_pass() {
    let corpus = corpus();
    let flavor = KbFlavor::YagoLike;
    let g = &corpus.university;
    let mut kb = corpus.kb(flavor);
    let katara = Katara::default();

    let mut crowd1 = crowd_for(&corpus, g, flavor);
    let r1 = katara.clean(&g.table, &mut kb, &mut crowd1).unwrap();
    let q1 = crowd1.stats().questions();

    // Same table, same (now enriched) KB.
    let mut crowd2 = crowd_for(&corpus, g, flavor);
    let r2 = katara.clean(&g.table, &mut kb, &mut crowd2).unwrap();
    let q2 = crowd2.stats().questions();

    assert!(r1.annotation.enriched_facts > 0, "first pass must enrich");
    assert!(
        q2 < q1,
        "enrichment must cut crowd cost: pass1 {q1} vs pass2 {q2}"
    );
    // Second pass: everything previously crowd-validated is now
    // KB-validated.
    use katara::core::annotation::TupleStatus;
    assert!(
        r2.annotation.status_count(TupleStatus::ValidatedByKb)
            >= r1.annotation.status_count(TupleStatus::ValidatedByKb)
    );
}

#[test]
fn clean_tables_have_no_erroneous_tuples() {
    let corpus = corpus();
    let flavor = KbFlavor::DbpediaLike;
    let g = &corpus.person; // clean, no nulls
    let mut kb = corpus.kb(flavor);
    let mut crowd = crowd_for(&corpus, g, flavor);
    let report = Katara::default()
        .clean(&g.table, &mut kb, &mut crowd)
        .unwrap();
    assert_eq!(
        report.annotation.erroneous_rows(),
        Vec::<usize>::new(),
        "a clean table with a perfect crowd must have zero errors"
    );
}

#[test]
fn multi_kb_selection_is_consistent_with_scores() {
    let corpus = corpus();
    let kb_yago = corpus.kb(KbFlavor::YagoLike);
    let kb_dbp = corpus.kb(KbFlavor::DbpediaLike);
    let g = &corpus.soccer;
    let pick = katara::core::pipeline::select_kb(
        &g.table,
        &[&kb_yago, &kb_dbp],
        &CandidateConfig::default(),
        &DiscoveryConfig::default(),
    );
    // Soccer is meaningless to the Yago-like KB (no clubs): DBpedia-like
    // must win the selection.
    let (idx, score) = pick.expect("dbpedia-like covers soccer");
    assert_eq!(idx, 1, "dbpedia-like must be selected for Soccer");
    assert!(score > 0.0);
}

#[test]
fn pipeline_is_deterministic() {
    let corpus = corpus();
    let flavor = KbFlavor::DbpediaLike;
    let g = &corpus.university;
    let run = || {
        let mut kb = corpus.kb(flavor);
        let mut crowd = crowd_for(&corpus, g, flavor);
        let r = Katara::default()
            .clean(&g.table, &mut kb, &mut crowd)
            .unwrap();
        (
            r.pattern.nodes().to_vec(),
            r.pattern.edges().to_vec(),
            r.annotation.erroneous_rows(),
            r.annotation.enriched_facts,
        )
    };
    assert_eq!(run(), run());
}
