//! Property-based fuzzing of the rank-join: on *arbitrary* candidate
//! sets over *arbitrary* small KBs, the best-first search must return
//! exactly the same top-k as exhaustive enumeration, with descending
//! scores and a prefix-stable ranking.

use katara_core::candidates::{CandidateSet, RelCandidate, TypeCandidate};
use katara_core::rank_join::{discover_exhaustive, discover_topk, DiscoveryConfig};
use katara_kb::{ClassId, KbBuilder, PropertyId};
use katara_table::Table;
use proptest::prelude::*;

const NUM_CLASSES: usize = 6;
const NUM_PROPS: usize = 4;

/// A random KB: fixed class/property id spaces, random typed entities and
/// random facts (which drive the coherence table).
fn kb_strategy() -> impl Strategy<Value = katara_kb::Kb> {
    let entity = (0usize..NUM_CLASSES, 0usize..NUM_CLASSES);
    let fact = (0usize..24, 0usize..NUM_PROPS, 0usize..24);
    (
        prop::collection::vec(entity, 8..24),
        prop::collection::vec(fact, 0..40),
    )
        .prop_map(|(entities, facts)| {
            let mut b = KbBuilder::new();
            let classes: Vec<ClassId> = (0..NUM_CLASSES)
                .map(|i| b.class(&format!("c{i}")))
                .collect();
            let props: Vec<PropertyId> = (0..NUM_PROPS)
                .map(|i| b.property(&format!("p{i}")))
                .collect();
            let resources: Vec<_> = entities
                .iter()
                .enumerate()
                .map(|(i, &(t1, t2))| {
                    b.entity(&format!("e{i}"), &[classes[t1], classes[t2 % NUM_CLASSES]])
                })
                .collect();
            for &(s, p, o) in &facts {
                let s = resources[s % resources.len()];
                let o = resources[o % resources.len()];
                b.fact(s, props[p], o);
            }
            b.finalize()
        })
}

/// Random candidate lists over the fixed id spaces.
fn candidates_strategy() -> impl Strategy<Value = (usize, CandidateSet)> {
    let type_cand = (0usize..NUM_CLASSES, 0.0f64..=1.0);
    let col = prop::collection::vec(type_cand, 0..5);
    let rel_cand = (0usize..NUM_PROPS, 0.0f64..=1.0);
    let pair = prop::collection::vec(rel_cand, 0..4);
    (
        2usize..4,
        prop::collection::vec(col, 2..4),
        prop::collection::vec(pair, 0..4),
    )
        .prop_map(|(ncols, cols, pairs)| {
            let mut set = CandidateSet {
                rows_scanned: 1,
                ..CandidateSet::default()
            };
            for c in 0..ncols {
                let list = cols.get(c).cloned().unwrap_or_default();
                let mut seen = std::collections::HashSet::new();
                set.col_types.push(
                    list.into_iter()
                        .filter(|(cl, _)| seen.insert(*cl))
                        .map(|(cl, tfidf)| TypeCandidate {
                            class: ClassId(cl as u32),
                            tfidf,
                            support: 1,
                        })
                        .collect(),
                );
            }
            // Assign pair lists to distinct ordered pairs.
            let mut all_pairs: Vec<(usize, usize)> = Vec::new();
            for i in 0..ncols {
                for j in 0..ncols {
                    if i != j {
                        all_pairs.push((i, j));
                    }
                }
            }
            for (slot, list) in pairs.into_iter().enumerate() {
                if slot >= all_pairs.len() || list.is_empty() {
                    continue;
                }
                let mut seen = std::collections::HashSet::new();
                let rels: Vec<RelCandidate> = list
                    .into_iter()
                    .filter(|(p, _)| seen.insert(*p))
                    .map(|(p, tfidf)| RelCandidate {
                        property: PropertyId(p as u32),
                        tfidf,
                        support: 1,
                        to_literal: false,
                    })
                    .collect();
                set.pair_rels.insert(all_pairs[slot], rels);
            }
            (ncols, set)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank_join_is_exact_on_random_inputs(
        kb in kb_strategy(),
        (ncols, cands) in candidates_strategy(),
        k in 1usize..6,
    ) {
        let table = Table::with_opaque_columns("fuzz", ncols);
        let cfg = DiscoveryConfig::default();
        let fast = discover_topk(&table, &kb, &cands, k, &cfg);
        let (slow, _) = discover_exhaustive(&table, &kb, &cands, k, &cfg);
        prop_assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!(
                (a.score() - b.score()).abs() < 1e-9,
                "score mismatch: {} vs {}", a.score(), b.score()
            );
        }
        // Scores descend.
        for w in fast.windows(2) {
            prop_assert!(w[0].score() >= w[1].score() - 1e-12);
        }
    }

    #[test]
    fn topk_is_prefix_stable(
        kb in kb_strategy(),
        (ncols, cands) in candidates_strategy(),
    ) {
        let table = Table::with_opaque_columns("fuzz", ncols);
        let cfg = DiscoveryConfig::default();
        let top5 = discover_topk(&table, &kb, &cands, 5, &cfg);
        let top2 = discover_topk(&table, &kb, &cands, 2, &cfg);
        prop_assert!(top2.len() <= top5.len());
        for (a, b) in top2.iter().zip(top5.iter()) {
            prop_assert!((a.score() - b.score()).abs() < 1e-9);
        }
    }
}
