//! The knowledge base proper: entity/class/property arenas plus every index
//! the KATARA algorithms probe.
//!
//! Construction goes through [`crate::builder::KbBuilder`]; a finalized
//! [`Kb`] answers all §4.1 query shapes in (amortized) constant or
//! output-linear time, and supports the §6.1 *enrichment* writes
//! ([`Kb::add_fact`], [`Kb::add_entity`]).

use std::collections::HashMap;

use crate::coherence::CoherenceTable;
use crate::error::KbError;
use crate::ids::{ClassId, LiteralId, PropertyId, ResourceId};
use crate::interner::Interner;
use crate::journal::{DeltaOp, EnrichmentDelta};
use crate::label_index::LabelIndex;
use crate::ontology::Hierarchy;
use crate::query::Object;
use crate::sim;

/// An immutable-schema, enrichable-facts knowledge base.
///
/// See the crate docs for the supported RDFS fragment. All `Vec`-indexed
/// fields are dense over the respective id space.
#[derive(Debug, Clone)]
pub struct Kb {
    pub(crate) name: String,
    pub(crate) resources: Interner,
    pub(crate) classes: Interner,
    pub(crate) props: Interner,
    pub(crate) literals: Interner,
    /// Human-readable label per resource (defaults to the resource name).
    pub(crate) labels: Vec<String>,
    pub(crate) label_index: LabelIndex,
    pub(crate) class_hier: Hierarchy,
    pub(crate) prop_hier: Hierarchy,
    /// Direct (asserted) types per resource.
    pub(crate) direct_types: Vec<Vec<ClassId>>,
    /// Asserted types *plus* superclass closure, per resource.
    pub(crate) types_closure: Vec<Vec<ClassId>>,
    /// ENT(T): entities per class, including instances of subclasses.
    pub(crate) class_entities: Vec<Vec<ResourceId>>,
    /// Outgoing facts per subject (property stored as asserted).
    pub(crate) out_edges: Vec<Vec<(PropertyId, Object)>>,
    /// Incoming resource facts per object (property stored as asserted).
    pub(crate) in_edges: Vec<Vec<(PropertyId, ResourceId)>>,
    /// (subject, object-resource) -> asserted properties.
    pub(crate) rr_index: HashMap<(ResourceId, ResourceId), Vec<PropertyId>>,
    /// (subject, object-literal) -> asserted properties.
    pub(crate) rl_index: HashMap<(ResourceId, LiteralId), Vec<PropertyId>>,
    /// subENT(P): distinct subject entities per property (subproperty
    /// closure folded upward), deduplicated.
    pub(crate) prop_subjects: Vec<Vec<ResourceId>>,
    /// objENT(P): distinct object entities per property.
    pub(crate) prop_objects: Vec<Vec<ResourceId>>,
    /// Normalized-literal interning: normalize(lit) -> LiteralId of the
    /// canonical spelling, used for Q_rels^2 lookups.
    pub(crate) literal_norm: HashMap<String, Vec<LiteralId>>,
    pub(crate) coherence: CoherenceTable,
    pub(crate) sim_threshold: f64,
    /// Count of facts (triples with a property), for reporting.
    pub(crate) fact_count: usize,
    /// Monotonic mutation counter, bumped by every enrichment write that
    /// changes observable query results. Snapshot layers (see
    /// `katara-core`'s `resolve` module) record the version they were
    /// built against and fall back to live queries when it has moved.
    pub(crate) version: u64,
    /// When `Some`, every state-changing enrichment write is also
    /// recorded here as a [`DeltaOp`] (see
    /// [`Kb::begin_delta_capture`]). `None` outside a capture window.
    pub(crate) capture: Option<Vec<DeltaOp>>,
}

impl Kb {
    /// The KB's display name (e.g. `"yago-like"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of entities, the paper's `N`.
    pub fn num_entities(&self) -> usize {
        self.labels.len()
    }

    /// Number of classes (the paper contrasts Yago's 374K vs DBpedia's 865).
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of distinct properties.
    pub fn num_properties(&self) -> usize {
        self.props.len()
    }

    /// Number of asserted facts (triples whose predicate is a property).
    pub fn num_facts(&self) -> usize {
        self.fact_count
    }

    /// The similarity threshold used for approximate label matching.
    pub fn sim_threshold(&self) -> f64 {
        self.sim_threshold
    }

    /// The current mutation version. Starts at 0 on finalize and moves
    /// whenever an enrichment write ([`Kb::add_fact`],
    /// [`Kb::add_literal_fact`], [`Kb::add_entity`], [`Kb::add_type`])
    /// actually changes the KB; idempotent re-adds leave it untouched, so
    /// caches keyed on the version survive no-op writes.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The canonical (unique) name of a resource.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        self.resources.resolve(r.index())
    }

    /// The human-readable label of a resource (`rdfs:label`).
    pub fn label_of(&self, r: ResourceId) -> &str {
        &self.labels[r.index()]
    }

    /// The name of a class (already the crowd-readable description; the
    /// paper strips URI prefixes, we never add them).
    pub fn class_name(&self, c: ClassId) -> &str {
        self.classes.resolve(c.index())
    }

    /// The name of a property.
    pub fn property_name(&self, p: PropertyId) -> &str {
        self.props.resolve(p.index())
    }

    /// The string behind a literal id.
    pub fn literal_value(&self, l: LiteralId) -> &str {
        self.literals.resolve(l.index())
    }

    /// Look up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes.get(name).map(ClassId::from_index)
    }

    /// Look up a property by name.
    pub fn property_by_name(&self, name: &str) -> Option<PropertyId> {
        self.props.get(name).map(PropertyId::from_index)
    }

    /// Look up a resource by its canonical name (not its label).
    pub fn resource_by_name(&self, name: &str) -> Option<ResourceId> {
        self.resources.get(name).map(ResourceId::from_index)
    }

    /// Resources whose normalized label equals the normalized query.
    pub fn resources_by_label(&self, label: &str) -> &[ResourceId] {
        self.label_index.exact(label)
    }

    /// The class hierarchy.
    pub fn class_hierarchy(&self) -> &Hierarchy {
        &self.class_hier
    }

    /// The property hierarchy.
    pub fn property_hierarchy(&self) -> &Hierarchy {
        &self.prop_hier
    }

    /// Direct (asserted) types of a resource.
    pub fn direct_types(&self, r: ResourceId) -> &[ClassId] {
        &self.direct_types[r.index()]
    }

    /// Types of a resource including all superclasses (`rdfs:type/subClassOf*`).
    pub fn types_closure(&self, r: ResourceId) -> &[ClassId] {
        &self.types_closure[r.index()]
    }

    /// `type(r) = c` or `subclassOf(type(r), c)` — condition 2 of §3.2.
    pub fn has_type(&self, r: ResourceId, c: ClassId) -> bool {
        self.types_closure[r.index()].contains(&c)
    }

    /// ENT(T): entities of class `c`, including subclass instances.
    pub fn entities_of_class(&self, c: ClassId) -> &[ResourceId] {
        static EMPTY: Vec<ResourceId> = Vec::new();
        self.class_entities.get(c.index()).unwrap_or(&EMPTY)
    }

    /// |ENT(T)|.
    pub fn class_size(&self, c: ClassId) -> usize {
        self.entities_of_class(c).len()
    }

    /// subENT(P): distinct entities appearing as subject of `p` (including
    /// via subproperties).
    pub fn subjects_of_property(&self, p: PropertyId) -> &[ResourceId] {
        static EMPTY: Vec<ResourceId> = Vec::new();
        self.prop_subjects.get(p.index()).unwrap_or(&EMPTY)
    }

    /// objENT(P): distinct entities appearing as object of `p`.
    pub fn objects_of_property(&self, p: PropertyId) -> &[ResourceId] {
        static EMPTY: Vec<ResourceId> = Vec::new();
        self.prop_objects.get(p.index()).unwrap_or(&EMPTY)
    }

    /// Outgoing facts of a subject, as asserted.
    pub fn facts_of(&self, s: ResourceId) -> &[(PropertyId, Object)] {
        &self.out_edges[s.index()]
    }

    /// Incoming resource-object facts of `o`, as asserted.
    pub fn facts_into(&self, o: ResourceId) -> &[(PropertyId, ResourceId)] {
        &self.in_edges[o.index()]
    }

    /// All subjects `s` with `holds(s, p, o)` — the reverse of
    /// [`Kb::objects_linked`], used by instance-graph expansion.
    pub fn subjects_linking(&self, o: ResourceId, p: PropertyId) -> Vec<ResourceId> {
        let mut out = Vec::new();
        let mut seen = crate::dedup::OrderedDedup::new();
        for &(p2, s) in self.facts_into(o) {
            if self.prop_hier.is_a(p2.0, p.0) {
                seen.push(s, &mut out);
            }
        }
        out
    }

    /// The coherence table (subSC/objSC of §4.2), precomputed at build time.
    pub fn coherence(&self) -> &CoherenceTable {
        &self.coherence
    }

    /// subSC(T, P): how likely an entity of `t` appears as subject of `p`.
    pub fn sub_coherence(&self, t: ClassId, p: PropertyId) -> f64 {
        self.coherence.sub(t, p)
    }

    /// objSC(T, P): how likely an entity of `t` appears as object of `p`.
    pub fn obj_coherence(&self, t: ClassId, p: PropertyId) -> f64 {
        self.coherence.obj(t, p)
    }

    /// Iterate over all class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> {
        (0..self.classes.len()).map(ClassId::from_index)
    }

    /// Iterate over all property ids.
    pub fn property_ids(&self) -> impl Iterator<Item = PropertyId> {
        (0..self.props.len()).map(PropertyId::from_index)
    }

    /// Iterate over all resource ids.
    pub fn resource_ids(&self) -> impl Iterator<Item = ResourceId> {
        (0..self.labels.len()).map(ResourceId::from_index)
    }

    // ---------------------------------------------------------------
    // Enrichment (§6.1): crowd-confirmed facts and values are inserted
    // at runtime and visible to every subsequent query. Coherence
    // statistics stay frozen, mirroring the paper's offline computation.
    // ---------------------------------------------------------------

    /// Start recording enrichment writes. Until [`Kb::take_delta`],
    /// every state-changing [`Kb::add_fact`] / [`Kb::add_literal_fact`]
    /// / [`Kb::add_entity`] / [`Kb::add_type`] also appends a
    /// [`DeltaOp`] (by name, so it replays onto any store with the same
    /// schema). Idempotent no-op writes are not recorded — a captured
    /// delta replays to exactly the same state *and version*.
    pub fn begin_delta_capture(&mut self) {
        self.capture = Some(Vec::new());
    }

    /// Stop recording and return everything captured since
    /// [`Kb::begin_delta_capture`] (empty if capture was never started).
    pub fn take_delta(&mut self) -> EnrichmentDelta {
        EnrichmentDelta {
            ops: self.capture.take().unwrap_or_default(),
        }
    }

    fn record(&mut self, op: impl FnOnce(&Kb) -> DeltaOp) {
        if self.capture.is_some() {
            let op = op(self);
            if let Some(ops) = self.capture.as_mut() {
                ops.push(op);
            }
        }
    }

    /// Replay a captured delta onto this store, resolving every op by
    /// name. Returns the number of ops that actually changed state
    /// (all of them, when replaying onto the exact capture base).
    /// Errors with [`KbError::UnknownName`] when an op references a
    /// class or property this store does not know — replay never
    /// invents schema.
    pub fn apply_delta(&mut self, delta: &EnrichmentDelta) -> Result<usize, KbError> {
        let mut changed = 0usize;
        for op in &delta.ops {
            match op {
                DeltaOp::Entity { name, label } => {
                    let before = self.version;
                    self.add_entity(name, label, &[]);
                    if self.version != before {
                        changed += 1;
                    }
                }
                DeltaOp::Type { resource, class } => {
                    let r = self.require_resource(resource)?;
                    let c = self
                        .class_by_name(class)
                        .ok_or_else(|| KbError::UnknownName {
                            kind: "class",
                            name: class.clone(),
                        })?;
                    if self.add_type(r, c) {
                        changed += 1;
                    }
                }
                DeltaOp::Fact {
                    subject,
                    property,
                    object,
                } => {
                    let s = self.require_resource(subject)?;
                    let p = self.require_property(property)?;
                    let o = self.require_resource(object)?;
                    if self.add_fact(s, p, o) {
                        changed += 1;
                    }
                }
                DeltaOp::LiteralFact {
                    subject,
                    property,
                    literal,
                } => {
                    let s = self.require_resource(subject)?;
                    let p = self.require_property(property)?;
                    if self.add_literal_fact(s, p, literal) {
                        changed += 1;
                    }
                }
            }
        }
        Ok(changed)
    }

    fn require_resource(&self, name: &str) -> Result<ResourceId, KbError> {
        if let Some(r) = self.resource_by_name(name) {
            return Ok(r);
        }
        // Canonical-name fallback: checkpoint reload renames plain
        // entities to their serialized IRI form (`Rome` → `kb:Rome`,
        // spaces percent-encoded). A delta captured against a
        // pre-compaction clone may still carry the plain name; the two
        // spellings denote the same entity, so resolve through the
        // canonical one before giving up. Never fires when the plain
        // name exists (checked first), so no ambiguity is introduced.
        if !name.contains(':') {
            let canonical = format!("kb:{}", name.replace(' ', "%20"));
            if let Some(r) = self.resource_by_name(&canonical) {
                return Ok(r);
            }
        }
        Err(KbError::UnknownName {
            kind: "resource",
            name: name.to_string(),
        })
    }

    fn require_property(&self, name: &str) -> Result<PropertyId, KbError> {
        self.property_by_name(name)
            .ok_or_else(|| KbError::UnknownName {
                kind: "property",
                name: name.to_string(),
            })
    }

    /// Ratchet the version forward to at least `v` (never backward).
    /// Recovery uses this to restore the checkpoint's version before
    /// replaying journal records on top.
    pub fn advance_version_to(&mut self, v: u64) {
        self.version = self.version.max(v);
    }

    /// Insert a new fact `p(s, o)`. Idempotent. Updates the fact indexes
    /// and subENT/objENT (with subproperty fold-up) but not the coherence
    /// table.
    pub fn add_fact(&mut self, s: ResourceId, p: PropertyId, o: ResourceId) -> bool {
        let props = self.rr_index.entry((s, o)).or_default();
        if props.contains(&p) {
            return false;
        }
        props.push(p);
        self.version += 1;
        self.record(|kb| DeltaOp::Fact {
            subject: kb.resource_name(s).to_string(),
            property: kb.property_name(p).to_string(),
            object: kb.resource_name(o).to_string(),
        });
        self.out_edges[s.index()].push((p, Object::Resource(o)));
        self.in_edges[o.index()].push((p, s));
        self.fact_count += 1;
        let mut ps = vec![p.0];
        ps.extend(self.prop_hier.ancestors(p.0).map(|(a, _)| a));
        for pa in ps {
            let pa = PropertyId(pa);
            push_unique(&mut self.prop_subjects[pa.index()], s);
            push_unique(&mut self.prop_objects[pa.index()], o);
        }
        true
    }

    /// Insert a new literal fact `p(s, lit)`. Idempotent.
    pub fn add_literal_fact(&mut self, s: ResourceId, p: PropertyId, lit: &str) -> bool {
        let lid = LiteralId::from_index(self.literals.intern(lit));
        let norm = sim::normalize(lit);
        let ids = self.literal_norm.entry(norm).or_default();
        if !ids.contains(&lid) {
            ids.push(lid);
        }
        let props = self.rl_index.entry((s, lid)).or_default();
        if props.contains(&p) {
            return false;
        }
        props.push(p);
        self.version += 1;
        self.record(|kb| DeltaOp::LiteralFact {
            subject: kb.resource_name(s).to_string(),
            property: kb.property_name(p).to_string(),
            literal: lit.to_string(),
        });
        self.out_edges[s.index()].push((p, Object::Literal(lid)));
        self.fact_count += 1;
        let mut ps = vec![p.0];
        ps.extend(self.prop_hier.ancestors(p.0).map(|(a, _)| a));
        for pa in ps {
            push_unique(&mut self.prop_subjects[PropertyId(pa).index()], s);
        }
        true
    }

    /// Create a brand-new entity with the given unique name, label and
    /// direct types (used when the crowd confirms a value missing from the
    /// KB). Returns the existing id if the name is already taken.
    pub fn add_entity(&mut self, name: &str, label: &str, types: &[ClassId]) -> ResourceId {
        if let Some(r) = self.resource_by_name(name) {
            for &t in types {
                self.add_type(r, t);
            }
            return r;
        }
        let r = ResourceId::from_index(self.resources.intern(name));
        debug_assert_eq!(r.index(), self.labels.len());
        self.version += 1;
        self.record(|_| DeltaOp::Entity {
            name: name.to_string(),
            label: label.to_string(),
        });
        self.labels.push(label.to_string());
        self.label_index.insert(label, r);
        self.direct_types.push(Vec::new());
        self.types_closure.push(Vec::new());
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        for &t in types {
            self.add_type(r, t);
        }
        r
    }

    /// Assert that `r` has (possibly additional) direct type `t`,
    /// maintaining the type closure and ENT sets. Returns whether the
    /// assertion was new (mirrors [`Kb::add_fact`]).
    pub fn add_type(&mut self, r: ResourceId, t: ClassId) -> bool {
        if self.direct_types[r.index()].contains(&t) {
            return false;
        }
        self.version += 1;
        self.record(|kb| DeltaOp::Type {
            resource: kb.resource_name(r).to_string(),
            class: kb.class_name(t).to_string(),
        });
        self.direct_types[r.index()].push(t);
        let mut cs = vec![t.0];
        cs.extend(self.class_hier.ancestors(t.0).map(|(a, _)| a));
        for c in cs {
            let c = ClassId(c);
            if !self.types_closure[r.index()].contains(&c) {
                self.types_closure[r.index()].push(c);
                if self.class_entities.len() <= c.index() {
                    self.class_entities.resize_with(c.index() + 1, Vec::new);
                }
                push_unique(&mut self.class_entities[c.index()], r);
            }
        }
        true
    }
}

fn push_unique<T: PartialEq + Copy>(v: &mut Vec<T>, x: T) {
    if !v.contains(&x) {
        v.push(x);
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::KbBuilder;
    use crate::query::Object;

    #[test]
    fn counts_and_names() {
        let mut b = KbBuilder::new().with_name("mini");
        let country = b.class("country");
        let capital = b.class("capital");
        let has_capital = b.property("hasCapital");
        let italy = b.entity("Italy", &[country]);
        let rome = b.entity("Rome", &[capital]);
        b.fact(italy, has_capital, rome);
        let kb = b.finalize();

        assert_eq!(kb.name(), "mini");
        assert_eq!(kb.num_entities(), 2);
        assert_eq!(kb.num_classes(), 2);
        assert_eq!(kb.num_properties(), 1);
        assert_eq!(kb.num_facts(), 1);
        assert_eq!(kb.class_name(country), "country");
        assert_eq!(kb.property_name(has_capital), "hasCapital");
        assert_eq!(kb.label_of(italy), "Italy");
        assert_eq!(kb.resource_name(rome), "Rome");
    }

    #[test]
    fn type_closure_through_hierarchy() {
        let mut b = KbBuilder::new();
        let location = b.class("location");
        let capital = b.class("capital");
        b.subclass(capital, location).unwrap();
        let rome = b.entity("Rome", &[capital]);
        let kb = b.finalize();

        assert!(kb.has_type(rome, capital));
        assert!(kb.has_type(rome, location));
        assert_eq!(kb.entities_of_class(location), &[rome]);
        assert_eq!(kb.class_size(capital), 1);
    }

    #[test]
    fn property_ent_sets_fold_up() {
        let mut b = KbBuilder::new();
        let c = b.class("thing");
        let located_in = b.property("locatedIn");
        let capital_of = b.property("capitalOf");
        b.subproperty(capital_of, located_in).unwrap();
        let rome = b.entity("Rome", &[c]);
        let italy = b.entity("Italy", &[c]);
        b.fact(rome, capital_of, italy);
        let kb = b.finalize();

        // capitalOf(rome, italy) implies rome ∈ subENT(locatedIn).
        assert_eq!(kb.subjects_of_property(located_in), &[rome]);
        assert_eq!(kb.objects_of_property(located_in), &[italy]);
        assert_eq!(kb.subjects_of_property(capital_of), &[rome]);
    }

    #[test]
    fn enrichment_fact_is_visible() {
        let mut b = KbBuilder::new();
        let country = b.class("country");
        let capital = b.class("capital");
        let has_capital = b.property("hasCapital");
        let sa = b.entity("S. Africa", &[country]);
        let pretoria = b.entity("Pretoria", &[capital]);
        let mut kb = b.finalize();

        assert!(!kb.holds(sa, has_capital, pretoria));
        assert!(kb.add_fact(sa, has_capital, pretoria));
        assert!(kb.holds(sa, has_capital, pretoria));
        // Idempotent.
        assert!(!kb.add_fact(sa, has_capital, pretoria));
        assert_eq!(kb.num_facts(), 1);
    }

    #[test]
    fn enrichment_entity_is_queryable() {
        let mut b = KbBuilder::new();
        let capital = b.class("capital");
        b.entity("Rome", &[capital]);
        let mut kb = b.finalize();

        let juneau = kb.add_entity("Juneau", "Juneau", &[capital]);
        assert!(kb.has_type(juneau, capital));
        assert_eq!(kb.resources_by_label("juneau"), &[juneau]);
        assert_eq!(kb.class_size(capital), 2);
        // Re-adding returns the same id.
        assert_eq!(kb.add_entity("Juneau", "Juneau", &[capital]), juneau);
    }

    #[test]
    fn version_moves_only_on_real_mutation() {
        let mut b = KbBuilder::new();
        let country = b.class("country");
        let capital = b.class("capital");
        let has_capital = b.property("hasCapital");
        let sa = b.entity("S. Africa", &[country]);
        let pretoria = b.entity("Pretoria", &[capital]);
        let mut kb = b.finalize();

        assert_eq!(kb.version(), 0, "finalize starts at version 0");
        assert!(kb.add_fact(sa, has_capital, pretoria));
        let v1 = kb.version();
        assert!(v1 > 0);
        // Idempotent re-add: results unchanged, version unchanged.
        assert!(!kb.add_fact(sa, has_capital, pretoria));
        assert_eq!(kb.version(), v1);
        // Re-adding an existing entity with an existing type: no change.
        kb.add_entity("Pretoria", "Pretoria", &[capital]);
        assert_eq!(kb.version(), v1);
        // A brand-new entity moves the version.
        kb.add_entity("Juneau", "Juneau", &[capital]);
        assert!(kb.version() > v1);
    }

    #[test]
    fn delta_capture_replays_to_identical_state_and_version() {
        let build = || {
            let mut b = KbBuilder::new();
            let person = b.class("person");
            let country = b.class("country");
            let nat = b.property("nationality");
            let rossi = b.entity("Rossi", &[person]);
            let italy = b.entity("Italy", &[country]);
            b.fact(rossi, nat, italy);
            b.finalize()
        };
        let mut live = build();
        live.begin_delta_capture();
        let pirlo = live.add_entity("Pirlo", "Pirlo", &[]);
        let person = live.class_by_name("person").unwrap();
        let nat = live.property_by_name("nationality").unwrap();
        let italy = live.resource_by_name("Italy").unwrap();
        live.add_type(pirlo, person);
        live.add_fact(pirlo, nat, italy);
        live.add_literal_fact(pirlo, nat, "italian");
        // No-op re-adds must not be recorded.
        live.add_fact(pirlo, nat, italy);
        live.add_entity("Pirlo", "Pirlo", &[person]);
        let delta = live.take_delta();
        assert_eq!(delta.len(), 4);

        let mut replayed = build();
        let changed = replayed.apply_delta(&delta).unwrap();
        assert_eq!(changed, 4);
        assert_eq!(replayed.version(), live.version());
        assert_eq!(
            crate::ntriples::to_string(&replayed),
            crate::ntriples::to_string(&live)
        );
        // Applying again is idempotent on state but not an error.
        assert_eq!(replayed.apply_delta(&delta).unwrap(), 0);
    }

    #[test]
    fn apply_delta_rejects_unknown_schema_names() {
        use crate::journal::{DeltaOp, EnrichmentDelta};
        let mut b = KbBuilder::new();
        b.class("person");
        let mut kb = b.finalize();
        let delta = EnrichmentDelta {
            ops: vec![DeltaOp::Type {
                resource: "ghost".into(),
                class: "person".into(),
            }],
        };
        let err = kb.apply_delta(&delta).unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }

    #[test]
    fn apply_delta_resolves_plain_names_through_canonical_iris() {
        use crate::journal::{DeltaOp, EnrichmentDelta};
        // A checkpoint reload renames enriched entities to their IRI
        // form; deltas captured before the reload still replay.
        let mut b = KbBuilder::new();
        let person = b.class("person");
        let country = b.class("country");
        let nat = b.property("nationality");
        let rossi = b.entity("Rossi", &[person]);
        let italy = b.entity("Italy", &[country]);
        b.fact(rossi, nat, italy);
        let mut live = b.finalize();
        live.add_entity("New Town", "New Town", &[]);
        let mut target =
            crate::ntriples::parse("reloaded", &crate::ntriples::to_string(&live)).unwrap();
        assert!(target.resource_by_name("New Town").is_none());
        assert!(target.resource_by_name("kb:New%20Town").is_some());
        let delta = EnrichmentDelta {
            ops: vec![DeltaOp::Fact {
                subject: "New Town".into(),
                property: "kb:nationality".into(),
                object: "Italy".into(),
            }],
        };
        assert_eq!(target.apply_delta(&delta).unwrap(), 1);
    }

    #[test]
    fn literal_facts_round_trip() {
        let mut b = KbBuilder::new();
        let person = b.class("person");
        let height = b.property("hasHeight");
        let rossi = b.entity("Rossi", &[person]);
        b.literal_fact(rossi, height, "1.78");
        let kb = b.finalize();

        let facts = kb.facts_of(rossi);
        assert_eq!(facts.len(), 1);
        match facts[0].1 {
            Object::Literal(l) => assert_eq!(kb.literal_value(l), "1.78"),
            Object::Resource(_) => panic!("expected literal"),
        }
    }
}
