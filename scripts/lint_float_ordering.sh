#!/usr/bin/env bash
# Workspace convention (DESIGN.md §5d): float orderings go through
# f64::total_cmp. `partial_cmp` on floats panics on NaN when unwrapped
# and, worse, can silently corrupt BinaryHeap/sort order when a NaN maps
# to `None`/`Equal`. This lint fails on any `partial_cmp` call in
# non-test source under crates/*/src and src/.
#
# Legitimate non-float uses are rare in this codebase; if one appears,
# add it to the allowlist below with a justification.
set -euo pipefail

cd "$(dirname "$0")/.."

# Allowlisted files (exact repo-relative paths), one per line.
ALLOW=""

fail=0
while IFS= read -r hit; do
  file=${hit%%:*}
  case "$ALLOW" in
    *"$file"*) continue ;;
  esac
  if [ "$fail" -eq 0 ]; then
    echo "error: \`partial_cmp\` in non-test code — use f64::total_cmp (DESIGN.md §5d):" >&2
  fi
  echo "  $hit" >&2
  fail=1
done < <(grep -rn --include='*.rs' '\.partial_cmp(' crates/*/src src 2>/dev/null || true)

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "float-ordering lint: OK (no partial_cmp in non-test code)"
