//! Edit-stream generation: deterministic [`TableDelta`]s for the
//! incremental-cleaning benchmarks (DESIGN.md §5j).
//!
//! A stream models what a live table actually receives — corrupt-style
//! in-place upserts (a donor row with an occasional fresh typo), appends
//! of new rows, and deletes — sized as a fraction of the table. Every
//! edit is in range by construction against the row count the table has
//! when the delta is applied in order, and the whole stream is a pure
//! function of the seed.

use katara_table::{Table, TableDelta, TableEdit, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for one generated edit stream.
#[derive(Debug, Clone)]
pub struct EditStreamConfig {
    /// Fraction of the current table's rows receiving one edit each
    /// (at least one edit is always generated).
    pub edit_rate: f64,
    /// Weight of in-place upserts (donor row over an existing row).
    pub w_upsert: f64,
    /// Weight of appends (donor row past the end).
    pub w_append: f64,
    /// Weight of deletes.
    pub w_delete: f64,
    /// Probability that an upsert/append carries a fresh typo in one
    /// cell, the way corrupt-style streams do.
    pub typo_rate: f64,
}

impl Default for EditStreamConfig {
    fn default() -> Self {
        EditStreamConfig {
            edit_rate: 0.01,
            w_upsert: 0.7,
            w_append: 0.15,
            w_delete: 0.15,
            typo_rate: 0.2,
        }
    }
}

/// Generate a deterministic edit stream for `current`, drawing upsert
/// and append content from `source` rows (typically the clean table, or
/// `current` itself for churn-style streams).
pub fn edit_stream(
    current: &Table,
    source: &Table,
    config: &EditStreamConfig,
    seed: u64,
) -> TableDelta {
    assert_eq!(
        current.num_columns(),
        source.num_columns(),
        "donor table must share the schema"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut delta = TableDelta::default();
    let mut nrows = current.num_rows();
    let edits = ((current.num_rows() as f64 * config.edit_rate).round() as usize).max(1);
    let total = config.w_upsert + config.w_append + config.w_delete;
    for _ in 0..edits {
        let roll = rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
        if roll < config.w_delete && nrows > 0 {
            delta.edits.push(TableEdit::Delete {
                row: rng.random_range(0..nrows),
            });
            nrows -= 1;
        } else {
            let append = roll < config.w_delete + config.w_append || nrows == 0;
            let row = if append {
                nrows
            } else {
                rng.random_range(0..nrows)
            };
            delta.edits.push(TableEdit::Upsert {
                row,
                cells: donor_cells(source, config, &mut rng),
            });
            if append {
                nrows += 1;
            }
        }
    }
    delta
}

/// One donor row's cells, with an occasional single-cell typo.
fn donor_cells(source: &Table, config: &EditStreamConfig, rng: &mut StdRng) -> Vec<Value> {
    let row = rng.random_range(0..source.num_rows().max(1));
    let mut cells: Vec<Value> = (0..source.num_columns())
        .map(|c| source.cell(row, c).clone())
        .collect();
    if rng.random_bool(config.typo_rate) {
        let col = rng.random_range(0..cells.len());
        if let Some(text) = cells[col].as_str() {
            cells[col] = Value::from_cell(&typo(text, rng));
        }
    }
    cells
}

/// Swap two adjacent characters (the dominant corruption of the paper's
/// typo model); short strings are returned unchanged.
fn typo(text: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = text.chars().collect();
    if chars.len() < 2 {
        return text.to_string();
    }
    let i = rng.random_range(0..chars.len() - 1);
    let mut out = chars;
    out.swap(i, i + 1);
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: usize) -> Table {
        let mut t = Table::with_opaque_columns("t", 2);
        for i in 0..rows {
            t.push_text_row(&[&format!("left{i}"), &format!("right{i}")]);
        }
        t
    }

    #[test]
    fn streams_are_deterministic_and_sized_by_rate() {
        let t = table(200);
        let cfg = EditStreamConfig {
            edit_rate: 0.05,
            ..EditStreamConfig::default()
        };
        let a = edit_stream(&t, &t, &cfg, 9);
        let b = edit_stream(&t, &t, &cfg, 9);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same stream");
        assert_eq!(a.len(), 10, "5% of 200 rows");
        let c = edit_stream(&t, &t, &cfg, 10);
        assert_ne!(format!("{a:?}"), format!("{c:?}"), "seed moves the stream");
    }

    #[test]
    fn every_generated_stream_applies_cleanly() {
        for seed in 0..20 {
            let mut t = table(30);
            let delta = edit_stream(
                &t.clone(),
                &t.clone(),
                &EditStreamConfig {
                    edit_rate: 0.4,
                    ..EditStreamConfig::default()
                },
                seed,
            );
            delta
                .apply(&mut t)
                .unwrap_or_else(|e| panic!("seed {seed}: generated edit out of range: {e}"));
        }
    }

    #[test]
    fn tiny_tables_still_get_one_edit() {
        let t = table(3);
        let delta = edit_stream(
            &t,
            &t,
            &EditStreamConfig {
                edit_rate: 0.001,
                ..EditStreamConfig::default()
            },
            1,
        );
        assert_eq!(delta.len(), 1);
    }

    #[test]
    fn typo_swaps_adjacent_characters() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = typo("Rome", &mut rng);
        assert_ne!(t, "Rome");
        let mut sorted_a: Vec<char> = t.chars().collect();
        let mut sorted_b: Vec<char> = "Rome".chars().collect();
        sorted_a.sort();
        sorted_b.sort();
        assert_eq!(sorted_a, sorted_b, "a typo permutes, never loses, chars");
        assert_eq!(typo("x", &mut rng), "x");
    }
}
