//! Class and property hierarchies (`subClassOf` / `subPropertyOf`).
//!
//! A [`Hierarchy`] is a DAG over dense `u32` node indexes with parent edges.
//! KATARA needs three operations, all of which are answered from a
//! transitive closure precomputed when the KB is finalized:
//!
//! * *is-a*: is `a` equal to or a (transitive) descendant of `b`? — used by
//!   the pattern match semantics (§3.2, conditions 2–3);
//! * *ancestors with distance*: every (strict) ancestor of `a` together with
//!   the minimal number of edges to reach it — used by `Q_types`
//!   (`rdfs:type/rdfs:subClassOf*`) and by the evaluation's supertype
//!   partial credit `1/(s+1)` (§7.1);
//! * *distance*: the minimal step count from `a` up to `b`.

use std::collections::HashMap;

use crate::columnar::gallop_search_by_key;
use crate::error::KbError;

/// A DAG of `subClassOf`-style edges over dense node indexes, with a
/// precomputed ancestor closure stored CSR-style: one flat arena of
/// `(ancestor, dist)` pairs plus per-node offsets. Each node's slice is
/// sorted by ancestor id, so membership and distance are binary searches
/// and enumeration is deterministic (ascending by ancestor) — the old
/// per-node `HashMap` enumerated in hash order, which varied per process.
#[derive(Debug, Default, Clone)]
pub struct Hierarchy {
    /// `parents[n]` = direct parents of node `n`.
    parents: Vec<Vec<u32>>,
    /// Node `n`'s strict ancestors are
    /// `closure_data[closure_off[n]..closure_off[n + 1]]`, sorted by
    /// ancestor id. Rebuilt by [`Hierarchy::rebuild_closure`].
    closure_off: Vec<usize>,
    closure_data: Vec<(u32, u32)>,
    closure_dirty: bool,
}

impl Hierarchy {
    /// An empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensure node `n` exists (nodes are dense, so this grows the arena).
    pub fn ensure_node(&mut self, n: u32) {
        let need = n as usize + 1;
        if self.parents.len() < need {
            self.parents.resize_with(need, Vec::new);
            self.closure_dirty = true;
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if the hierarchy has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Declare `child subXOf parent`. Returns an error if this would create
    /// a cycle: [`KbError::SelfLoop`] for a trivial `n subXOf n`,
    /// [`KbError::HierarchyCycle`] (carrying the rejected edge) when the
    /// edge would close a longer cycle. Either way the hierarchy is left
    /// unchanged, so a lenient caller can record the dropped edge and
    /// continue — the audit pass in [`crate::builder::KbBuilder`] does
    /// exactly that.
    pub fn add_edge(&mut self, child: u32, parent: u32, kind: &'static str) -> Result<(), KbError> {
        if child == parent {
            return Err(KbError::SelfLoop { kind, node: child });
        }
        self.ensure_node(child.max(parent));
        // Reject if `child` is already an ancestor of `parent`: adding the
        // edge would close the cycle, so the edge itself is what we report.
        if self.reaches(parent, child) {
            return Err(KbError::HierarchyCycle {
                kind,
                child,
                parent,
            });
        }
        if !self.parents[child as usize].contains(&parent) {
            self.parents[child as usize].push(parent);
            self.closure_dirty = true;
        }
        Ok(())
    }

    /// Direct parents of `n` (empty slice for roots and unknown nodes).
    pub fn direct_parents(&self, n: u32) -> &[u32] {
        self.parents
            .get(n as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// BFS reachability over parent edges, used during construction (before
    /// the closure exists) for cycle checks.
    fn reaches(&self, from: u32, to: u32) -> bool {
        if from as usize >= self.parents.len() {
            return false;
        }
        let mut stack = vec![from];
        let mut seen = vec![false; self.parents.len()];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if std::mem::replace(&mut seen[n as usize], true) {
                continue;
            }
            stack.extend_from_slice(&self.parents[n as usize]);
        }
        false
    }

    /// Recompute the ancestor closure. Must be called after the last
    /// `add_edge` and before any query; [`crate::builder::KbBuilder`] does
    /// this in `finalize`.
    pub fn rebuild_closure(&mut self) {
        self.closure_off = Vec::with_capacity(self.parents.len() + 1);
        self.closure_data.clear();
        self.closure_off.push(0);
        let mut dist: HashMap<u32, u32> = HashMap::new();
        for n in 0..self.parents.len() {
            dist.clear();
            // BFS upward from n.
            let mut frontier: Vec<u32> = self.parents[n].clone();
            let mut d = 1u32;
            let mut next = Vec::new();
            while !frontier.is_empty() {
                for &p in &frontier {
                    if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(p) {
                        e.insert(d);
                        next.extend_from_slice(&self.parents[p as usize]);
                    }
                }
                frontier.clear();
                std::mem::swap(&mut frontier, &mut next);
                d += 1;
            }
            let start = self.closure_data.len();
            self.closure_data
                .extend(dist.iter().map(|(&p, &dd)| (p, dd)));
            self.closure_data[start..].sort_unstable_by_key(|&(p, _)| p);
            self.closure_off.push(self.closure_data.len());
        }
        self.closure_dirty = false;
    }

    fn assert_closed(&self) {
        debug_assert!(
            !self.closure_dirty,
            "hierarchy queried before rebuild_closure()"
        );
    }

    /// Node `a`'s closure slice, empty for unknown nodes or when the
    /// closure has not been rebuilt since the node was added.
    fn closure_slice(&self, a: u32) -> &[(u32, u32)] {
        let a = a as usize;
        if a + 1 < self.closure_off.len() {
            &self.closure_data[self.closure_off[a]..self.closure_off[a + 1]]
        } else {
            &[]
        }
    }

    /// True iff `a == b` or `b` is a transitive ancestor of `a`.
    pub fn is_a(&self, a: u32, b: u32) -> bool {
        self.assert_closed();
        a == b || gallop_search_by_key(self.closure_slice(a), &b, |&(p, _)| p).is_ok()
    }

    /// Minimal number of edges from `a` up to `b`; `Some(0)` if equal,
    /// `None` if `b` is not an ancestor.
    pub fn distance(&self, a: u32, b: u32) -> Option<u32> {
        self.assert_closed();
        if a == b {
            return Some(0);
        }
        let slice = self.closure_slice(a);
        gallop_search_by_key(slice, &b, |&(p, _)| p)
            .ok()
            .map(|i| slice[i].1)
    }

    /// All strict ancestors of `a` with their minimal distances, in
    /// ascending ancestor-id order.
    pub fn ancestors(&self, a: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.ancestors_slice(a).iter().copied()
    }

    /// [`Self::ancestors`] as a borrowed slice (sorted by ancestor id) —
    /// the zero-cost form the query layer merges from.
    pub fn ancestors_slice(&self, a: u32) -> &[(u32, u32)] {
        self.assert_closed();
        self.closure_slice(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(edges: &[(u32, u32)]) -> Hierarchy {
        let mut h = Hierarchy::new();
        for &(c, p) in edges {
            h.add_edge(c, p, "test").unwrap();
        }
        h.rebuild_closure();
        h
    }

    #[test]
    fn single_edge_is_a() {
        // capital(0) subClassOf location(1)
        let h = h(&[(0, 1)]);
        assert!(h.is_a(0, 1));
        assert!(h.is_a(0, 0));
        assert!(!h.is_a(1, 0));
        assert_eq!(h.distance(0, 1), Some(1));
        assert_eq!(h.distance(0, 0), Some(0));
        assert_eq!(h.distance(1, 0), None);
    }

    #[test]
    fn transitive_chain_with_distance() {
        // 0 -> 1 -> 2 -> 3
        let h = h(&[(0, 1), (1, 2), (2, 3)]);
        assert!(h.is_a(0, 3));
        assert_eq!(h.distance(0, 3), Some(3));
        assert_eq!(h.distance(0, 2), Some(2));
        assert_eq!(h.distance(1, 3), Some(2));
    }

    #[test]
    fn diamond_takes_min_distance() {
        // 0 -> {1, 2}, 1 -> 3, 2 -> 3, and also 0 -> 3 directly.
        let h = h(&[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]);
        assert_eq!(h.distance(0, 3), Some(1));
    }

    #[test]
    fn cycles_rejected() {
        let mut h = Hierarchy::new();
        h.add_edge(0, 1, "subClassOf").unwrap();
        h.add_edge(1, 2, "subClassOf").unwrap();
        let err = h.add_edge(2, 0, "subClassOf").unwrap_err();
        // The error names the exact edge that would have closed the cycle.
        assert!(matches!(
            err,
            KbError::HierarchyCycle {
                child: 2,
                parent: 0,
                ..
            }
        ));
        // A self-edge is a distinct, trivial kind of cycle.
        let err = h.add_edge(5, 5, "subClassOf").unwrap_err();
        assert!(matches!(err, KbError::SelfLoop { node: 5, .. }));
        // Rejection leaves the hierarchy untouched.
        assert!(h.direct_parents(2).is_empty());
    }

    #[test]
    fn duplicate_edges_are_deduped() {
        let mut h = Hierarchy::new();
        h.add_edge(0, 1, "t").unwrap();
        h.add_edge(0, 1, "t").unwrap();
        assert_eq!(h.direct_parents(0), &[1]);
    }

    #[test]
    fn ancestors_enumerates_all() {
        let h = h(&[(0, 1), (1, 2)]);
        let mut anc: Vec<(u32, u32)> = h.ancestors(0).collect();
        anc.sort_unstable();
        assert_eq!(anc, vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn ancestors_are_sorted_by_id() {
        // 0 -> {5, 2}, 2 -> 9: insertion order is scrambled but the CSR
        // closure enumerates ascending by ancestor id, deterministically.
        let h = h(&[(0, 5), (0, 2), (2, 9)]);
        let anc: Vec<(u32, u32)> = h.ancestors(0).collect();
        assert_eq!(anc, vec![(2, 1), (5, 1), (9, 2)]);
        assert_eq!(h.ancestors_slice(0), &[(2, 1), (5, 1), (9, 2)]);
    }

    #[test]
    fn unknown_nodes_are_roots() {
        let h = h(&[(0, 1)]);
        assert!(h.is_a(1, 1));
        assert!(h.ancestors(1).next().is_none());
        assert!(h.direct_parents(99).is_empty());
    }
}
