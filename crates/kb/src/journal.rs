//! Durable KB enrichment: an append-only, checksummed write-ahead
//! journal with checkpoint/compaction and crash recovery.
//!
//! The serving path (see `katara-serve`) clones the KB per request so
//! enrichment never leaks between tenants — which also means every
//! crowd-confirmed fact dies with the request. This module makes
//! enrichment durable without giving up that isolation: the pipeline
//! emits an [`EnrichmentDelta`] (captured by
//! [`Kb::begin_delta_capture`]), the daemon appends it to a [`Journal`]
//! and fsyncs *before* acking, and only then applies it to the shared
//! store via [`Kb::apply_delta`].
//!
//! On-disk layout inside the journal directory:
//!
//! * `checkpoint.nt` — the full store serialized as N-Triples, preceded
//!   by one comment line `# katara-checkpoint/v1 seq=S version=V
//!   name=N` carrying the journal sequence number and KB version the
//!   checkpoint covers. The N-Triples parser skips `#` lines, so the
//!   file loads with plain [`ntriples::parse`].
//! * `journal.log` — a 24-byte header (`KATARAJ1` magic, the
//!   checkpoint sequence this journal continues from, the base
//!   version), then length-prefixed records: `[len: u32 LE]
//!   [crc32: u32 LE] [payload]`. The payload is a line-oriented text
//!   encoding of one delta (`d\tSEQ`, then one `E`/`T`/`F`/`L` line
//!   per op, fields tab-separated and backslash-escaped).
//! * `checkpoint.nt.tmp` — transient; checkpoints are written here,
//!   fsynced, then atomically renamed over `checkpoint.nt`.
//!
//! Failure model (DESIGN.md §5h):
//!
//! * **Transient append/fsync errors** retry with bounded backoff; each
//!   attempt first rewinds the file to the last committed length so a
//!   half-written record never precedes a committed one.
//! * **Torn tails** (crash mid-append, power loss) are detected on
//!   replay by the length prefix and CRC and truncated — the quarantine
//!   convention from lenient ingestion, applied to our own files.
//! * **Stale records** (crash between checkpoint rename and journal
//!   reset) carry sequence numbers at or below the checkpoint's and are
//!   skipped on replay.
//! * **Unrecoverable writers** (a rewind itself fails) mark the journal
//!   broken: appends refuse with [`JournalError::Broken`], the daemon
//!   degrades (206 + `enrichment_dropped`) instead of lying about
//!   durability.
//!
//! The [`FaultWriter`] injects seeded write/fsync failures, short
//! writes, and silent torn writes underneath a [`Journal`], mirroring
//! `katara_crowd::FaultPlan`, so every branch above is exercised
//! in-process; real-process SIGKILL coverage lives in the CLI's
//! crash-recovery suite.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::error::KbError;
use crate::ntriples;
use crate::store::Kb;

/// Magic bytes opening every journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"KATARAJ1";
/// Header length: magic + checkpoint seq (u64 LE) + base version (u64 LE).
pub const JOURNAL_HEADER_LEN: u64 = 24;
/// Largest record payload [`scan`] will accept; anything bigger is
/// treated as a corrupt length prefix (and tail-truncated).
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

const CHECKPOINT_FILE: &str = "checkpoint.nt";
const CHECKPOINT_TMP: &str = "checkpoint.nt.tmp";
const JOURNAL_FILE: &str = "journal.log";
const META_PREFIX: &str = "# katara-checkpoint/v1 ";

// ---- CRC32 (IEEE, reflected) ------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes` — the checksum
/// guarding every journal record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- Delta model ------------------------------------------------------

/// One enrichment write, recorded by name (not id) so it replays onto
/// any store that knows the referenced schema.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeltaOp {
    /// A brand-new entity (`Kb::add_entity` that actually created one).
    Entity {
        /// Canonical (unique) resource name.
        name: String,
        /// Human-readable label.
        label: String,
    },
    /// A new direct type assertion (`Kb::add_type` that changed state).
    Type {
        /// Canonical resource name.
        resource: String,
        /// Class name.
        class: String,
    },
    /// A new resource-object fact (`Kb::add_fact` that changed state).
    Fact {
        /// Subject resource name.
        subject: String,
        /// Property name.
        property: String,
        /// Object resource name.
        object: String,
    },
    /// A new literal fact (`Kb::add_literal_fact` that changed state).
    LiteralFact {
        /// Subject resource name.
        subject: String,
        /// Property name.
        property: String,
        /// The literal value, verbatim.
        literal: String,
    },
}

/// An ordered batch of enrichment writes — what one cleaning run
/// learned. Applying a delta to the store it was captured from (or any
/// byte-identical one) via [`Kb::apply_delta`] reproduces the exact
/// post-enrichment state, including the version counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnrichmentDelta {
    /// The writes, in capture order. Order matters: entity creation
    /// must precede facts that reference it.
    pub ops: Vec<DeltaOp>,
}

impl EnrichmentDelta {
    /// Number of recorded writes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing was learned.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

// ---- Errors -----------------------------------------------------------

/// Everything that can go wrong journaling or recovering.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// An I/O failure that survived the bounded retries.
    Io(io::Error),
    /// A structurally invalid journal or record (bad magic, bad escape,
    /// unknown op tag). Torn *tails* are not errors — they truncate.
    Corrupt {
        /// What was wrong, for diagnostics.
        detail: String,
    },
    /// The checkpoint file is missing, unreadable, or fails to parse.
    Checkpoint {
        /// What was wrong, for diagnostics.
        detail: String,
    },
    /// A replayed op referenced a name the store does not know.
    Apply(KbError),
    /// A fault-plan rate outside `[0, 1]`.
    InvalidRate {
        /// Which knob.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The journal was marked broken after an unrecoverable writer
    /// failure; appends are refused until the daemon restarts.
    Broken,
    /// Recovery verification failed: the recovered store does not
    /// round-trip to the same bytes.
    VerifyMismatch,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Corrupt { detail } => write!(f, "corrupt journal: {detail}"),
            JournalError::Checkpoint { detail } => write!(f, "bad checkpoint: {detail}"),
            JournalError::Apply(e) => write!(f, "replayed op failed to apply: {e}"),
            JournalError::InvalidRate { what, value } => {
                write!(f, "{what} must be within [0, 1], got {value}")
            }
            JournalError::Broken => write!(f, "journal is broken (previous writer failure)"),
            JournalError::VerifyMismatch => {
                write!(f, "recovered store does not round-trip byte-identically")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Apply(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<KbError> for JournalError {
    fn from(e: KbError) -> Self {
        JournalError::Apply(e)
    }
}

// ---- Record encoding --------------------------------------------------

fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_field(s: &str) -> Result<String, JournalError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(JournalError::Corrupt {
                    detail: format!("bad escape sequence \\{other:?}"),
                })
            }
        }
    }
    Ok(out)
}

/// Encode one delta as a record payload (no framing).
fn encode_payload(seq: u64, delta: &EnrichmentDelta) -> Vec<u8> {
    let mut out = format!("d\t{seq}\n");
    for op in &delta.ops {
        match op {
            DeltaOp::Entity { name, label } => {
                out.push_str(&format!(
                    "E\t{}\t{}\n",
                    escape_field(name),
                    escape_field(label)
                ));
            }
            DeltaOp::Type { resource, class } => {
                out.push_str(&format!(
                    "T\t{}\t{}\n",
                    escape_field(resource),
                    escape_field(class)
                ));
            }
            DeltaOp::Fact {
                subject,
                property,
                object,
            } => {
                out.push_str(&format!(
                    "F\t{}\t{}\t{}\n",
                    escape_field(subject),
                    escape_field(property),
                    escape_field(object)
                ));
            }
            DeltaOp::LiteralFact {
                subject,
                property,
                literal,
            } => {
                out.push_str(&format!(
                    "L\t{}\t{}\t{}\n",
                    escape_field(subject),
                    escape_field(property),
                    escape_field(literal)
                ));
            }
        }
    }
    out.into_bytes()
}

/// Frame a payload: `[len][crc][payload]`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn decode_payload(bytes: &[u8]) -> Result<(u64, EnrichmentDelta), JournalError> {
    let text = std::str::from_utf8(bytes).map_err(|e| JournalError::Corrupt {
        detail: format!("record payload is not UTF-8: {e}"),
    })?;
    let mut lines = text.lines();
    let head = lines.next().ok_or_else(|| JournalError::Corrupt {
        detail: "empty record payload".to_string(),
    })?;
    let seq = head
        .strip_prefix("d\t")
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| JournalError::Corrupt {
            detail: format!("bad record head {head:?}"),
        })?;
    let mut delta = EnrichmentDelta::default();
    for line in lines {
        let mut parts = line.split('\t');
        let tag = parts.next().unwrap_or("");
        let mut field = |what: &'static str| -> Result<String, JournalError> {
            parts
                .next()
                .ok_or_else(|| JournalError::Corrupt {
                    detail: format!("op line missing {what}: {line:?}"),
                })
                .and_then(unescape_field)
        };
        let op = match tag {
            "E" => DeltaOp::Entity {
                name: field("name")?,
                label: field("label")?,
            },
            "T" => DeltaOp::Type {
                resource: field("resource")?,
                class: field("class")?,
            },
            "F" => DeltaOp::Fact {
                subject: field("subject")?,
                property: field("property")?,
                object: field("object")?,
            },
            "L" => DeltaOp::LiteralFact {
                subject: field("subject")?,
                property: field("property")?,
                literal: field("literal")?,
            },
            other => {
                return Err(JournalError::Corrupt {
                    detail: format!("unknown op tag {other:?}"),
                })
            }
        };
        if parts.next().is_some() {
            return Err(JournalError::Corrupt {
                detail: format!("trailing fields on op line {line:?}"),
            });
        }
        delta.ops.push(op);
    }
    Ok((seq, delta))
}

// ---- Scanning (replay side) -------------------------------------------

/// A structural scan of raw journal bytes: the longest intact prefix.
///
/// Never panics on arbitrary input (the fuzz suite's contract). A
/// malformed header yields an error; a malformed or torn *record* ends
/// the scan — everything before it is returned, everything from its
/// first byte on counts as `truncated_bytes`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalScan {
    /// Sequence number of the checkpoint this journal continues from.
    pub checkpoint_seq: u64,
    /// KB version at that checkpoint.
    pub base_version: u64,
    /// Intact, CRC-verified records in file order.
    pub records: Vec<(u64, EnrichmentDelta)>,
    /// Byte offset of the end of the last intact record (where a
    /// repairing writer should truncate to).
    pub intact_len: u64,
    /// Bytes after `intact_len` (the torn tail).
    pub truncated_bytes: u64,
}

/// Scan raw journal bytes into the longest intact record prefix.
pub fn scan(bytes: &[u8]) -> Result<JournalScan, JournalError> {
    if bytes.len() < JOURNAL_HEADER_LEN as usize {
        return Err(JournalError::Corrupt {
            detail: format!("journal shorter than its header ({} bytes)", bytes.len()),
        });
    }
    if &bytes[..8] != JOURNAL_MAGIC {
        return Err(JournalError::Corrupt {
            detail: "bad journal magic".to_string(),
        });
    }
    let checkpoint_seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let base_version = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let mut out = JournalScan {
        checkpoint_seq,
        base_version,
        intact_len: JOURNAL_HEADER_LEN,
        ..JournalScan::default()
    };
    let mut pos = JOURNAL_HEADER_LEN as usize;
    loop {
        if pos + 8 > bytes.len() {
            break; // torn or absent frame header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break; // implausible length: treat as a torn tail
        }
        let start = pos + 8;
        let Some(end) = start.checked_add(len as usize) else {
            break;
        };
        if end > bytes.len() {
            break; // payload torn
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break; // bit flip or torn overwrite: stop at the last good record
        }
        let Ok(record) = decode_payload(payload) else {
            break; // checksum ok but structurally bad: same treatment
        };
        out.records.push(record);
        pos = end;
        out.intact_len = pos as u64;
    }
    out.truncated_bytes = (bytes.len() as u64).saturating_sub(out.intact_len);
    Ok(out)
}

// ---- Checkpoint files -------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
struct CheckpointMeta {
    seq: u64,
    version: u64,
    name: String,
}

fn checkpoint_text(kb: &Kb, seq: u64) -> String {
    format!(
        "{META_PREFIX}seq={seq} version={} name={}\n{}",
        kb.version(),
        escape_field(kb.name()),
        ntriples::to_string(kb)
    )
}

fn parse_checkpoint(text: &str) -> Result<(Kb, CheckpointMeta), JournalError> {
    let first = text.lines().next().unwrap_or("");
    let meta_body = first
        .strip_prefix(META_PREFIX)
        .ok_or_else(|| JournalError::Checkpoint {
            detail: format!("missing meta line (got {first:?})"),
        })?;
    let mut seq = None;
    let mut version = None;
    let mut name = None;
    for part in meta_body.split(' ') {
        if let Some(v) = part.strip_prefix("seq=") {
            seq = v.parse::<u64>().ok();
        } else if let Some(v) = part.strip_prefix("version=") {
            version = v.parse::<u64>().ok();
        } else if let Some(v) = part.strip_prefix("name=") {
            name = unescape_field(v).ok();
        }
    }
    let (Some(seq), Some(version), Some(name)) = (seq, version, name) else {
        return Err(JournalError::Checkpoint {
            detail: format!("incomplete meta line {first:?}"),
        });
    };
    // The parser skips `#` lines, so the whole file (meta included) is
    // valid N-Triples input.
    let mut kb = ntriples::parse(&name, text).map_err(|e| JournalError::Checkpoint {
        detail: format!("checkpoint does not parse: {e}"),
    })?;
    kb.advance_version_to(version);
    Ok((kb, CheckpointMeta { seq, version, name }))
}

// ---- Writer abstraction + fault injection -----------------------------

/// The journal's view of its backing file: positional append, fsync,
/// and truncate-back. Implemented by [`File`] for production and by
/// [`FaultWriter`] for the crash-fault harness.
pub trait JournalFile: Send {
    /// Append `bytes` at the current end (write-all semantics).
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Flush data to stable storage (`fsync`/`fdatasync`).
    fn sync(&mut self) -> io::Result<()>;
    /// Truncate to `len` bytes and reposition the cursor there — the
    /// repair step after a failed append.
    fn rewind_to(&mut self, len: u64) -> io::Result<()>;
}

impl JournalFile for File {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }

    fn rewind_to(&mut self, len: u64) -> io::Result<()> {
        self.set_len(len)?;
        self.seek(SeekFrom::Start(len)).map(|_| ())
    }
}

/// An in-memory [`JournalFile`] — handy for tests that want to corrupt
/// or inspect the raw bytes without touching disk.
#[derive(Debug, Default)]
pub struct MemFile {
    /// The file contents.
    pub data: Vec<u8>,
}

impl JournalFile for MemFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.data.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn rewind_to(&mut self, len: u64) -> io::Result<()> {
        self.data.truncate(len as usize);
        Ok(())
    }
}

/// Seeded fault plan for journal writes, mirroring
/// `katara_crowd::FaultPlan`: rates in `[0, 1]`, all-zero default, and
/// the same seed always yields the same fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WriteFaultPlan {
    /// Probability an append fails cleanly (no bytes written).
    pub write_error_rate: f64,
    /// Probability an append writes only a prefix, then errors — the
    /// transient partial failure the rewind-and-retry path repairs.
    pub short_write_rate: f64,
    /// Probability an append writes only a prefix but *claims success* —
    /// the power-loss-shaped corruption only replay-time CRCs catch.
    pub torn_write_rate: f64,
    /// Probability an fsync fails.
    pub sync_error_rate: f64,
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
}

impl WriteFaultPlan {
    /// True when the plan injects nothing (the default).
    pub fn is_inert(&self) -> bool {
        self.write_error_rate == 0.0
            && self.short_write_rate == 0.0
            && self.torn_write_rate == 0.0
            && self.sync_error_rate == 0.0
    }

    /// Reject rates outside `[0, 1]` (and NaN).
    pub fn validate(&self) -> Result<(), JournalError> {
        for (what, value) in [
            ("write_error_rate", self.write_error_rate),
            ("short_write_rate", self.short_write_rate),
            ("torn_write_rate", self.torn_write_rate),
            ("sync_error_rate", self.sync_error_rate),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(JournalError::InvalidRate { what, value });
            }
        }
        Ok(())
    }
}

/// Counts of faults a [`FaultWriter`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Clean append failures (no bytes written).
    pub write_errors: u64,
    /// Partial appends that errored.
    pub short_writes: u64,
    /// Partial appends that claimed success.
    pub torn_writes: u64,
    /// fsync failures.
    pub sync_errors: u64,
}

/// A [`JournalFile`] wrapper that injects seeded faults per a
/// [`WriteFaultPlan`]. `rewind_to` always passes through — it is the
/// repair path, and a harness that breaks the repair path only tests
/// its own despair.
pub struct FaultWriter {
    inner: Box<dyn JournalFile>,
    plan: WriteFaultPlan,
    rng: u64,
    counters: FaultCounters,
}

impl FaultWriter {
    /// Wrap `inner` with a validated plan.
    pub fn new(
        inner: Box<dyn JournalFile>,
        plan: WriteFaultPlan,
    ) -> Result<FaultWriter, JournalError> {
        plan.validate()?;
        let rng = plan.seed;
        Ok(FaultWriter {
            inner,
            plan,
            rng,
            counters: FaultCounters::default(),
        })
    }

    /// Faults injected so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: tiny, seedable, good enough for a fault schedule.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, rate: f64) -> bool {
        rate > 0.0 && ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
    }

    fn prefix_len(&mut self, total: usize) -> usize {
        if total == 0 {
            0
        } else {
            (self.next_u64() as usize) % total
        }
    }
}

impl JournalFile for FaultWriter {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.chance(self.plan.write_error_rate) {
            self.counters.write_errors += 1;
            return Err(io::Error::other("injected write error"));
        }
        if self.chance(self.plan.short_write_rate) {
            self.counters.short_writes += 1;
            let n = self.prefix_len(bytes.len());
            self.inner.append(&bytes[..n])?;
            return Err(io::Error::other("injected short write"));
        }
        if self.chance(self.plan.torn_write_rate) {
            self.counters.torn_writes += 1;
            let n = self.prefix_len(bytes.len());
            // Lie: persist a prefix, report success. Only the replay
            // CRC will notice.
            return self.inner.append(&bytes[..n]);
        }
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.chance(self.plan.sync_error_rate) {
            self.counters.sync_errors += 1;
            return Err(io::Error::other("injected fsync error"));
        }
        self.inner.sync()
    }

    fn rewind_to(&mut self, len: u64) -> io::Result<()> {
        self.inner.rewind_to(len)
    }
}

// ---- The journal ------------------------------------------------------

/// Journal tuning knobs.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Retries after a failed append+fsync (total attempts = 1 + this).
    pub append_retries: u32,
    /// Backoff before retry `n` is `retry_backoff * n`.
    pub retry_backoff: Duration,
    /// Auto-compact ([`Journal::maybe_compact`]) once this many records
    /// accumulated since the last checkpoint.
    pub compact_every: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            append_retries: 3,
            retry_backoff: Duration::from_millis(1),
            compact_every: 1024,
        }
    }
}

/// Cumulative journal activity, exposed so callers (the daemon) can
/// publish deltas to their own metrics sink — `katara-kb` itself stays
/// dependency-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records durably appended (fsynced) and acked.
    pub appends: u64,
    /// fsync calls issued (journal and checkpoint files).
    pub fsyncs: u64,
    /// Retry attempts after transient append/fsync failures.
    pub retries: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Records replayed at open.
    pub replayed_records: u64,
}

/// What recovery found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Sequence number the checkpoint covered.
    pub checkpoint_seq: u64,
    /// KB version at the checkpoint.
    pub checkpoint_version: u64,
    /// Journal records applied on top of the checkpoint.
    pub replayed_records: u64,
    /// Individual ops inside those records.
    pub replayed_ops: u64,
    /// Records skipped as stale (seq at or below the checkpoint's —
    /// crash residue between checkpoint rename and journal reset).
    pub skipped_stale: u64,
    /// Torn-tail bytes discarded (0 on a clean shutdown).
    pub truncated_bytes: u64,
    /// Highest sequence number applied (checkpoint seq if none).
    pub last_seq: u64,
    /// `version()` of the recovered store.
    pub final_version: u64,
}

/// The write-ahead journal for one KB's enrichment stream.
///
/// Open with [`Journal::open`] (which replays any existing state into
/// the caller's store), append deltas with [`Journal::append`] —
/// durable when it returns `Ok` — and compact with
/// [`Journal::checkpoint`] / [`Journal::maybe_compact`].
pub struct Journal {
    dir: PathBuf,
    file: Box<dyn JournalFile>,
    /// Bytes of journal file known durable — the rewind target after a
    /// failed append.
    committed_len: u64,
    /// Sequence number the next append will carry.
    next_seq: u64,
    /// Sequence covered by the on-disk checkpoint.
    checkpoint_seq: u64,
    config: JournalConfig,
    stats: JournalStats,
    broken: bool,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("dir", &self.dir)
            .field("committed_len", &self.committed_len)
            .field("next_seq", &self.next_seq)
            .field("checkpoint_seq", &self.checkpoint_seq)
            .field("broken", &self.broken)
            .finish_non_exhaustive()
    }
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync makes the rename itself durable. Best-effort on
    // platforms where opening a directory fails.
    if let Ok(d) = File::open(dir) {
        d.sync_all()?;
    }
    Ok(())
}

impl Journal {
    /// Open (or create) the journal in `dir` and bring `kb` to the
    /// journal-prescribed state.
    ///
    /// * Fresh directory: a checkpoint of `kb` is written first, then
    ///   `kb` is **reloaded from that checkpoint** — so the live store
    ///   and every future recovery share byte-identical provenance
    ///   (same serialization, same id assignment).
    /// * Existing directory: the checkpoint is loaded, intact journal
    ///   records after it replay onto it, any torn tail is truncated on
    ///   disk, and the journal auto-compacts so a freshly restarted
    ///   daemon reports zero lag.
    pub fn open(
        dir: &Path,
        kb: &mut Kb,
        config: JournalConfig,
    ) -> Result<(Journal, ReplayReport), JournalError> {
        fs::create_dir_all(dir)?;
        let checkpoint_path = dir.join(CHECKPOINT_FILE);
        let mut report = ReplayReport::default();
        if checkpoint_path.exists() {
            let (recovered, rep) = recover_dir(dir)?;
            *kb = recovered;
            report = rep;
        } else {
            report.checkpoint_version = kb.version();
        }
        let mut journal = Journal {
            dir: dir.to_path_buf(),
            file: Box::new(open_journal_file(dir)?),
            committed_len: 0,
            next_seq: report.last_seq.max(report.checkpoint_seq) + 1,
            checkpoint_seq: report.checkpoint_seq,
            config,
            stats: JournalStats {
                replayed_records: report.replayed_records,
                ..JournalStats::default()
            },
            broken: false,
        };
        // Compact whatever we replayed (or write the first checkpoint):
        // after open, the checkpoint alone reproduces the store, the
        // journal is empty (lag 0), and `kb` has been reloaded from the
        // checkpoint bytes — live and recovered stores share provenance.
        journal.checkpoint(kb)?;
        journal.stats.checkpoints = 0; // boot compaction is bookkeeping, not activity
        report.final_version = kb.version();
        Ok((journal, report))
    }

    /// Append one delta; when this returns `Ok`, the record is fsynced.
    /// Empty deltas are a no-op. Transient failures retry up to
    /// `config.append_retries` times with linear backoff, rewinding to
    /// the last committed length first so the file never holds a
    /// half-record before a committed one.
    pub fn append(&mut self, delta: &EnrichmentDelta) -> Result<u64, JournalError> {
        if self.broken {
            return Err(JournalError::Broken);
        }
        if delta.is_empty() {
            return Ok(self.next_seq - 1);
        }
        let seq = self.next_seq;
        let bytes = frame(&encode_payload(seq, delta));
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..=self.config.append_retries {
            if attempt > 0 {
                self.stats.retries += 1;
                std::thread::sleep(self.config.retry_backoff * attempt);
            }
            let result = self.file.append(&bytes).and_then(|()| {
                self.stats.fsyncs += 1;
                self.file.sync()
            });
            match result {
                Ok(()) => {
                    self.committed_len += bytes.len() as u64;
                    self.next_seq += 1;
                    self.stats.appends += 1;
                    return Ok(seq);
                }
                Err(e) => {
                    // Scrub the partial write before retrying (or
                    // giving up): unacked records must be cleanly
                    // absent, not torn.
                    if let Err(rewind_err) = self.file.rewind_to(self.committed_len) {
                        self.broken = true;
                        return Err(JournalError::Io(rewind_err));
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(JournalError::Io(last_err.unwrap_or_else(|| {
            io::Error::other("append failed with no underlying error")
        })))
    }

    /// Write a checkpoint of `kb`, reset the journal behind it, and
    /// **reload `kb` from the checkpoint bytes**.
    ///
    /// The reload is what makes recovery byte-identical by
    /// construction: the live store and the on-disk base are the same
    /// parse of the same bytes, so deltas recorded from here on replay
    /// onto exactly the state they were captured against (same names,
    /// same id assignment, same serialization). Without it, a plain
    /// entity name like `Madrid` serializes as `<kb:Madrid>` and a
    /// post-crash replay of a later delta would miss it.
    ///
    /// The checkpoint is durable before the journal is touched (tmp
    /// write + fsync + atomic rename + dir fsync); a crash between the
    /// rename and the journal reset leaves stale records that replay
    /// skips by sequence number.
    pub fn checkpoint(&mut self, kb: &mut Kb) -> Result<(), JournalError> {
        if self.broken {
            return Err(JournalError::Broken);
        }
        let seq = self.next_seq - 1;
        let text = write_checkpoint_file(&self.dir, kb, seq, &mut self.stats)?;
        let (loaded, _meta) = parse_checkpoint(&text)?;
        *kb = loaded;
        self.checkpoint_seq = seq;
        if let Err(e) = self.reset_journal_file(seq, kb.version()) {
            self.broken = true;
            return Err(e);
        }
        self.stats.checkpoints += 1;
        Ok(())
    }

    fn reset_journal_file(&mut self, seq: u64, version: u64) -> Result<(), JournalError> {
        self.file.rewind_to(0)?;
        let mut header = Vec::with_capacity(JOURNAL_HEADER_LEN as usize);
        header.extend_from_slice(JOURNAL_MAGIC);
        header.extend_from_slice(&seq.to_le_bytes());
        header.extend_from_slice(&version.to_le_bytes());
        self.file.append(&header)?;
        self.stats.fsyncs += 1;
        self.file.sync()?;
        self.committed_len = JOURNAL_HEADER_LEN;
        Ok(())
    }

    /// Checkpoint (see [`Journal::checkpoint`], including the reload of
    /// `kb`) if `compact_every` records accumulated since the last one.
    /// Returns whether a checkpoint was written.
    pub fn maybe_compact(&mut self, kb: &mut Kb) -> Result<bool, JournalError> {
        if self.lag() >= self.config.compact_every {
            self.checkpoint(kb)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Records appended since the last checkpoint — what would replay
    /// on a crash right now.
    pub fn lag(&self) -> u64 {
        (self.next_seq - 1).saturating_sub(self.checkpoint_seq)
    }

    /// Highest sequence number durably appended (0 = none yet).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Sequence number the on-disk checkpoint covers.
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// True after an unrecoverable writer failure; appends are refused.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Swap the backing file for a fault-injecting wrapper (testing
    /// only — there is deliberately no way to unwrap it).
    pub fn set_fault_plan(&mut self, plan: WriteFaultPlan) -> Result<(), JournalError> {
        plan.validate()?;
        let inner = std::mem::replace(&mut self.file, Box::new(MemFile::default()));
        self.file = Box::new(FaultWriter::new(inner, plan)?);
        Ok(())
    }
}

fn open_journal_file(dir: &Path) -> io::Result<File> {
    OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(dir.join(JOURNAL_FILE))
}

fn write_checkpoint_file(
    dir: &Path,
    kb: &Kb,
    seq: u64,
    stats: &mut JournalStats,
) -> Result<String, JournalError> {
    let tmp = dir.join(CHECKPOINT_TMP);
    let text = checkpoint_text(kb, seq);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        stats.fsyncs += 1;
        f.sync_data()?;
    }
    fs::rename(&tmp, dir.join(CHECKPOINT_FILE))?;
    sync_dir(dir)?;
    Ok(text)
}

/// Read-only recovery: load the checkpoint, replay intact journal
/// records after it, and return the recovered store plus a report.
/// Nothing on disk is modified (torn tails are reported, not
/// truncated) — safe to run against a live daemon's directory.
pub fn recover_dir(dir: &Path) -> Result<(Kb, ReplayReport), JournalError> {
    let checkpoint_path = dir.join(CHECKPOINT_FILE);
    let text = fs::read_to_string(&checkpoint_path).map_err(|e| JournalError::Checkpoint {
        detail: format!("cannot read {}: {e}", checkpoint_path.display()),
    })?;
    let (mut kb, meta) = parse_checkpoint(&text)?;
    let mut report = ReplayReport {
        checkpoint_seq: meta.seq,
        checkpoint_version: meta.version,
        last_seq: meta.seq,
        ..ReplayReport::default()
    };
    let journal_path = dir.join(JOURNAL_FILE);
    if journal_path.exists() {
        let mut bytes = Vec::new();
        File::open(&journal_path)?.read_to_end(&mut bytes)?;
        if !bytes.is_empty() {
            let scanned = scan(&bytes)?;
            report.truncated_bytes = scanned.truncated_bytes;
            for (seq, delta) in scanned.records {
                if seq <= meta.seq {
                    report.skipped_stale += 1;
                    continue;
                }
                report.replayed_ops += kb.apply_delta(&delta)? as u64;
                report.replayed_records += 1;
                report.last_seq = seq;
            }
        }
    }
    report.final_version = kb.version();
    Ok((kb, report))
}

/// [`recover_dir`] plus a round-trip check: the recovered store must
/// serialize, re-parse, and re-serialize to identical bytes.
pub fn verify_dir(dir: &Path) -> Result<(Kb, ReplayReport), JournalError> {
    let (kb, report) = recover_dir(dir)?;
    let first = ntriples::to_string(&kb);
    let reparsed = ntriples::parse(kb.name(), &first).map_err(|e| JournalError::Checkpoint {
        detail: format!("recovered store does not re-parse: {e}"),
    })?;
    if ntriples::to_string(&reparsed) != first {
        return Err(JournalError::VerifyMismatch);
    }
    Ok((kb, report))
}

impl Kb {
    /// Recover the KB a journal directory prescribes: checkpoint plus
    /// intact journal suffix. Read-only; see [`recover_dir`].
    pub fn recover(dir: &Path) -> Result<(Kb, ReplayReport), JournalError> {
        recover_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KbBuilder;

    fn mini_kb() -> Kb {
        let mut b = KbBuilder::new().with_name("mini");
        let person = b.class("person");
        let country = b.class("country");
        let nationality = b.property("nationality");
        let rossi = b.entity("Rossi", &[person]);
        let italy = b.entity("Italy", &[country]);
        b.fact(rossi, nationality, italy);
        b.finalize()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "katara-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_delta(n: u64) -> EnrichmentDelta {
        EnrichmentDelta {
            ops: vec![
                DeltaOp::Entity {
                    name: format!("P{n}"),
                    label: format!("P{n}"),
                },
                DeltaOp::Type {
                    resource: format!("P{n}"),
                    class: "person".to_string(),
                },
                DeltaOp::Fact {
                    subject: format!("P{n}"),
                    property: "nationality".to_string(),
                    object: "Italy".to_string(),
                },
                DeltaOp::LiteralFact {
                    subject: format!("P{n}"),
                    property: "nationality".to_string(),
                    literal: format!("lit {n}\twith\nescapes\\"),
                },
            ],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn payload_round_trip_with_escapes() {
        let delta = sample_delta(7);
        let payload = encode_payload(42, &delta);
        let (seq, decoded) = decode_payload(&payload).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(decoded, delta);
    }

    #[test]
    fn scan_returns_intact_prefix_on_torn_tail() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(JOURNAL_MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        for seq in 1..=3u64 {
            bytes.extend_from_slice(&frame(&encode_payload(seq, &sample_delta(seq))));
        }
        let full = scan(&bytes).unwrap();
        assert_eq!(full.records.len(), 3);
        assert_eq!(full.truncated_bytes, 0);
        // Tear the last record: drop 5 bytes.
        let torn = &bytes[..bytes.len() - 5];
        let scanned = scan(torn).unwrap();
        assert_eq!(scanned.records.len(), 2);
        assert!(scanned.truncated_bytes > 0);
        // Flip a bit in the last record's payload.
        let mut flipped = bytes.clone();
        let n = flipped.len();
        flipped[n - 3] ^= 0x40;
        let scanned = scan(&flipped).unwrap();
        assert_eq!(scanned.records.len(), 2, "CRC catches the flip");
    }

    #[test]
    fn scan_rejects_bad_magic_and_short_header() {
        assert!(matches!(
            scan(b"NOTMAGIC0000000000000000"),
            Err(JournalError::Corrupt { .. })
        ));
        assert!(matches!(
            scan(b"KATARAJ1"),
            Err(JournalError::Corrupt { .. })
        ));
    }

    #[test]
    fn open_append_recover_round_trip() {
        let dir = temp_dir("round-trip");
        let mut kb = mini_kb();
        let (mut journal, report) = Journal::open(&dir, &mut kb, JournalConfig::default()).unwrap();
        assert_eq!(report.replayed_records, 0);
        // `open` reloaded the store from its checkpoint, so names are
        // the canonical serialized ones (`kb:` prefix on plain names).
        let mut capture = kb.clone();
        capture.begin_delta_capture();
        let p = capture.add_entity("Pirlo", "Pirlo", &[]);
        let person = capture.class_by_name("kb:person").unwrap();
        let nat = capture.property_by_name("kb:nationality").unwrap();
        let italy = capture.resource_by_name("kb:Italy").unwrap();
        capture.add_type(p, person);
        capture.add_fact(p, nat, italy);
        let delta = capture.take_delta();
        assert_eq!(delta.len(), 3);

        journal.append(&delta).unwrap();
        kb.apply_delta(&delta).unwrap();
        assert_eq!(journal.lag(), 1);

        let (recovered, rep) = Kb::recover(&dir).unwrap();
        assert_eq!(rep.replayed_records, 1);
        assert_eq!(rep.final_version, kb.version());
        assert_eq!(ntriples::to_string(&recovered), ntriples::to_string(&kb));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_resets_lag_and_recovery_still_matches() {
        let dir = temp_dir("checkpoint");
        let mut kb = mini_kb();
        let (mut journal, _) = Journal::open(&dir, &mut kb, JournalConfig::default()).unwrap();
        for n in 0..5 {
            let mut capture = kb.clone();
            capture.begin_delta_capture();
            capture.add_entity(&format!("P{n}"), &format!("P{n}"), &[]);
            let delta = capture.take_delta();
            journal.append(&delta).unwrap();
            kb.apply_delta(&delta).unwrap();
        }
        assert_eq!(journal.lag(), 5);
        journal.checkpoint(&mut kb).unwrap();
        assert_eq!(journal.lag(), 0);
        let (recovered, rep) = Kb::recover(&dir).unwrap();
        assert_eq!(rep.replayed_records, 0, "all compacted away");
        assert_eq!(ntriples::to_string(&recovered), ntriples::to_string(&kb));
        assert_eq!(recovered.version(), kb.version());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_replays_and_compacts_to_zero_lag() {
        let dir = temp_dir("reopen");
        let mut kb = mini_kb();
        let (mut journal, _) = Journal::open(&dir, &mut kb, JournalConfig::default()).unwrap();
        let mut capture = kb.clone();
        capture.begin_delta_capture();
        capture.add_entity("Totti", "Totti", &[]);
        let delta = capture.take_delta();
        journal.append(&delta).unwrap();
        kb.apply_delta(&delta).unwrap();
        let live = ntriples::to_string(&kb);
        drop(journal);

        // "Restart": a fresh store is brought up from the directory.
        let mut kb2 = mini_kb();
        let (journal2, report) = Journal::open(&dir, &mut kb2, JournalConfig::default()).unwrap();
        assert_eq!(report.replayed_records, 1);
        assert_eq!(journal2.lag(), 0, "boot auto-compacts");
        assert_eq!(ntriples::to_string(&kb2), live);
        assert_eq!(kb2.version(), kb.version());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_write_errors_retry_and_succeed() {
        let dir = temp_dir("retry");
        let mut kb = mini_kb();
        let (mut journal, _) = Journal::open(&dir, &mut kb, JournalConfig::default()).unwrap();
        journal
            .set_fault_plan(WriteFaultPlan {
                write_error_rate: 0.4,
                seed: 7,
                ..WriteFaultPlan::default()
            })
            .unwrap();
        for n in 0..20 {
            let mut capture = kb.clone();
            capture.begin_delta_capture();
            capture.add_entity(&format!("R{n}"), &format!("R{n}"), &[]);
            let delta = capture.take_delta();
            // With 3 retries at 40% failure, all 20 should make it
            // through (p(fail) per record ≈ 0.4^4 ≈ 2.6%; seed 7 happens
            // to clear them all — the point is determinism, not luck).
            if journal.append(&delta).is_ok() {
                kb.apply_delta(&delta).unwrap();
            }
        }
        assert!(journal.stats().retries > 0, "faults actually fired");
        let (recovered, _) = Kb::recover(&dir).unwrap();
        assert_eq!(ntriples::to_string(&recovered), ntriples::to_string(&kb));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_writes_never_leave_torn_committed_state() {
        let dir = temp_dir("short");
        let mut kb = mini_kb();
        let (mut journal, _) = Journal::open(&dir, &mut kb, JournalConfig::default()).unwrap();
        journal
            .set_fault_plan(WriteFaultPlan {
                short_write_rate: 0.5,
                seed: 1234,
                ..WriteFaultPlan::default()
            })
            .unwrap();
        let mut acked = 0u64;
        for n in 0..30 {
            let mut capture = kb.clone();
            capture.begin_delta_capture();
            capture.add_entity(&format!("S{n}"), &format!("S{n}"), &[]);
            let delta = capture.take_delta();
            if journal.append(&delta).is_ok() {
                kb.apply_delta(&delta).unwrap();
                acked += 1;
            }
        }
        assert!(acked > 0);
        // Every acked record recovers; rewind scrubbed the rest.
        let (recovered, rep) = Kb::recover(&dir).unwrap();
        assert_eq!(rep.replayed_records, acked);
        assert_eq!(rep.truncated_bytes, 0, "rewind leaves no torn bytes");
        assert_eq!(ntriples::to_string(&recovered), ntriples::to_string(&kb));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_writes_truncate_to_the_intact_prefix_on_replay() {
        let dir = temp_dir("torn");
        let mut kb = mini_kb();
        let (mut journal, _) = Journal::open(&dir, &mut kb, JournalConfig::default()).unwrap();
        // A torn write claims success, poisoning the tail from that
        // point on. Everything before the first tear must recover.
        journal
            .set_fault_plan(WriteFaultPlan {
                torn_write_rate: 0.2,
                seed: 99,
                ..WriteFaultPlan::default()
            })
            .unwrap();
        let mut pre_tear: Option<String> = None;
        let mut tear_seen = false;
        for n in 0..10 {
            let mut capture = kb.clone();
            capture.begin_delta_capture();
            capture.add_entity(&format!("T{n}"), &format!("T{n}"), &[]);
            let delta = capture.take_delta();
            journal.append(&delta).unwrap();
            kb.apply_delta(&delta).unwrap();
            let stats_before = tear_seen;
            tear_seen = journal_has_tear(&dir, &journal);
            if !tear_seen && !stats_before {
                pre_tear = Some(ntriples::to_string(&kb));
            }
        }
        assert!(tear_seen, "seed 99 must tear at least once in 10 appends");
        let (recovered, rep) = Kb::recover(&dir).unwrap();
        assert!(rep.truncated_bytes > 0);
        assert_eq!(
            ntriples::to_string(&recovered),
            pre_tear.expect("at least one clean append before the tear"),
            "recovery yields exactly the pre-tear prefix"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    fn journal_has_tear(dir: &Path, journal: &Journal) -> bool {
        let bytes = fs::read(dir.join(JOURNAL_FILE)).unwrap();
        let scanned = scan(&bytes).unwrap();
        scanned.truncated_bytes > 0 || (scanned.records.len() as u64) < journal.lag()
    }

    #[test]
    fn sync_failures_exhausting_retries_refuse_the_append() {
        let dir = temp_dir("sync-fail");
        let mut kb = mini_kb();
        let (mut journal, _) = Journal::open(&dir, &mut kb, JournalConfig::default()).unwrap();
        journal
            .set_fault_plan(WriteFaultPlan {
                sync_error_rate: 1.0,
                seed: 1,
                ..WriteFaultPlan::default()
            })
            .unwrap();
        let mut capture = kb.clone();
        capture.begin_delta_capture();
        capture.add_entity("Nope", "Nope", &[]);
        let delta = capture.take_delta();
        let err = journal.append(&delta).unwrap_err();
        assert!(matches!(err, JournalError::Io(_)), "{err}");
        assert!(!journal.is_broken(), "rewind worked; journal still usable");
        // The unacked record is cleanly absent.
        let (recovered, rep) = Kb::recover(&dir).unwrap();
        assert_eq!(rep.replayed_records, 0);
        assert_eq!(ntriples::to_string(&recovered), ntriples::to_string(&kb));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_plan_mirrors_crowd_conventions() {
        assert!(WriteFaultPlan::default().is_inert());
        let knobs = [
            WriteFaultPlan {
                write_error_rate: 0.1,
                ..WriteFaultPlan::default()
            },
            WriteFaultPlan {
                short_write_rate: 0.1,
                ..WriteFaultPlan::default()
            },
            WriteFaultPlan {
                torn_write_rate: 0.1,
                ..WriteFaultPlan::default()
            },
            WriteFaultPlan {
                sync_error_rate: 0.1,
                ..WriteFaultPlan::default()
            },
        ];
        for plan in knobs {
            assert!(!plan.is_inert());
            assert!(plan.validate().is_ok());
        }
        let bad = WriteFaultPlan {
            torn_write_rate: 1.5,
            ..WriteFaultPlan::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(JournalError::InvalidRate {
                what: "torn_write_rate",
                ..
            })
        ));
    }

    #[test]
    fn fault_writer_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut w = FaultWriter::new(
                Box::new(MemFile::default()),
                WriteFaultPlan {
                    write_error_rate: 0.3,
                    short_write_rate: 0.2,
                    sync_error_rate: 0.25,
                    seed,
                    ..WriteFaultPlan::default()
                },
            )
            .unwrap();
            let mut outcomes = Vec::new();
            for _ in 0..50 {
                outcomes.push(w.append(b"0123456789").is_ok());
                outcomes.push(w.sync().is_ok());
            }
            (outcomes, w.counters())
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(run(42).0, run(43).0, "different seed, different schedule");
        let (_, counters) = run(42);
        assert!(counters.write_errors > 0);
        assert!(counters.short_writes > 0);
        assert!(counters.sync_errors > 0);
    }

    #[test]
    fn stale_records_after_checkpoint_are_skipped() {
        let dir = temp_dir("stale");
        let mut kb = mini_kb();
        let (mut journal, _) = Journal::open(&dir, &mut kb, JournalConfig::default()).unwrap();
        let mut capture = kb.clone();
        capture.begin_delta_capture();
        capture.add_entity("Zola", "Zola", &[]);
        let delta = capture.take_delta();
        journal.append(&delta).unwrap();
        kb.apply_delta(&delta).unwrap();
        journal.checkpoint(&mut kb).unwrap();
        // Simulate the crash window: rewrite the journal to contain the
        // pre-checkpoint record again (seq 1 <= checkpoint seq 1).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(JOURNAL_MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&frame(&encode_payload(1, &delta)));
        fs::write(dir.join(JOURNAL_FILE), &bytes).unwrap();
        let (recovered, rep) = Kb::recover(&dir).unwrap();
        assert_eq!(rep.skipped_stale, 1);
        assert_eq!(rep.replayed_records, 0);
        assert_eq!(ntriples::to_string(&recovered), ntriples::to_string(&kb));
        assert_eq!(recovered.version(), kb.version());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_dir_round_trips() {
        let dir = temp_dir("verify");
        let mut kb = mini_kb();
        let (mut journal, _) = Journal::open(&dir, &mut kb, JournalConfig::default()).unwrap();
        let mut capture = kb.clone();
        capture.begin_delta_capture();
        capture.add_entity("Vieri", "Vieri", &[]);
        let delta = capture.take_delta();
        journal.append(&delta).unwrap();
        kb.apply_delta(&delta).unwrap();
        let (kb2, rep) = verify_dir(&dir).unwrap();
        assert_eq!(rep.replayed_records, 1);
        assert_eq!(ntriples::to_string(&kb2), ntriples::to_string(&kb));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn maybe_compact_triggers_on_threshold() {
        let dir = temp_dir("auto-compact");
        let mut kb = mini_kb();
        let config = JournalConfig {
            compact_every: 3,
            ..JournalConfig::default()
        };
        let (mut journal, _) = Journal::open(&dir, &mut kb, config).unwrap();
        for n in 0..3 {
            let mut capture = kb.clone();
            capture.begin_delta_capture();
            capture.add_entity(&format!("C{n}"), &format!("C{n}"), &[]);
            let delta = capture.take_delta();
            journal.append(&delta).unwrap();
            kb.apply_delta(&delta).unwrap();
        }
        assert_eq!(journal.lag(), 3);
        assert!(journal.maybe_compact(&mut kb).unwrap());
        assert_eq!(journal.lag(), 0);
        assert!(!journal.maybe_compact(&mut kb).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn broken_journal_refuses_appends() {
        struct DoomedRewind;
        impl JournalFile for DoomedRewind {
            fn append(&mut self, _: &[u8]) -> io::Result<()> {
                Err(io::Error::other("append always fails"))
            }
            fn sync(&mut self) -> io::Result<()> {
                Ok(())
            }
            fn rewind_to(&mut self, _: u64) -> io::Result<()> {
                Err(io::Error::other("rewind also fails"))
            }
        }
        let dir = temp_dir("broken");
        let mut kb = mini_kb();
        let (mut journal, _) = Journal::open(&dir, &mut kb, JournalConfig::default()).unwrap();
        journal.file = Box::new(DoomedRewind);
        let mut capture = kb.clone();
        capture.begin_delta_capture();
        capture.add_entity("Baggio", "Baggio", &[]);
        let delta = capture.take_delta();
        assert!(matches!(journal.append(&delta), Err(JournalError::Io(_))));
        assert!(journal.is_broken());
        assert!(matches!(journal.append(&delta), Err(JournalError::Broken)));
        assert!(matches!(
            journal.checkpoint(&mut kb),
            Err(JournalError::Broken)
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_display_and_sources() {
        let e = JournalError::from(io::Error::other("disk on fire"));
        assert!(e.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&e).is_some());
        let e = JournalError::InvalidRate {
            what: "sync_error_rate",
            value: 2.0,
        };
        assert!(e.to_string().contains("sync_error_rate"));
        assert!(JournalError::Broken.to_string().contains("broken"));
    }
}
