//! String similarity (the paper's "domain-specific similarity function ≈").
//!
//! KATARA matches table cells to KB labels through Lucene (LARQ) with a 0.7
//! threshold. We emulate that with a hybrid of normalized Levenshtein
//! similarity and character-trigram Jaccard over *normalized* strings
//! (lower-cased, trimmed, inner whitespace collapsed). Either metric alone
//! is a poor Lucene stand-in: Levenshtein under-scores token reordering,
//! Jaccard under-scores very short strings. Taking the max of the two keeps
//! both the "typo" and the "token soup" match families above the threshold.

/// Normalize a string for label comparison: trim, lowercase, collapse runs
/// of whitespace into a single space.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_was_space = true; // leading spaces are dropped
    for ch in s.trim().chars() {
        if ch.is_whitespace() {
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_was_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Damerau-Levenshtein (optimal string alignment) edit distance between two
/// strings, over `char`s. Adjacent transpositions count as one edit, which
/// matches Lucene's fuzzy matching behaviour.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Three-row DP (previous-previous row needed for transpositions).
    let w = b.len() + 1;
    let mut prev2 = vec![0usize; w];
    let mut prev: Vec<usize> = (0..w).collect();
    let mut cur = vec![0usize; w];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let mut best = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            if i > 0 && j > 0 && ca == b[j - 1] && a[i - 1] == cb {
                best = best.min(prev2[j - 1] + 1);
            }
            cur[j + 1] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]`:
/// `1 - dist / max(len_a, len_b)`. Two empty strings are fully similar.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// The character trigrams of `s`, padded with two sentinel chars on each
/// side so short strings still produce several grams (standard n-gram
/// indexing practice; mirrors Lucene's `NGramTokenizer` behaviour closely
/// enough for threshold matching).
pub fn trigrams(s: &str) -> Vec<[char; 3]> {
    let padded: Vec<char> = std::iter::repeat_n('\u{2}', 2)
        .chain(s.chars())
        .chain(std::iter::repeat_n('\u{3}', 2))
        .collect();
    padded.windows(3).map(|w| [w[0], w[1], w[2]]).collect()
}

/// The *distinct* character trigrams of `s`, sorted. This is the set form
/// of [`trigrams`], represented as a sorted vec so set operations are
/// linear merges instead of hash probes.
pub fn sorted_trigrams(s: &str) -> Vec<[char; 3]> {
    let mut g = trigrams(s);
    g.sort_unstable();
    g.dedup();
    g
}

/// Jaccard similarity of two *sorted, deduplicated* trigram vectors (as
/// produced by [`sorted_trigrams`]) via a two-pointer intersection count.
/// Two empty sets are fully similar.
pub fn jaccard_sorted(a: &[[char; 3]], b: &[[char; 3]]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Jaccard similarity of the trigram *sets* of two strings.
pub fn trigram_jaccard(a: &str, b: &str) -> f64 {
    jaccard_sorted(&sorted_trigrams(a), &sorted_trigrams(b))
}

/// Hybrid similarity in `[0, 1]` over *already normalized* strings: the max
/// of normalized Levenshtein and trigram Jaccard.
pub fn similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    levenshtein_sim(a, b).max(trigram_jaccard(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basics() {
        assert_eq!(normalize("  Rome "), "rome");
        assert_eq!(normalize("S.   Africa"), "s. africa");
        assert_eq!(normalize("ITALY"), "italy");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("   "), "");
        assert_eq!(normalize("a\tb\nc"), "a b c");
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("rome", "dome"), 1);
        // Adjacent transposition is one edit (Damerau/OSA).
        assert_eq!(levenshtein("madrid", "madird"), 1);
        assert_eq!(levenshtein("ab", "ba"), 1);
    }

    #[test]
    fn levenshtein_sim_bounds() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("abc", "abc"), 1.0);
        assert_eq!(levenshtein_sim("abc", "xyz"), 0.0);
    }

    #[test]
    fn similarity_symmetric() {
        let pairs = [
            ("rome", "roma"),
            ("italy", "itlay"),
            ("pretoria", "p. eliz."),
        ];
        for (a, b) in pairs {
            let s1 = similarity(a, b);
            let s2 = similarity(b, a);
            assert!((s1 - s2).abs() < 1e-12, "asymmetric for {a}/{b}");
        }
    }

    #[test]
    fn typo_passes_paper_threshold() {
        // One-character typo in a medium-length string should count as a
        // match at the paper's 0.7 threshold.
        assert!(similarity("pretoria", "pretorai") >= 0.7);
        assert!(similarity("italy", "itly") >= 0.7);
        // Completely different strings should not.
        assert!(similarity("italy", "uruguay") < 0.7);
    }

    #[test]
    fn identical_is_one() {
        assert_eq!(similarity("madrid", "madrid"), 1.0);
    }

    #[test]
    fn trigrams_of_short_strings_pinned() {
        // Two sentinel chars on each side: an n-char string yields n + 2
        // windows of width 3. The empty string still produces the two
        // all-sentinel grams, so the gram index never sees an empty key set.
        assert_eq!(trigrams("").len(), 2);
        assert_eq!(trigrams("a").len(), 3);
        assert_eq!(trigrams("ab").len(), 4);
        // "" and "a" share no window (every gram of "a" contains 'a'), so
        // their Jaccard is exactly 0 — a well-defined number, never NaN,
        // because the padded gram sets are non-empty.
        assert_eq!(trigram_jaccard("", "a"), 0.0);
    }

    #[test]
    fn sorted_trigrams_dedups() {
        // "aaaa" has six padded windows but the gram [a,a,a] repeats.
        assert_eq!(trigrams("aaaa").len(), 6);
        assert_eq!(sorted_trigrams("aaaa").len(), 5);
        let g = sorted_trigrams("aaaa");
        assert!(g.windows(2).all(|w| w[0] < w[1]), "sorted + strict dedup");
    }

    #[test]
    fn jaccard_bounds() {
        assert!(trigram_jaccard("abc", "abc") > 0.99);
        assert_eq!(trigram_jaccard("", ""), 1.0);
        let j = trigram_jaccard("abcdef", "uvwxyz");
        assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn jaccard_sorted_matches_string_form() {
        for (a, b) in [("rome", "roma"), ("", "x"), ("ab", "ba"), ("aa", "aa")] {
            let expect = trigram_jaccard(a, b);
            let got = jaccard_sorted(&sorted_trigrams(a), &sorted_trigrams(b));
            assert!((expect - got).abs() < 1e-15, "{a}/{b}");
        }
    }
}
