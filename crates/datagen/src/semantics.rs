//! The semantic vocabulary shared by the world, the KB generators and the
//! ground-truth patterns.
//!
//! A [`SemanticType`] / [`SemanticRel`] is flavor-independent; each KB
//! flavor renders it under its own naming convention and hierarchy —
//! Yago-like uses lowercase WordNet-ish leaf names under a deep hierarchy,
//! DBpedia-like uses CamelCase ontology names under a flat one. Ground
//! truth is stored semantically and rendered per flavor at evaluation
//! time.

/// Which KB style to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KbFlavor {
    /// Deep hierarchy, many (noisy) fine-grained types, patchier relation
    /// coverage — models Yago (374K types).
    YagoLike,
    /// Flat, small ontology with higher relation coverage — models
    /// DBpedia (865 types).
    DbpediaLike,
}

impl KbFlavor {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            KbFlavor::YagoLike => "yago-like",
            KbFlavor::DbpediaLike => "dbpedia-like",
        }
    }
}

/// Semantic entity types of the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the documentation
pub enum SemanticType {
    Person,
    SoccerPlayer,
    Country,
    City,
    Capital,
    Club,
    League,
    State,
    StateCapital,
    University,
    Language,
    Continent,
    Stadium,
}

impl SemanticType {
    /// The most specific class name this type carries in a flavor.
    pub fn name(self, flavor: KbFlavor) -> &'static str {
        use SemanticType::*;
        match flavor {
            KbFlavor::YagoLike => match self {
                Person => "person",
                SoccerPlayer => "soccer_player",
                Country => "country",
                City => "city",
                Capital => "capital",
                Club => "soccer_club",
                League => "soccer_league",
                State => "us_state",
                StateCapital => "state_capital",
                University => "university",
                Language => "language",
                Continent => "continent",
                Stadium => "stadium",
            },
            KbFlavor::DbpediaLike => match self {
                Person => "Person",
                SoccerPlayer => "SoccerPlayer",
                Country => "Country",
                City => "Settlement",
                Capital => "CapitalCity",
                Club => "SoccerClub",
                League => "SoccerLeague",
                State => "AdministrativeRegion",
                StateCapital => "CapitalCity",
                University => "University",
                Language => "Language",
                Continent => "Continent",
                Stadium => "Stadium",
            },
        }
    }

    /// The flavor's superclass chain *above* the leaf name, most specific
    /// first. Yago-like is deep; DBpedia-like is at most one level.
    pub fn ancestors(self, flavor: KbFlavor) -> &'static [&'static str] {
        use SemanticType::*;
        match flavor {
            KbFlavor::YagoLike => match self {
                Person => &["living_thing", "entity"],
                SoccerPlayer => &["athlete", "person", "living_thing", "entity"],
                Country => &["administrative_district", "location", "entity"],
                City => &["populated_place", "location", "entity"],
                Capital => &["city", "populated_place", "location", "entity"],
                Club => &["organization", "entity"],
                League => &["organization", "entity"],
                State => &["administrative_district", "location", "entity"],
                StateCapital => &["capital", "city", "populated_place", "location", "entity"],
                University => &["educational_institution", "organization", "entity"],
                Language => &["abstraction", "entity"],
                Continent => &["location", "entity"],
                Stadium => &["facility", "location", "entity"],
            },
            KbFlavor::DbpediaLike => match self {
                Person => &["Agent"],
                SoccerPlayer => &["Person", "Agent"],
                Country | City | State | Continent | Stadium => &["Place"],
                Capital | StateCapital => &["Settlement", "Place"],
                Club | League | University => &["Organisation", "Agent"],
                Language => &["Work"],
            },
        }
    }

    /// All world types, for iteration.
    pub fn all() -> &'static [SemanticType] {
        use SemanticType::*;
        &[
            Person,
            SoccerPlayer,
            Country,
            City,
            Capital,
            Club,
            League,
            State,
            StateCapital,
            University,
            Language,
            Continent,
            Stadium,
        ]
    }
}

/// Semantic relationships of the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticRel {
    /// person → country.
    Nationality,
    /// country → capital city.
    HasCapital,
    /// person → city.
    BornIn,
    /// player → club.
    PlaysFor,
    /// city/club/university → country or state (the generic containment).
    LocatedIn,
    /// country → language.
    OfficialLanguage,
    /// university/city → state.
    InState,
    /// player → height literal.
    HasHeight,
    /// club → league.
    InLeague,
    /// state → its capital city.
    HasStateCapital,
    /// club → stadium.
    HasStadium,
}

impl SemanticRel {
    /// Property name in a flavor.
    pub fn name(self, flavor: KbFlavor) -> &'static str {
        use SemanticRel::*;
        match flavor {
            KbFlavor::YagoLike => match self {
                Nationality => "isCitizenOf",
                HasCapital => "hasCapital",
                BornIn => "wasBornIn",
                PlaysFor => "playsFor",
                LocatedIn => "isLocatedIn",
                OfficialLanguage => "hasOfficialLanguage",
                InState => "isInState",
                HasHeight => "hasHeight",
                InLeague => "playsInLeague",
                HasStateCapital => "hasCapital",
                HasStadium => "hasStadium",
            },
            KbFlavor::DbpediaLike => match self {
                Nationality => "nationality",
                HasCapital => "capital",
                BornIn => "birthPlace",
                PlaysFor => "team",
                LocatedIn => "location",
                OfficialLanguage => "officialLanguage",
                InState => "state",
                HasHeight => "height",
                InLeague => "league",
                HasStateCapital => "capital",
                HasStadium => "ground",
            },
        }
    }

    /// True if the object position is a literal (no KB resource).
    pub fn is_literal(self) -> bool {
        matches!(self, SemanticRel::HasHeight)
    }

    /// All relationships, for iteration.
    pub fn all() -> &'static [SemanticRel] {
        use SemanticRel::*;
        &[
            Nationality,
            HasCapital,
            BornIn,
            PlaysFor,
            LocatedIn,
            OfficialLanguage,
            InState,
            HasHeight,
            InLeague,
            HasStateCapital,
            HasStadium,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_differ_across_flavors() {
        assert_ne!(
            SemanticType::Country.name(KbFlavor::YagoLike),
            SemanticType::Country.name(KbFlavor::DbpediaLike)
        );
        assert_ne!(
            SemanticRel::Nationality.name(KbFlavor::YagoLike),
            SemanticRel::Nationality.name(KbFlavor::DbpediaLike)
        );
    }

    #[test]
    fn yago_hierarchy_is_deeper() {
        for &t in SemanticType::all() {
            assert!(
                t.ancestors(KbFlavor::YagoLike).len() >= t.ancestors(KbFlavor::DbpediaLike).len(),
                "{t:?}"
            );
        }
    }

    #[test]
    fn capital_is_below_city_in_yago() {
        let anc = SemanticType::Capital.ancestors(KbFlavor::YagoLike);
        assert_eq!(anc[0], "city");
    }

    #[test]
    fn literal_flag() {
        assert!(SemanticRel::HasHeight.is_literal());
        assert!(!SemanticRel::HasCapital.is_literal());
    }

    #[test]
    fn flavor_names() {
        assert_eq!(KbFlavor::YagoLike.name(), "yago-like");
        assert_eq!(KbFlavor::DbpediaLike.name(), "dbpedia-like");
    }
}
