//! Clean the Soccer relational table (the paper's §7.4 workload): inject
//! 10% errors into the FD right-hand-side columns, run the full KATARA
//! pipeline against the DBpedia-like KB, and compare against the EQ and
//! SCARE baselines — a one-table live version of Table 6.
//!
//! ```sh
//! cargo run --release --example soccer_cleaning
//! ```

use katara::baselines::{eq_repair, scare_repair, ScareConfig};
use katara::core::repair::Repair;
use katara::datagen::{soccer_table, KbFlavor, World, WorldConfig};
use katara::eval::corpus::{Corpus, CorpusConfig};
use katara::eval::experiments::{appendix_d_fds, katara_repair_run};
use katara::eval::metrics::repair_precision_recall;
use katara::table::corrupt::{corrupt_table, CorruptionConfig};

fn main() {
    let config = CorpusConfig {
        world: WorldConfig::default(),
        ..CorpusConfig::default()
    };
    println!("generating world and corpus…");
    let corpus = Corpus::build(&config);
    let world: &World = &corpus.world;
    println!(
        "world: {} countries, {} clubs, {} players",
        world.countries.len(),
        world.clubs.len(),
        world.players.len()
    );

    let soccer = soccer_table(world, 1625, 42);
    println!(
        "Soccer table: {} rows × {} columns",
        soccer.table.num_rows(),
        soccer.table.num_columns()
    );

    let (fds, rhs_cols) = appendix_d_fds("Soccer");
    println!(
        "Appendix D FDs: {} dependencies; errors go into columns {:?}",
        fds.len(),
        rhs_cols
    );

    // --- KATARA with the DBpedia-like KB --------------------------------
    let run = katara_repair_run(&corpus, &soccer, KbFlavor::DbpediaLike, &rhs_cols, 3, 42)
        .expect("pattern discoverable");
    println!(
        "\ninjected {} errors; KATARA flagged {} tuples as erroneous",
        run.log.len(),
        run.proposals.len()
    );
    let katara_score = repair_precision_recall(&run.log, &run.proposals);
    println!(
        "KATARA(dbpedia-like, k=3):  P = {:.2}  R = {:.2}  F = {:.2}",
        katara_score.p,
        katara_score.r,
        katara_score.f_measure()
    );

    // --- Baselines on the identical dirty instance -----------------------
    let mut dirty = soccer.table.clone();
    let log = corrupt_table(
        &mut dirty,
        &CorruptionConfig::paper_default(rhs_cols.clone()),
        42,
    );
    let single = |changes: Vec<(usize, usize, String)>| -> Vec<(usize, Vec<Repair>)> {
        let mut by_row: std::collections::BTreeMap<usize, Vec<(usize, String)>> =
            std::collections::BTreeMap::new();
        for (r, c, v) in changes {
            by_row.entry(r).or_default().push((c, v));
        }
        by_row
            .into_iter()
            .map(|(row, ch)| {
                (
                    row,
                    vec![Repair {
                        cost: ch.len() as f64,
                        changes: ch,
                    }],
                )
            })
            .collect()
    };

    let eq = eq_repair(&dirty, &fds);
    let eq_score = repair_precision_recall(&log, &single(eq.changes));
    println!(
        "EQ (equivalence classes):   P = {:.2}  R = {:.2}  F = {:.2}",
        eq_score.p,
        eq_score.r,
        eq_score.f_measure()
    );

    let scare = scare_repair(&dirty, &fds, &ScareConfig::default());
    let scare_score = repair_precision_recall(&log, &single(scare.changes));
    println!(
        "SCARE (ML, θ=0.6):          P = {:.2}  R = {:.2}  F = {:.2}",
        scare_score.p,
        scare_score.r,
        scare_score.f_measure()
    );

    println!(
        "\nthe paper's shape: KATARA precision is the highest; the \
         automatic methods trade precision for redundancy-driven recall."
    );

    // Show a few concrete proposals.
    println!("\nsample KATARA proposals:");
    for (row, repairs) in run.proposals.iter().take(5) {
        let originals: Vec<String> = run
            .log
            .changes
            .iter()
            .filter(|c| c.cell.row == *row)
            .map(|c| format!("col{} was {:?}", c.cell.col, c.original.text_or_empty()))
            .collect();
        println!("  row {row} ({}):", originals.join(", "));
        for (i, r) in repairs.iter().take(3).enumerate() {
            println!("    #{} cost {:>3}: {:?}", i + 1, r.cost, r.changes);
        }
    }
}
