#!/usr/bin/env bash
# The workspace is zero-dependency by design (ROADMAP.md): every crate
# is local — either a `crates/*` member or a vendored `vendor/*` shim —
# and builds must never reach for crates.io or git. Cargo records the
# provenance of every resolved package in Cargo.lock: local path
# packages have no `source` field, anything external carries a
# `source = "registry+..."` or `source = "git+..."` line. So the lint
# is exact, not heuristic: any `source =` line in Cargo.lock is an
# external dependency that slipped in.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
lock="$root/Cargo.lock"

if [ ! -f "$lock" ]; then
  echo "lint_zero_deps: $lock not found (run cargo metadata first)" >&2
  exit 1
fi

bad=$(grep -n 'source = "' "$lock" || true)
if [ -n "$bad" ]; then
  echo "lint_zero_deps: external dependencies found in Cargo.lock:" >&2
  echo "$bad" >&2
  echo >&2
  echo "This workspace is zero-dependency: vendor a shim under vendor/" >&2
  echo "instead of depending on a registry or git package." >&2
  exit 1
fi

count=$(grep -c '^name = ' "$lock")
echo "lint_zero_deps: OK — all $count packages in Cargo.lock are local"
