//! # katara-exec — deterministic scoped parallelism
//!
//! A small from-scratch worker pool (no external dependencies, per the
//! workspace's vendored-shim policy) built on [`std::thread::scope`],
//! powering the discovery/repair/eval hot paths.
//!
//! The contract every primitive here upholds is **thread-count
//! invariance**: results are a pure function of the inputs, never of how
//! many workers executed them or how work was interleaved. This is what
//! lets `--threads N` be a pure performance knob — `--threads 1` runs the
//! exact sequential code path, and any `N` produces byte-identical
//! output. It is achieved by construction:
//!
//! * work items are *index ranges*, claimed atomically but **written back
//!   by index**, so the output `Vec` order equals the input order;
//! * per-worker scratch state (e.g. the candidate-discovery `Q_types` /
//!   `Q_rels` memo caches) is created by a caller-supplied `init` closure
//!   and only ever used as a *cache of pure functions* — state affects
//!   speed, never values;
//! * a panicking worker aborts the whole map and re-raises the panic at
//!   the call site, so errors cannot be silently dropped.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable overriding [`Threads::auto`]'s worker count.
pub const THREADS_ENV: &str = "KATARA_THREADS";

/// A shared, cooperative cancellation deadline.
///
/// A `Deadline` is checked — never enforced — at the pipeline's
/// cancellation points (phase boundaries, the validation scheduler loop,
/// the annotation row loop, repair workers, and the crowd's ask loop).
/// [`Deadline::none`] (the `Default`) never expires and adds no
/// per-check cost beyond a branch, so existing call sites are
/// byte-identical when no deadline is set.
///
/// Clones share state through an [`Arc`]: the pipeline hands one deadline
/// to every stage and the crowd, and the first check that observes expiry
/// latches it for all holders ([`Deadline::triggered`]). Besides the
/// wall-clock mode there is a deterministic *check-budget* mode
/// ([`Deadline::after_checks`]) that expires after a fixed number of
/// [`Deadline::expired`] calls — tests use it to drive expiry into every
/// cancellation point reproducibly — and an external trip switch
/// ([`Deadline::cancel`]) for client disconnects.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    inner: Option<Arc<DeadlineInner>>,
}

#[derive(Debug)]
struct DeadlineInner {
    at: Option<Instant>,
    /// Remaining `expired()` calls before tripping (check-budget mode).
    checks: Option<AtomicI64>,
    /// Latched once any check observes expiry (or `cancel` is called).
    tripped: AtomicBool,
}

impl Deadline {
    /// The inert deadline: never expires, consumes nothing.
    pub fn none() -> Self {
        Deadline { inner: None }
    }

    /// Expires once the wall clock reaches `at`.
    pub fn at(at: Instant) -> Self {
        Deadline {
            inner: Some(Arc::new(DeadlineInner {
                at: Some(at),
                checks: None,
                tripped: AtomicBool::new(false),
            })),
        }
    }

    /// Expires `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Deadline::at(Instant::now() + timeout)
    }

    /// Deterministic mode: the first `n` [`Deadline::expired`] calls
    /// return `false`, every later one `true`. The budget is shared by
    /// all clones, whichever thread checks.
    pub fn after_checks(n: u64) -> Self {
        Deadline {
            inner: Some(Arc::new(DeadlineInner {
                at: None,
                checks: Some(AtomicI64::new(n.min(i64::MAX as u64) as i64)),
                tripped: AtomicBool::new(false),
            })),
        }
    }

    /// True when no expiry condition is configured at all.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Trip the deadline from outside (e.g. the client disconnected).
    /// No-op on an inert deadline.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.tripped.store(true, Ordering::Relaxed);
        }
    }

    /// Cancellation-point check: has the deadline expired? In
    /// check-budget mode this consumes one check. Once it returns `true`
    /// it returns `true` forever (expiry latches).
    pub fn expired(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.tripped.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(at) = inner.at {
            if Instant::now() >= at {
                inner.tripped.store(true, Ordering::Relaxed);
                return true;
            }
        }
        if let Some(checks) = &inner.checks {
            if checks.fetch_sub(1, Ordering::Relaxed) <= 0 {
                inner.tripped.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Did any check (on any clone) observe expiry? Unlike
    /// [`Deadline::expired`] this never consumes a check — it reports
    /// what cooperative cancellation actually saw, which is what a
    /// degradation report should state.
    pub fn triggered(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.tripped.load(Ordering::Relaxed))
    }

    /// Wall-clock time left, `None` when no wall deadline is set.
    /// Saturates at zero.
    pub fn remaining(&self) -> Option<Duration> {
        let at = self.inner.as_ref()?.at?;
        Some(at.saturating_duration_since(Instant::now()))
    }
}

/// A validated worker-thread count (always ≥ 1).
///
/// `Threads::default()` resolves [`Threads::auto`]: the `KATARA_THREADS`
/// environment variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Threads(usize);

impl Threads {
    /// Exactly `n` workers; `0` is clamped to `1`.
    pub fn fixed(n: usize) -> Self {
        Threads(n.max(1))
    }

    /// The sequential executor (one worker, no thread spawning).
    pub fn single() -> Self {
        Threads(1)
    }

    /// `KATARA_THREADS` if set to a positive integer, otherwise the
    /// machine's available parallelism (1 if that cannot be determined).
    pub fn auto() -> Self {
        if let Ok(v) = std::env::var(THREADS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return Threads(n);
                }
            }
        }
        Threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::auto()
    }
}

impl std::fmt::Display for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Order-preserving parallel map over `0..n` with per-worker scratch
/// state.
///
/// `init` builds one state value per worker; `f(&mut state, i)` computes
/// the result for index `i`. Indexes are claimed dynamically (an atomic
/// counter), so uneven item costs balance across workers, but the output
/// `Vec` is always `[f(_, 0), f(_, 1), …, f(_, n-1)]` in index order.
///
/// Determinism contract (callers rely on it, tests assert it): `f` must
/// compute a value independent of the scratch state's *history* — the
/// state may memoize pure lookups, never accumulate results. Under that
/// contract the output is byte-identical for every thread count.
///
/// With one worker (or `n <= 1`) no thread is spawned and items run in
/// index order against a single state — the exact sequential loop, with
/// the state shared across all items as a sequential memo cache would be.
///
/// Panics in `f` or `init` are re-raised at the call site once all
/// workers have stopped.
pub fn par_map_indexed_with<S, R, I, F>(threads: Threads, n: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = threads.get().min(n);
    if workers <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&mut state, i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => buckets.push(local),
                // Re-raise the worker's panic with its original payload.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Deterministic merge: every index was claimed by exactly one worker;
    // placing results by index restores input order regardless of which
    // worker computed what.
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| {
            // invariant: fetch_add hands out each index in 0..n exactly
            // once, and each claimed index pushes exactly one result.
            s.expect("every index in 0..n was claimed exactly once")
        })
        .collect()
}

/// [`par_map_indexed_with`] without per-worker state.
pub fn par_map_indexed<R, F>(threads: Threads, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_with(threads, n, || (), |(), i| f(i))
}

/// Order-preserving parallel map over a slice.
pub fn par_map<T, R, F>(threads: Threads, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(threads, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn output_order_matches_input_order() {
        for t in [1, 2, 3, 8, 33] {
            let out = par_map_indexed(Threads::fixed(t), 100, |i| i * i);
            let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(out, expected, "threads={t}");
        }
    }

    #[test]
    fn slice_map_preserves_order() {
        let items: Vec<String> = (0..50).map(|i| format!("item{i}")).collect();
        let seq = par_map(Threads::single(), &items, |s| s.len());
        let par = par_map(Threads::fixed(4), &items, |s| s.len());
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let out: Vec<usize> = par_map_indexed(Threads::fixed(8), 0, |i| i);
        assert!(out.is_empty());
        let out = par_map_indexed(Threads::fixed(8), 1, |i| i + 41);
        assert_eq!(out, vec![41]);
    }

    #[test]
    fn worker_state_is_per_worker_and_results_state_independent() {
        // The state memoizes a pure function; results must not depend on
        // which worker (hence which cache) served an index.
        let inits = AtomicUsize::new(0);
        let out = par_map_indexed_with(
            Threads::fixed(4),
            64,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                std::collections::HashMap::<usize, usize>::new()
            },
            |cache, i| *cache.entry(i % 7).or_insert_with(|| (i % 7) * 10),
        );
        let expected: Vec<usize> = (0..64).map(|i| (i % 7) * 10).collect();
        assert_eq!(out, expected);
        // One state per spawned worker, no more.
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn single_thread_shares_one_state_across_all_items() {
        let inits = AtomicUsize::new(0);
        let _ = par_map_indexed_with(
            Threads::single(),
            10,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, i| i,
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            par_map_indexed(Threads::fixed(2), 8, |i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn fixed_clamps_zero_to_one() {
        assert_eq!(Threads::fixed(0).get(), 1);
        assert_eq!(Threads::fixed(7).get(), 7);
        assert_eq!(Threads::single().get(), 1);
    }

    #[test]
    fn auto_is_at_least_one() {
        assert!(Threads::auto().get() >= 1);
        assert!(Threads::default().get() >= 1);
    }

    #[test]
    fn inert_deadline_never_expires() {
        let d = Deadline::none();
        assert!(d.is_unlimited());
        for _ in 0..1000 {
            assert!(!d.expired());
        }
        assert!(!d.triggered());
        assert_eq!(d.remaining(), None);
        // Default is the inert deadline.
        assert!(Deadline::default().is_unlimited());
    }

    #[test]
    fn check_budget_expires_after_n_checks_and_latches() {
        let d = Deadline::after_checks(3);
        assert!(!d.is_unlimited());
        assert!(!d.expired());
        assert!(!d.expired());
        assert!(!d.expired());
        assert!(!d.triggered(), "triggered is not a consuming check");
        assert!(d.expired());
        assert!(d.triggered());
        assert!(d.expired(), "expiry latches");
        // Zero checks trips on the very first check.
        let d0 = Deadline::after_checks(0);
        assert!(d0.expired());
    }

    #[test]
    fn clones_share_the_check_budget() {
        let d = Deadline::after_checks(2);
        let c = d.clone();
        assert!(!d.expired());
        assert!(!c.expired());
        assert!(d.expired());
        assert!(c.triggered(), "trip is visible through every clone");
    }

    #[test]
    fn wall_deadline_expires_and_reports_remaining() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().is_some_and(|r| r > Duration::from_secs(1)));
        let past = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(past.expired());
        assert_eq!(past.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancel_trips_immediately() {
        let d = Deadline::after(Duration::from_secs(3600));
        d.cancel();
        assert!(d.expired());
        assert!(d.triggered());
        // Cancelling the inert deadline stays a no-op.
        let none = Deadline::none();
        none.cancel();
        assert!(!none.expired());
    }

    #[test]
    fn borrows_non_static_data() {
        // Scoped threads may borrow stack data — the property the hot
        // paths rely on (tables/KBs are borrowed, not Arc'd).
        let data: Vec<usize> = (0..32).collect();
        let sum: usize = par_map(Threads::fixed(3), &data, |&x| x * 2)
            .into_iter()
            .sum();
        assert_eq!(sum, data.iter().sum::<usize>() * 2);
    }
}
