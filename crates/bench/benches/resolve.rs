//! Bench for the **shared KB query snapshot** (DESIGN.md §5e) and the
//! **columnar triple store** (DESIGN.md §5i): a full end-to-end cleaning
//! run with the [`TableResolution`] built inside the run ("cold", on the
//! default columnar backend), the same cold run on the legacy hash-map
//! backend ("cold_legacy"), and the run with the resolution injected
//! pre-built ("snapshot"). Emits `BENCH_resolve.json` at the workspace
//! root with the wall times, the speedups, the fixture's distinct-value
//! ratio, the KB triple count, the columnar index-build cost, and the
//! probe-planner counters (`kb.plan_type_first` / `kb.plan_rel_first`)
//! inside the embedded metrics (quick mode via `KATARA_BENCH_QUICK=1`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use katara_bench::{perf, resolve_crowd, resolve_fixture, ResolveFixture};
use katara_core::annotation::AnnotationConfig;
use katara_core::resolve::TableResolution;
use katara_core::validation::ValidationConfig;
use katara_core::{Katara, KataraConfig};

/// The bench pipeline config: enrichment off so the KB is immutable
/// across iterations (the pre-built snapshot stays current), one
/// question per variable so crowd chatter stays small relative to
/// resolution work.
fn bench_config() -> KataraConfig {
    KataraConfig {
        annotation: AnnotationConfig {
            enrich_kb: false,
            ..AnnotationConfig::default()
        },
        validation: ValidationConfig {
            questions_per_variable: 1,
            ..ValidationConfig::default()
        },
        ..KataraConfig::default()
    }
}

fn clean_cold(f: &ResolveFixture) {
    let katara = Katara::new(bench_config());
    let mut kb = f.kb.clone();
    let mut crowd = resolve_crowd(f);
    black_box(
        katara
            .clean(&f.table.table, &mut kb, &mut crowd)
            .expect("cold clean"),
    );
}

/// The same cold run against a pre-converted legacy-backend KB — the
/// baseline the columnar engine must beat end to end.
fn clean_cold_legacy(f: &ResolveFixture, legacy_kb: &katara_kb::Kb) {
    let katara = Katara::new(bench_config());
    let mut kb = legacy_kb.clone();
    let mut crowd = resolve_crowd(f);
    black_box(
        katara
            .clean(&f.table.table, &mut kb, &mut crowd)
            .expect("cold legacy clean"),
    );
}

fn clean_snapshot(f: &ResolveFixture, res: &TableResolution) {
    let katara = Katara::new(bench_config());
    let mut kb = f.kb.clone();
    let mut crowd = resolve_crowd(f);
    black_box(
        katara
            .clean_with_resolution(&f.table.table, &mut kb, &mut crowd, Some(res))
            .expect("snapshot clean"),
    );
}

/// Cold vs snapshot-cached end-to-end clean. The Criterion group gives
/// the interactive view; the [`perf::ResolveReport`] gives the
/// machine-readable artifact.
fn bench_resolve(c: &mut Criterion) {
    let fixture = resolve_fixture();
    let config = bench_config();
    let res = TableResolution::build(
        &fixture.table.table,
        &fixture.kb,
        config.candidates.max_rows,
    );
    let triples =
        fixture.kb.num_facts() + fixture.kb.num_type_assertions() + fixture.kb.num_entities();
    eprintln!(
        "resolve fixture: {} ({} injected errors, distinct ratio {:.4}, {triples} triples)",
        fixture.name,
        fixture.errors,
        res.distinct_ratio()
    );
    let legacy_kb = fixture.kb.with_legacy_backend();
    // Time the columnar index build (legacy → sorted arenas + stats)
    // once: the one-off cost the gallop probes amortize.
    let build_start = std::time::Instant::now();
    let rebuilt = legacy_kb.with_columnar_backend();
    let index_build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(rebuilt.backend_name(), "columnar");

    let mut group = c.benchmark_group("resolve_snapshot");
    group.sample_size(10);
    group.bench_function("cold", |b| b.iter(|| clean_cold(&fixture)));
    group.bench_function("snapshot", |b| b.iter(|| clean_snapshot(&fixture, &res)));
    group.finish();

    let mut report = perf::ResolveReport::new("resolve", &fixture.name, res.distinct_ratio());
    report.triples = triples as u64;
    report.index_build_ms = index_build_ms;
    report.measure("cold", perf::sweep_iters(), || clean_cold(&fixture));
    report.measure("cold_legacy", perf::sweep_iters(), || {
        clean_cold_legacy(&fixture, &legacy_kb)
    });
    report.measure("snapshot", perf::sweep_iters(), || {
        clean_snapshot(&fixture, &res)
    });
    // One untimed instrumented end-to-end run (cold, so the pipeline
    // builds — and instruments — its own snapshot) for the report's
    // logical-work metrics.
    let rec = std::sync::Arc::new(katara_obs::RunRecorder::new());
    let mut obs_config = bench_config();
    obs_config.recorder = rec.clone();
    obs_config.threads = katara_core::Threads::fixed(1);
    obs_config.candidates.threads = katara_core::Threads::fixed(1);
    let katara = Katara::new(obs_config);
    let mut kb = fixture.kb.clone();
    let mut crowd = resolve_crowd(&fixture);
    black_box(
        katara
            .clean(&fixture.table.table, &mut kb, &mut crowd)
            .expect("instrumented clean"),
    );
    let mut metrics = rec.snapshot();
    metrics.threads = 1;
    report.metrics = Some(metrics);
    let path = report.write().expect("write BENCH_resolve.json");
    eprintln!("resolve report: {}", path.display());
}

criterion_group!(benches, bench_resolve);
criterion_main!(benches);
