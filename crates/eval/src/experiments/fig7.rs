//! **Figure 7** — precision/recall of the crowd-validated pattern on
//! WebTables while varying the number of questions per variable `q`.
//! Workers are imperfect (accuracy 0.75 here), so quality climbs with `q`
//! and converges — by q=5 on the Yago-like KB, earlier on the
//! DBpedia-like one, mirroring the paper.

use katara_datagen::KbFlavor;

use crate::corpus::Corpus;
use crate::experiments::{flavors, validation_series};
use crate::metrics::PatternScore;
use crate::report::{fmt2, MdTable};

/// The q values swept (paper: 1..7).
pub const QS: [usize; 4] = [1, 3, 5, 7];

/// Worker accuracy used for the sweep.
pub const WORKER_ACCURACY: f64 = 0.75;

/// The structured result: per flavor, per q.
#[derive(Debug, Clone, Default)]
pub struct Fig7 {
    /// `series[flavor_idx][q_idx]`.
    pub series: Vec<Vec<PatternScore>>,
}

/// Run the experiment.
pub fn run(corpus: &Corpus) -> Fig7 {
    let tables: Vec<_> = corpus.web.iter().collect();
    Fig7 {
        series: flavors()
            .into_iter()
            .map(|flavor| validation_series(corpus, &tables, flavor, &QS, WORKER_ACCURACY))
            .collect(),
    }
}

impl Fig7 {
    /// The score at one (flavor, q).
    pub fn at(&self, flavor: KbFlavor, q: usize) -> Option<PatternScore> {
        let fi = usize::from(flavor == KbFlavor::DbpediaLike);
        let qi = QS.iter().position(|&x| x == q)?;
        self.series.get(fi)?.get(qi).copied()
    }

    /// Render the Markdown section.
    pub fn render(&self) -> String {
        render_validation(
            "Figure 7 — pattern validation P/R (WebTables)",
            &self.series,
        )
    }
}

/// Shared renderer (also used by Figure 12).
pub(crate) fn render_validation(title: &str, series: &[Vec<PatternScore>]) -> String {
    let mut out = format!("## {title}\n\n(worker accuracy {WORKER_ACCURACY})\n\n");
    for (fi, flavor) in flavors().into_iter().enumerate() {
        let mut t = MdTable::new(&["q", "P", "R"]);
        if let Some(rows) = series.get(fi) {
            for (qi, s) in rows.iter().enumerate() {
                t.row(vec![QS[qi].to_string(), fmt2(s.p), fmt2(s.r)]);
            }
        }
        out.push_str(&format!("### {}\n\n{}\n", flavor.name(), t.render()));
    }
    out.push_str(
        "Paper shape: already high at q=1, converging with more \
         questions; the small-ontology KB converges earlier.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn more_questions_do_not_hurt_much() {
        let corpus = Corpus::build(&CorpusConfig::small());
        let f7 = run(&corpus);
        for flavor in flavors() {
            let q1 = f7.at(flavor, 1).unwrap();
            let q7 = f7.at(flavor, 7).unwrap();
            // Noisy crowd: allow small fluctuation but no collapse.
            assert!(
                q7.f_measure() >= q1.f_measure() - 0.1,
                "{flavor:?}: q7 {:.2} collapsed below q1 {:.2}",
                q7.f_measure(),
                q1.f_measure()
            );
            assert!(q7.p > 0.3, "{flavor:?}: precision too low: {:.2}", q7.p);
        }
        assert!(f7.render().contains("Figure 7"));
    }
}
