//! Fuzz-style properties of the hardened request parser.
//!
//! The contract under test: [`katara_serve::http::read_request`] fed
//! **any** byte stream — arbitrary garbage, truncated requests,
//! oversized heads and bodies, pipelined request pairs, streams that
//! arrive one byte at a time, streams that die with I/O errors — returns
//! `Ok` or a typed [`ServeError`], and **never panics**. On `Ok`, the
//! parsed request respects every configured cap.
//!
//! The case count is elevated in CI via `KATARA_FUZZ_CASES` (the same
//! knob as the CSV and N-Triples fuzz suites).

use std::io::Read;

use katara_serve::http::{read_request, ParseLimits};
use katara_serve::ServeError;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Per-test case count: `KATARA_FUZZ_CASES` (CI runs an elevated count)
/// or the given local default.
fn fuzz_cases(default: u32) -> u32 {
    std::env::var("KATARA_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A reader that hands out its buffer in random-sized nibbles, so the
/// parser's incremental accumulation paths get exercised.
struct Trickle {
    data: Vec<u8>,
    pos: usize,
    rng: StdRng,
    max_step: usize,
}

impl Read for Trickle {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let step = self.rng.random_range(1..=self.max_step);
        let n = step.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A reader that yields a prefix, then fails with the given error kind —
/// the socket dying mid-request.
struct Dying {
    data: Vec<u8>,
    pos: usize,
    kind: std::io::ErrorKind,
}

impl Read for Dying {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Err(std::io::Error::new(self.kind, "injected"));
        }
        let n = buf.len().min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Parse `bytes` under `limits` (whole-buffer reader) and check the
/// caps hold on success. The absence of a panic is the main property.
fn check(bytes: &[u8], limits: &ParseLimits) {
    let mut cursor = std::io::Cursor::new(bytes.to_vec());
    match read_request(&mut cursor, limits) {
        Ok(req) => {
            assert!(req.body.len() <= limits.max_body_bytes, "body cap violated");
            assert!(
                req.headers.len() <= limits.max_headers,
                "header cap violated"
            );
            assert!(!req.method.is_empty() && !req.path.is_empty());
        }
        Err(
            ServeError::BadRequest(_)
            | ServeError::RequestTooLarge { .. }
            | ServeError::Timeout
            | ServeError::Disconnected
            | ServeError::Io(_),
        ) => {}
        Err(other) => panic!("unexpected error variant: {other:?}"),
    }
}

/// A plausible well-formed request to mutate from.
fn well_formed(rng: &mut StdRng) -> Vec<u8> {
    let body_len = rng.random_range(0usize..64);
    let body: String = (0..body_len)
        .map(|_| (b'a' + rng.random_range(0u8..26)) as char)
        .collect();
    format!(
        "POST /clean?crowd=trust&deadline_ms={} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        rng.random_range(0u64..5000),
        body.len(),
        body
    )
    .into_bytes()
}

#[test]
fn arbitrary_bytes_never_panic() {
    let cases = fuzz_cases(256);
    let mut rng = StdRng::seed_from_u64(0x5e7e);
    let limits = ParseLimits::default();
    for _ in 0..cases {
        let len = rng.random_range(0usize..2048);
        let bytes: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..=255)).collect();
        check(&bytes, &limits);
    }
}

#[test]
fn mutated_real_requests_never_panic() {
    let cases = fuzz_cases(256);
    let mut rng = StdRng::seed_from_u64(0xca5e);
    let limits = ParseLimits::default();
    for _ in 0..cases {
        let mut bytes = well_formed(&mut rng);
        // A handful of random mutations: truncation, byte flips,
        // insertions of CR/LF/NUL at arbitrary points.
        for _ in 0..rng.random_range(1usize..6) {
            if bytes.is_empty() {
                break;
            }
            match rng.random_range(0u8..4) {
                0 => bytes.truncate(rng.random_range(0..bytes.len().max(1))),
                1 => {
                    let i = rng.random_range(0..bytes.len());
                    bytes[i] = rng.random_range(0u8..=255);
                }
                2 => {
                    let i = rng.random_range(0..=bytes.len());
                    let c = *[b'\r', b'\n', 0u8, b' ', b':']
                        .get(rng.random_range(0usize..5))
                        .unwrap();
                    bytes.insert(i, c);
                }
                _ => {
                    // Pipelined: a second request glued on.
                    let mut second = well_formed(&mut rng);
                    bytes.append(&mut second);
                }
            }
        }
        check(&bytes, &limits);
    }
}

#[test]
fn oversized_requests_are_rejected_not_read() {
    let cases = fuzz_cases(128);
    let mut rng = StdRng::seed_from_u64(0xb16);
    let limits = ParseLimits {
        max_head_bytes: 256,
        max_headers: 4,
        max_body_bytes: 128,
        max_wall: None,
    };
    for _ in 0..cases {
        // Oversized head.
        let pad = "x".repeat(rng.random_range(200usize..4000));
        let huge_head = format!("GET /{pad} HTTP/1.1\r\nHost: x\r\n\r\n");
        check(huge_head.as_bytes(), &limits);
        // Oversized declared body: must reject on the declaration, so a
        // reader with no body bytes at all must still terminate.
        let declared = rng.random_range(129usize..1_000_000);
        let head = format!("POST /clean HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let mut cursor = std::io::Cursor::new(head.clone().into_bytes());
        assert!(
            matches!(
                read_request(&mut cursor, &limits),
                Err(ServeError::RequestTooLarge { what: "body", .. })
            ),
            "declared {declared} must be rejected before reading"
        );
        // Too many headers.
        let many: String = (0..rng.random_range(5usize..40))
            .map(|i| format!("H{i}: v\r\n"))
            .collect();
        check(format!("GET / HTTP/1.1\r\n{many}\r\n").as_bytes(), &limits);
    }
}

#[test]
fn trickled_and_dying_streams_never_panic() {
    let cases = fuzz_cases(128);
    let mut rng = StdRng::seed_from_u64(0xd1e);
    let limits = ParseLimits::default();
    let kinds = [
        std::io::ErrorKind::TimedOut,
        std::io::ErrorKind::WouldBlock,
        std::io::ErrorKind::UnexpectedEof,
        std::io::ErrorKind::ConnectionReset,
        std::io::ErrorKind::BrokenPipe,
        std::io::ErrorKind::Other,
    ];
    for i in 0..cases {
        let data = well_formed(&mut rng);
        // Byte-at-a-time arrival parses identically to one-shot arrival.
        let mut trickle = Trickle {
            data: data.clone(),
            pos: 0,
            rng: StdRng::seed_from_u64(u64::from(i)),
            max_step: rng.random_range(1usize..8),
        };
        let slow = read_request(&mut trickle, &limits).expect("well-formed request");
        let mut cursor = std::io::Cursor::new(data.clone());
        let fast = read_request(&mut cursor, &limits).expect("well-formed request");
        assert_eq!(slow.method, fast.method);
        assert_eq!(slow.path, fast.path);
        assert_eq!(slow.body, fast.body);

        // The stream dies after a random prefix: typed error, no panic.
        let cut = rng.random_range(0..=data.len());
        let kind = kinds[rng.random_range(0usize..kinds.len())];
        let mut dying = Dying {
            data: data[..cut].to_vec(),
            pos: 0,
            kind,
        };
        match read_request(&mut dying, &limits) {
            Ok(_) => {} // the cut can land after a complete request
            Err(
                ServeError::Timeout
                | ServeError::Disconnected
                | ServeError::Io(_)
                | ServeError::BadRequest(_)
                | ServeError::RequestTooLarge { .. },
            ) => {}
            Err(other) => panic!("unexpected error variant: {other:?}"),
        }
    }
}
