//! **Figure 6** — F-measure of the top-k patterns, varying k, on
//! WebTables, for both KBs. The paper's finding: RankJoin converges
//! fastest on Yago; everything converges quickly on DBpedia (few types).

use katara_datagen::KbFlavor;

use crate::corpus::Corpus;
use crate::experiments::{flavors, topk_f_series, Algo};
use crate::report::{fmt2, MdTable};

/// The k values swept.
pub const KS: [usize; 6] = [1, 2, 3, 4, 6, 8];

/// The structured result: per flavor, per k, per algorithm mean best-F.
#[derive(Debug, Clone, Default)]
pub struct Fig6 {
    /// `series[flavor_idx][k_idx][algo_idx]`.
    pub series: Vec<Vec<[f64; 4]>>,
}

/// Run the experiment.
pub fn run(corpus: &Corpus) -> Fig6 {
    let tables: Vec<_> = corpus.web.iter().collect();
    Fig6 {
        series: flavors()
            .into_iter()
            .map(|flavor| topk_f_series(corpus, &tables, flavor, &KS))
            .collect(),
    }
}

impl Fig6 {
    /// F of one algorithm at one k.
    pub fn f_at(&self, flavor: KbFlavor, k: usize, algo: Algo) -> Option<f64> {
        let fi = usize::from(flavor == KbFlavor::DbpediaLike);
        let ki = KS.iter().position(|&x| x == k)?;
        let ai = Algo::all().iter().position(|&a| a == algo)?;
        Some(self.series.get(fi)?.get(ki)?[ai])
    }

    /// Render the Markdown section.
    pub fn render(&self) -> String {
        render_series("Figure 6 — top-k F-measure (WebTables)", &self.series)
    }
}

/// Shared renderer for the top-k sweeps (also used by Figure 11).
pub(crate) fn render_series(title: &str, series: &[Vec<[f64; 4]>]) -> String {
    let mut out = format!("## {title}\n\n");
    for (fi, flavor) in flavors().into_iter().enumerate() {
        let mut t = MdTable::new(&["k", "Support", "MaxLike", "PGM", "RankJoin"]);
        if let Some(rows) = series.get(fi) {
            for (ki, row) in rows.iter().enumerate() {
                t.row(vec![
                    KS[ki].to_string(),
                    fmt2(row[0]),
                    fmt2(row[1]),
                    fmt2(row[2]),
                    fmt2(row[3]),
                ]);
            }
        }
        out.push_str(&format!("### {}\n\n{}\n", flavor.name(), t.render()));
    }
    out.push_str(
        "Paper shape: RankJoin starts highest and converges fastest; all \
         methods converge quickly on the small-ontology KB.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn f_grows_with_k_and_rankjoin_leads_at_k1() {
        let corpus = Corpus::build(&CorpusConfig::small());
        let f6 = run(&corpus);
        for flavor in flavors() {
            let f1 = f6.f_at(flavor, 1, Algo::RankJoin).unwrap();
            let f8 = f6.f_at(flavor, 8, Algo::RankJoin).unwrap();
            assert!(f8 >= f1 - 1e-12, "{flavor:?}: top-k F must be monotone");
            let s1 = f6.f_at(flavor, 1, Algo::Support).unwrap();
            assert!(
                f1 >= s1 - 1e-12,
                "{flavor:?}: RankJoin@1 {f1:.2} below Support@1 {s1:.2}"
            );
        }
        assert!(f6.render().contains("Figure 6"));
    }
}
