//! The MaxLike baseline (§7.1) — maximum-likelihood column typing after
//! Venetis et al. (PVLDB 2011).
//!
//! For a column `A` and candidate type `T`, the likelihood of the column
//! under `T` is `Π_cells P(cell | T)` with `P(cell | T) = 1/|ENT(T)|` when
//! the cell's value is an instance of `T` and a small smoothing mass
//! otherwise; each column (and each column pair, via `subENT(P)`) is
//! scored **independently** — precisely the modeling choice the paper's
//! Example (films that are also books) exploits: MaxLike picks the rarer
//! covering type even when it is incoherent with the relationships.

use katara_core::candidates::CandidateSet;
use katara_core::pattern::TablePattern;
use katara_core::rank_join::{discover_topk, DiscoveryConfig};
use katara_core::scoring::ScoringConfig;
use katara_kb::Kb;
use katara_table::Table;

/// Smoothing probability for a cell not covered by the candidate.
/// Deliberately tolerant (as the published estimator is): a rare type
/// covering *most* of a column can out-score a common type covering all
/// of it — the paper's films/books failure mode, demonstrated in Table 2.
const SMOOTHING: f64 = 1e-4;

/// Top-k patterns under independent maximum-likelihood ranking.
pub fn maxlike_topk(table: &Table, kb: &Kb, cands: &CandidateSet, k: usize) -> Vec<TablePattern> {
    let rows = table.num_rows().min(cands.rows_scanned.max(1));
    let mut rescored = cands.clone();

    // Column types: log-likelihood of the observed cells given the type.
    for (col, list) in rescored.col_types.iter_mut().enumerate() {
        for cand in list.iter_mut() {
            let ent = kb.class_size(cand.class).max(1) as f64;
            let p_in = 1.0 / ent;
            let mut ll = 0.0;
            let mut non_null = 0usize;
            for r in 0..rows {
                let Some(cell) = table.cell(r, col).as_str() else {
                    continue;
                };
                non_null += 1;
                if kb.value_has_type(cell, cand.class) {
                    ll += p_in.ln();
                } else {
                    ll += SMOOTHING.ln();
                }
            }
            // Shift into a positive score (additive constants cancel in
            // ranking within a list; across lists we only need order).
            cand.tfidf = normalize_ll(ll, non_null);
        }
        list.sort_by(|a, b| {
            b.tfidf
                .total_cmp(&a.tfidf)
                .then_with(|| a.class.cmp(&b.class))
        });
    }

    // Relationships: likelihood of the cell pairs given the property.
    let pairs: Vec<(usize, usize)> = rescored.pair_rels.keys().copied().collect();
    for (i, j) in pairs {
        let list = rescored.pair_rels.get_mut(&(i, j)).expect("just listed");
        for cand in list.iter_mut() {
            let ent = kb.subjects_of_property(cand.property).len().max(1) as f64;
            let p_in = 1.0 / ent;
            // Reuse the recorded support instead of re-probing the KB:
            // `support` of `rows` pairs exhibited the relationship.
            let covered = cand.support;
            let uncovered = rows.saturating_sub(covered);
            let ll = covered as f64 * p_in.ln() + uncovered as f64 * SMOOTHING.ln();
            cand.tfidf = normalize_ll(ll, rows);
        }
        list.sort_by(|a, b| {
            b.tfidf
                .total_cmp(&a.tfidf)
                .then_with(|| a.property.cmp(&b.property))
        });
    }

    let config = DiscoveryConfig {
        scoring: ScoringConfig {
            coherence_weight: 0.0,
        },
        max_states: 0,
        ..DiscoveryConfig::default()
    };
    discover_topk(table, kb, &rescored, k, &config)
}

/// Map an average log-likelihood into a bounded positive score preserving
/// order: `exp(ll / n)` is the geometric-mean likelihood per cell.
fn normalize_ll(ll: f64, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    (ll / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use katara_core::candidates::{discover_candidates, CandidateConfig};
    use katara_kb::KbBuilder;

    /// `place` ⊃ `country`: both cover all cells, but country is rarer →
    /// higher likelihood. A third type `economy` covers only one cell.
    fn setting() -> (Kb, Table) {
        let mut b = KbBuilder::new();
        let place = b.class("place");
        let country = b.class("country");
        let economy = b.class("economy");
        b.subclass(country, place).unwrap();
        for n in ["Italy", "Spain", "France"] {
            b.entity(n, &[country]);
        }
        b.entity_labeled("Italy_(econ)", "Italy", &[economy]);
        for i in 0..30 {
            b.entity(&format!("Town{i}"), &[place]);
        }
        let kb = b.finalize();
        let mut t = Table::with_opaque_columns("t", 1);
        for n in ["Italy", "Spain", "France"] {
            t.push_text_row(&[n]);
        }
        (kb, t)
    }

    #[test]
    fn maxlike_prefers_rare_covering_type() {
        let (kb, t) = setting();
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        let top = maxlike_topk(&t, &kb, &cands, 1);
        assert_eq!(
            top[0].node_for_column(0).unwrap().class,
            kb.class_by_name("country"),
            "country (3 entities) beats place (33)"
        );
    }

    #[test]
    fn partial_coverage_is_penalized() {
        let (kb, t) = setting();
        // `economy` covers only Italy; even though it is tiny (1 entity),
        // the smoothing penalty on the other cells must sink it.
        let cands = discover_candidates(
            &t,
            &kb,
            &CandidateConfig {
                min_support_fraction: 0.0,
                ..CandidateConfig::default()
            },
        );
        let top = maxlike_topk(&t, &kb, &cands, 3);
        assert_ne!(
            top[0].node_for_column(0).unwrap().class,
            kb.class_by_name("economy")
        );
    }

    #[test]
    fn topk_orders_by_likelihood() {
        let (kb, t) = setting();
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        let top = maxlike_topk(&t, &kb, &cands, 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].score() >= top[1].score());
    }
}
