//! Real-process crash-fault injection: SIGKILL the durable daemon at
//! seeded kill points mid-burst, restart, and hold the recovery
//! contract:
//!
//! * every enrichment the daemon **acked** (a 200 with the journal
//!   writable) survives the crash;
//! * enrichments never requested are cleanly absent — the journal
//!   prescribes exactly the acked state, nothing torn, nothing extra;
//! * `katara recover --verify` passes on the crashed directory, and its
//!   output equals the library's own `recover_dir` replay;
//! * the restarted daemon reports zero journal lag and a full re-clean
//!   of the fixture is byte-identical to the pre-crash report.
//!
//! The in-flight requests killed mid-burst deliberately repeat an
//! already-acked body: idempotent re-cleans cannot change KB state, so
//! the pre/post byte-identity check stays exact whether or not the
//! kill landed before the journal write.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_katara");

const KB_NT: &str = r#"
<y:capital> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <y:city> .
<y:Rossi> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:person> .
<y:Klate> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:person> .
<y:Pirlo> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:person> .
<y:Italy> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:country> .
<y:SouthAfrica> <http://www.w3.org/2000/01/rdf-schema#label> "S. Africa" .
<y:SouthAfrica> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:country> .
<y:Spain> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:country> .
<y:Rome> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:capital> .
<y:Pretoria> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:capital> .
<y:Madrid> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <y:capital> .
<y:Rossi> <y:nationality> <y:Italy> .
<y:Klate> <y:nationality> <y:SouthAfrica> .
<y:Pirlo> <y:nationality> <y:Italy> .
<y:Italy> <y:hasCapital> <y:Rome> .
<y:Spain> <y:hasCapital> <y:Madrid> .
"#;

/// The fixture re-cleaned for the byte-identity check.
const REF_CSV: &str = "name,country,capital\n\
                       Rossi,Italy,Rome\n\
                       Klate,S. Africa,Pretoria\n\
                       Pirlo,Italy,Madrid\n";

/// Novel player names, pairwise dissimilar (and dissimilar to every
/// fixture entity) so entity resolution cannot fuzzy-match request i's
/// name onto the entity request i-1 enriched — each burst request must
/// genuinely create a fresh entity.
const NOVEL: [&str; 4] = ["Quixote", "Bamako", "Zanzibar", "Ferrara"];

/// A burst body whose novel row enriches the KB with a fresh entity.
fn novel_csv(i: u64) -> String {
    format!(
        "name,country,capital\n\
         Rossi,Italy,Rome\n\
         Klate,S. Africa,Pretoria\n\
         {},Italy,Rome\n",
        NOVEL[i as usize % NOVEL.len()]
    )
}

/// SplitMix64 — the seeded schedule for kill points and delays.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Boot `katara serve --journal-dir` on an ephemeral port and parse
    /// the bound address from its stdout.
    fn boot(kb: &Path, journal_dir: &Path) -> Daemon {
        let mut child = Command::new(BIN)
            .args([
                "serve",
                "--kb",
                kb.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
                "--crowd",
                "trust",
                "--journal-dir",
                journal_dir.to_str().unwrap(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon exited before listening")
                .expect("read stdout");
            if let Some(addr) = line.strip_prefix("katara-serve listening on ") {
                break addr.to_string();
            }
        };
        Daemon { child, addr }
    }

    /// SIGKILL — no drain, no flush; the crash under test.
    fn kill(mut self) {
        self.child.kill().expect("kill daemon");
        let status = self.child.wait().expect("reap daemon");
        use std::os::unix::process::ExitStatusExt;
        assert_eq!(status.signal(), Some(9), "daemon must die by SIGKILL");
    }
}

/// Send raw bytes, read the whole response, return (status, body).
fn send_raw(addr: &str, bytes: &[u8]) -> (u16, String) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) => {
                assert!(Instant::now() < deadline, "connect {addr}: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    stream.write_all(bytes).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post_clean(body: &str) -> Vec<u8> {
    format!(
        "POST /clean HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "katara-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One seeded crash round: burst, kill mid-burst, recover, restart.
fn crash_round(seed: u64) {
    let dir = scratch(&format!("s{seed}"));
    let kb_path = dir.join("kb.nt");
    let journal_dir = dir.join("wal");
    std::fs::write(&kb_path, KB_NT).unwrap();
    let mut rng = seed;

    let daemon = Daemon::boot(&kb_path, &journal_dir);

    // Acked burst: each request enriches a distinct novel entity, and a
    // 200 means the journal write happened before the ack.
    let acked = 2 + (mix(&mut rng) % 3); // 2..=4 seeded kill point
    for i in 0..acked {
        let (status, body) = send_raw(&daemon.addr, &post_clean(&novel_csv(i)));
        assert_eq!(status, 200, "acked burst request {i}: {body}");
    }

    // Pre-crash reference report of the fixture. The first clean still
    // enriches (trust confirms the erroneous Italy->Madrid claim); the
    // second is the enrichment fixpoint — the report a re-clean of the
    // same state must reproduce exactly.
    let (status, first) = send_raw(&daemon.addr, &post_clean(REF_CSV));
    assert_eq!(status, 200, "{first}");
    let (status, pre) = send_raw(&daemon.addr, &post_clean(REF_CSV));
    assert_eq!(status, 200, "{pre}");

    // Mid-burst crash: in-flight idempotent re-cleans, never read back
    // (unacked from the client's view), SIGKILL after a seeded delay.
    let last = novel_csv(acked - 1);
    let mut in_flight = Vec::new();
    for _ in 0..3 {
        let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
        stream.write_all(&post_clean(&last)).expect("write");
        in_flight.push(stream); // keep open so the handler is live
    }
    std::thread::sleep(Duration::from_millis(mix(&mut rng) % 40));
    daemon.kill();
    drop(in_flight);

    // Offline recovery passes --verify and prescribes exactly the acked
    // enrichments.
    let recovered_nt = dir.join("recovered.nt");
    let out = Command::new(BIN)
        .args([
            "recover",
            "--journal-dir",
            journal_dir.to_str().unwrap(),
            "--verify",
            "--out",
            recovered_nt.to_str().unwrap(),
        ])
        .output()
        .expect("run recover");
    assert!(
        out.status.success(),
        "recover --verify failed: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let nt = std::fs::read_to_string(&recovered_nt).unwrap();
    for i in 0..acked {
        let needle = NOVEL[i as usize];
        assert!(nt.contains(needle), "acked enrichment {needle} lost:\n{nt}");
    }
    for unsent in &NOVEL[acked as usize..] {
        assert!(
            !nt.contains(unsent),
            "recovery must not invent never-requested enrichment {unsent}"
        );
    }
    // The CLI's recovery equals the library's replay, byte for byte.
    let (lib_kb, _) = katara_kb::journal::recover_dir(&journal_dir).expect("recover_dir");
    assert_eq!(katara_kb::ntriples::to_string(&lib_kb), nt);

    // Restart on the crashed directory: boot replay leaves zero lag and
    // a re-clean of the fixture is byte-identical to the pre-crash one.
    let daemon = Daemon::boot(&kb_path, &journal_dir);
    let (status, health) = send_raw(&daemon.addr, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status, 200);
    assert!(health.contains("\"lag\":0"), "post-replay lag: {health}");
    let (status, post) = send_raw(&daemon.addr, &post_clean(REF_CSV));
    assert_eq!(status, 200, "{post}");
    assert_eq!(
        pre, post,
        "re-clean after crash recovery must be byte-identical"
    );
    daemon.kill();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_sigkill_mid_burst_never_loses_acked_enrichment() {
    for seed in [7, 23, 41] {
        crash_round(seed);
    }
}

/// Crash between two lives repeatedly: every restart must replay to
/// exactly the state the previous life acked, monotonically growing.
#[test]
fn repeated_crashes_accumulate_acked_state() {
    let dir = scratch("repeat");
    let kb_path = dir.join("kb.nt");
    let journal_dir = dir.join("wal");
    std::fs::write(&kb_path, KB_NT).unwrap();

    let mut acked_names: Vec<&str> = Vec::new();
    for life in 0..3u64 {
        let daemon = Daemon::boot(&kb_path, &journal_dir);
        let (status, body) = send_raw(&daemon.addr, &post_clean(&novel_csv(life)));
        assert_eq!(status, 200, "life {life}: {body}");
        acked_names.push(NOVEL[life as usize]);
        daemon.kill();

        let (kb, report) = katara_kb::journal::recover_dir(&journal_dir).expect("recover_dir");
        let nt = katara_kb::ntriples::to_string(&kb);
        for name in &acked_names {
            assert!(nt.contains(name), "life {life}: {name} lost after crash");
        }
        // Each life starts from a fresh boot checkpoint, so only the
        // current life's records sit in the journal.
        assert!(report.replayed_records >= 1, "life {life}: {report:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
