//! Thread-count invariance of the full pipeline under Dawid–Skene
//! aggregation.
//!
//! The EM aggregator keeps per-worker quality state across the whole
//! run, so any thread-order leak into the ask sequence would change
//! which workers answer which question — and with it every posterior.
//! This test cleans real corpus tables with a faulty Dawid–Skene crowd
//! at pool sizes 1, 2, and 8 and requires byte-identical reports and
//! crowd statistics: `--threads` must stay a performance knob, never a
//! semantics knob, in Dawid–Skene mode too.

use katara_core::pipeline::{Katara, KataraConfig};
use katara_core::prelude::*;
use katara_crowd::{AggregationMode, Crowd, CrowdConfig, FaultPlan};
use katara_datagen::{KbFlavor, TableOracle};
use katara_eval::corpus::{Corpus, CorpusConfig};

/// The pool sizes the repo pins down: sequential, small, oversubscribed.
const POOLS: [usize; 3] = [1, 2, 8];

fn config_with(threads: usize) -> KataraConfig {
    KataraConfig {
        threads: Threads::fixed(threads),
        candidates: CandidateConfig {
            threads: Threads::fixed(threads),
            ..CandidateConfig::default()
        },
        ..KataraConfig::default()
    }
}

#[test]
fn dawid_skene_clean_is_thread_count_invariant() {
    let corpus = Corpus::build(&CorpusConfig::small());
    let flavor = KbFlavor::YagoLike;
    for (ti, g) in corpus.wiki.iter().enumerate() {
        let run = |threads: usize| {
            let mut kb = corpus.kb(flavor);
            let oracle = TableOracle::new(corpus.facts.clone(), g.ground_truth.clone(), flavor);
            let mut crowd = Crowd::new(
                CrowdConfig {
                    worker_accuracy: 0.85,
                    seed: ti as u64,
                    aggregation: AggregationMode::DawidSkene,
                    faults: FaultPlan {
                        seed: ti as u64,
                        spammer_fraction: 0.25,
                        ..FaultPlan::default()
                    },
                    ..CrowdConfig::default()
                },
                oracle,
            )
            .expect("crowd config is valid");
            let report = Katara::new(config_with(threads))
                .clean(&g.table, &mut kb, &mut crowd)
                .expect("corpus tables yield a pattern");
            (format!("{report:?}"), crowd.stats().clone())
        };
        let (base_report, base_stats) = run(POOLS[0]);
        for &threads in &POOLS[1..] {
            let (report, stats) = run(threads);
            assert_eq!(
                base_stats, stats,
                "wiki[{ti}]: crowd statistics differ at {threads} threads"
            );
            assert_eq!(
                base_report, report,
                "wiki[{ti}]: cleaning report differs at {threads} threads"
            );
        }
    }
}
