//! **Table 2** — pattern-discovery precision and recall of Support,
//! MaxLike, PGM and RankJoin over the three dataset families and both
//! KBs (top-1 pattern, supertype partial credit).

use katara_datagen::KbFlavor;

use crate::corpus::Corpus;
use crate::experiments::{candidates_for_seq, flavors, ground_truth_for, Algo};
use crate::metrics::{pattern_precision_recall, PatternScore};
use crate::report::{fmt2, MdTable};

/// Scores for one (dataset, flavor) cell: per algorithm.
#[derive(Debug, Clone, Default)]
pub struct Cell {
    /// Dataset family.
    pub dataset: &'static str,
    /// KB flavor.
    pub flavor: Option<KbFlavor>,
    /// One score per [`Algo::all`] entry.
    pub scores: [PatternScore; 4],
}

/// The structured result.
#[derive(Debug, Clone, Default)]
pub struct Table2 {
    /// One cell per (dataset, flavor).
    pub cells: Vec<Cell>,
}

/// Run the experiment.
pub fn run(corpus: &Corpus) -> Table2 {
    let mut out = Table2::default();
    for flavor in flavors() {
        let kb = corpus.kb(flavor);
        for (name, tables) in corpus.families() {
            // Score each table independently in parallel, then fold the
            // per-table scores back in table order — the summation order
            // (and thus every float) is identical to the sequential loop.
            let per_table: Vec<[PatternScore; 4]> =
                katara_exec::par_map(katara_exec::Threads::auto(), &tables, |g| {
                    let cands = candidates_for_seq(&g.table, &kb);
                    let (gt_types, gt_rels) = ground_truth_for(g, flavor);
                    let mut scores = [PatternScore::default(); 4];
                    for (ai, algo) in Algo::all().into_iter().enumerate() {
                        let top = algo.topk(&g.table, &kb, &cands, 1);
                        scores[ai] = top
                            .first()
                            .map(|p| pattern_precision_recall(&kb, p, &gt_types, &gt_rels))
                            .unwrap_or_default();
                    }
                    scores
                });
            let n = per_table.len();
            let mut sums = [PatternScore::default(); 4];
            for table_scores in &per_table {
                for (ai, s) in table_scores.iter().enumerate() {
                    sums[ai].p += s.p;
                    sums[ai].r += s.r;
                }
            }
            let mut scores = [PatternScore::default(); 4];
            if n > 0 {
                for (ai, s) in sums.into_iter().enumerate() {
                    scores[ai] = PatternScore {
                        p: s.p / n as f64,
                        r: s.r / n as f64,
                    };
                }
            }
            out.cells.push(Cell {
                dataset: name,
                flavor: Some(flavor),
                scores,
            });
        }
    }
    out
}

impl Table2 {
    /// The score of one algorithm on one (dataset, flavor).
    pub fn score(&self, dataset: &str, flavor: KbFlavor, algo: Algo) -> Option<PatternScore> {
        let ai = Algo::all().iter().position(|&a| a == algo)?;
        self.cells
            .iter()
            .find(|c| c.dataset == dataset && c.flavor == Some(flavor))
            .map(|c| c.scores[ai])
    }

    /// Render the Markdown section.
    pub fn render(&self) -> String {
        let mut out = String::from("## Table 2 — pattern discovery precision and recall\n\n");
        for flavor in flavors() {
            let mut t = MdTable::new(&[
                "dataset",
                "Support P",
                "Support R",
                "MaxLike P",
                "MaxLike R",
                "PGM P",
                "PGM R",
                "RankJoin P",
                "RankJoin R",
            ]);
            for c in self.cells.iter().filter(|c| c.flavor == Some(flavor)) {
                let mut row = vec![c.dataset.to_string()];
                for s in &c.scores {
                    row.push(fmt2(s.p));
                    row.push(fmt2(s.r));
                }
                t.row(row);
            }
            out.push_str(&format!("### {}\n\n{}\n", flavor.name(), t.render()));
        }
        out.push_str(
            "Paper shape: RankJoin best everywhere; Support worst (drifts \
             to general types); MaxLike in between; PGM mixed.\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn rankjoin_beats_support() {
        let corpus = Corpus::build(&CorpusConfig::small());
        let t2 = run(&corpus);
        for flavor in flavors() {
            for ds in ["WikiTables", "WebTables", "RelationalTables"] {
                let rj = t2.score(ds, flavor, Algo::RankJoin).unwrap();
                let sup = t2.score(ds, flavor, Algo::Support).unwrap();
                assert!(
                    rj.f_measure() >= sup.f_measure(),
                    "{ds}/{flavor:?}: RankJoin {:.2} < Support {:.2}",
                    rj.f_measure(),
                    sup.f_measure()
                );
            }
        }
    }

    #[test]
    fn renders_both_flavors() {
        let corpus = Corpus::build(&CorpusConfig::small());
        let md = run(&corpus).render();
        assert!(md.contains("yago-like"));
        assert!(md.contains("dbpedia-like"));
        assert!(md.contains("RankJoin P"));
    }
}
