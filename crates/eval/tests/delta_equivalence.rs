//! Byte-identical equivalence of the incremental cleaning engine and a
//! full re-clean.
//!
//! [`DeltaSession::clean_delta`] is a performance cache, never a
//! semantics knob: after any stream of table edits (upserts, appends,
//! deletes) interleaved with KB enrichment deltas, the incremental
//! report must be exactly the report `Katara::clean` produces on the
//! edited table against the same KB state with an identically seeded
//! crowd — including identical `NoPatternFound` failures when edits
//! destroy every pattern. Checked with proptest-generated edit streams
//! at every pinned worker-pool size and on both KB store backends.

use katara_core::prelude::*;
use katara_crowd::{Answer, Crowd, CrowdConfig, Question};
use katara_kb::{Kb, KbBuilder};
use katara_table::{Table, Value};
use proptest::prelude::*;

/// The pool sizes the equivalence gates pin down: sequential, small,
/// oversubscribed.
const POOLS: [usize; 3] = [1, 2, 8];

/// Cells the generated edits draw from. Index 0 is the empty string
/// (a null); "Berlin"/"Germany" resolve only after enrichment step 0
/// lands; "zz" starts unresolvable and gains a type in step 1.
const PALETTE: [&str; 8] = [
    "", "Italy", "Rome", "France", "Paris", "Berlin", "Germany", "zz",
];

/// Two country/capital pairs, as in the resolve-equivalence suite, so
/// edits can both repair and destroy the discovered pattern.
fn toy_kb() -> Kb {
    let mut b = KbBuilder::new();
    let country = b.class("country");
    let capital = b.class("capital");
    let has_capital = b.property("hasCapital");
    let italy = b.entity("Italy", &[country]);
    let rome = b.entity("Rome", &[capital]);
    let france = b.entity("France", &[country]);
    let paris = b.entity("Paris", &[capital]);
    b.fact(italy, has_capital, rome);
    b.fact(france, has_capital, paris);
    b.finalize()
}

fn base_table() -> Table {
    let mut t = Table::with_opaque_columns("pairs", 2);
    t.push_text_row(&["Italy", "Rome"]);
    t.push_text_row(&["France", "Paris"]);
    t.push_text_row(&["Italy", "Paris"]); // the error
    t
}

/// Deterministic stand-in oracle: both paths see identical answers,
/// which is all equivalence needs.
fn degenerate_answer(q: &Question) -> Answer {
    match q {
        Question::Fact { .. } => Answer::Bool(true),
        _ => Answer::Choice(0),
    }
}

fn fresh_crowd() -> Crowd<fn(&Question) -> Answer> {
    Crowd::new(
        CrowdConfig {
            worker_accuracy: 1.0,
            seed: 7,
            ..CrowdConfig::default()
        },
        degenerate_answer as fn(&Question) -> Answer,
    )
    .expect("crowd config is valid")
}

fn config(threads: usize) -> KataraConfig {
    KataraConfig {
        threads: Threads::fixed(threads),
        candidates: CandidateConfig {
            threads: Threads::fixed(threads),
            ..CandidateConfig::default()
        },
        ..KataraConfig::default()
    }
}

/// One step of a generated replay stream.
#[derive(Debug, Clone)]
enum Step {
    /// A batch of table edits, applied (and compared) as one delta. Each
    /// spec is `(op, row_sel, cell_a, cell_b)`; row selectors are
    /// interpreted against the live row count at application time so
    /// every generated edit is in range.
    Edits(Vec<(u8, u8, usize, usize)>),
    /// An externally journaled KB enrichment, by kind.
    Enrich(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // The vendored proptest shim has no `prop_oneof!`; a mapped tuple
    // gives the same mix — kinds 0..3 enrich, the rest edit.
    (
        0u8..8,
        prop::collection::vec(
            (0u8..8, 0u8..8, 0usize..PALETTE.len(), 0usize..PALETTE.len()),
            1..4usize,
        ),
    )
        .prop_map(|(kind, specs)| {
            if kind < 3 {
                Step::Enrich(kind)
            } else {
                Step::Edits(specs)
            }
        })
}

/// Turn edit specs into an in-range [`TableDelta`] for a table that
/// currently has `nrows` rows. `op % 4 == 0` deletes (when possible);
/// everything else upserts, with `row_sel % (nrows + 1) == nrows`
/// meaning append.
fn build_delta(specs: &[(u8, u8, usize, usize)], mut nrows: usize) -> TableDelta {
    let mut delta = TableDelta::default();
    for &(op, row_sel, a, b) in specs {
        if op % 4 == 0 && nrows > 0 {
            delta.edits.push(TableEdit::Delete {
                row: row_sel as usize % nrows,
            });
            nrows -= 1;
        } else {
            let row = row_sel as usize % (nrows + 1);
            if row == nrows {
                nrows += 1;
            }
            delta.edits.push(TableEdit::Upsert {
                row,
                cells: vec![Value::from_cell(PALETTE[a]), Value::from_cell(PALETTE[b])],
            });
        }
    }
    delta
}

/// Mutate `kb` the way an external writer would (all ops captured into
/// the returned journal delta). Every kind is idempotent, so repeated
/// steps in one stream are fine.
fn enrich(kb: &mut Kb, kind: u8) -> EnrichmentDelta {
    kb.begin_delta_capture();
    match kind % 3 {
        0 => {
            // A brand-new pair: flips "Berlin"/"Germany" cells from
            // unresolvable to pattern-conforming.
            let capital = kb.class_by_name("capital").expect("toy kb has capital");
            let country = kb.class_by_name("country").expect("toy kb has country");
            let has_capital = kb
                .property_by_name("hasCapital")
                .expect("toy kb has hasCapital");
            let berlin = kb.add_entity("Berlin", "Berlin", &[capital]);
            let germany = kb.add_entity("Germany", "Germany", &[country]);
            kb.add_fact(germany, has_capital, berlin);
        }
        1 => {
            // An exactly-labelled entity for a previously junk cell — the
            // candidate-set flip in-run enrichment provably cannot cause.
            let capital = kb.class_by_name("capital").expect("toy kb has capital");
            let zz = kb.add_entity("zz", "zz", &[]);
            kb.add_type(zz, capital);
        }
        _ => {
            // A fact edit on existing entities: validates the erroneous
            // base row without touching resolution candidates.
            let has_capital = kb
                .property_by_name("hasCapital")
                .expect("toy kb has hasCapital");
            let italy = kb.resource_by_name("Italy").expect("toy kb has Italy");
            let paris = kb.resource_by_name("Paris").expect("toy kb has Paris");
            kb.add_fact(italy, has_capital, paris);
        }
    }
    kb.take_delta()
}

/// Replay `stream` through one [`DeltaSession`], asserting after every
/// edit batch (and once more at the end) that the incremental result is
/// byte-identical to a full re-clean of the maintained shadow table.
/// Panics on divergence (the shim's prop_asserts are plain asserts).
fn replay(stream: &[Step], kb: Kb, threads: usize, label: &str) {
    let mut kb_inc = kb;
    let table = base_table();
    let mut t_full = table.clone();

    // Bootstrap byte-identity to `Katara::clean` is covered by the
    // delta unit tests and the resolve-equivalence suite; here the
    // bootstrap just warms the session for the replay.
    let katara = Katara::new(config(threads));
    let mut crowd = fresh_crowd();
    let (mut session, _boot) = katara
        .delta_session(&table, &mut kb_inc, &mut crowd)
        .expect("bootstrap clean succeeds on the base table");

    let compare = |session: &mut DeltaSession,
                   kb_inc: &mut Kb,
                   t_full: &Table,
                   delta: &TableDelta,
                   step: usize| {
        let mut kb_full = kb_inc.clone();
        let mut crowd_inc = fresh_crowd();
        let mut crowd_full = fresh_crowd();
        let inc = session.clean_delta(kb_inc, &mut crowd_inc, delta);
        let full = Katara::new(config(threads)).clean(t_full, &mut kb_full, &mut crowd_full);
        assert_eq!(
            format!("{inc:?}"),
            format!("{full:?}"),
            "{label}: incremental and full reports diverge at step {step} ({threads} threads)"
        );
        assert_eq!(
            format!("{:?}", session.table()),
            format!("{t_full:?}"),
            "{label}: session table diverged from the shadow table at step {step}"
        );
    };

    for (i, step) in stream.iter().enumerate() {
        match step {
            Step::Edits(specs) => {
                let delta = build_delta(specs, t_full.num_rows());
                delta
                    .apply(&mut t_full)
                    .expect("generated edits are in range by construction");
                compare(&mut session, &mut kb_inc, &t_full, &delta, i);
            }
            Step::Enrich(kind) => {
                let d = enrich(&mut kb_inc, *kind);
                assert!(
                    !session.is_current(&kb_inc) || d.is_empty(),
                    "{label}: a non-empty journal delta must stale the snapshot"
                );
                session.apply_enrichment(&kb_inc, &d);
                assert!(
                    session.is_current(&kb_inc),
                    "{label}: apply_enrichment must bring the snapshot current"
                );
            }
        }
    }
    // Final empty-delta run so streams ending in enrichment are compared.
    compare(
        &mut session,
        &mut kb_inc,
        &t_full,
        &TableDelta::default(),
        stream.len(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn incremental_replay_matches_full_reclean(
        stream in prop::collection::vec(step_strategy(), 0..5usize),
    ) {
        let base = toy_kb();
        for (backend, kb) in [
            ("legacy", base.with_legacy_backend()),
            ("columnar", base.with_columnar_backend()),
        ] {
            for &threads in &POOLS {
                replay(&stream, kb.clone(), threads, backend);
            }
        }
    }
}

/// A deterministic smoke stream covering every step kind, kept outside
/// proptest so a regression names the exact scenario.
#[test]
fn canonical_stream_replays_identically() {
    let stream = [
        Step::Edits(vec![(1, 2, 1, 2)]), // fix the erroneous row
        Step::Enrich(0),                 // Berlin/Germany appear
        Step::Edits(vec![(1, 3, 6, 5), (0, 0, 0, 0)]), // append the new pair, delete row 0
        Step::Enrich(2),                 // Italy->Paris becomes a fact
        Step::Edits(vec![(1, 0, 1, 4)]), // overwrite with the now-valid pair
    ];
    for &threads in &POOLS {
        replay(&stream, toy_kb(), threads, "canonical");
    }
}
