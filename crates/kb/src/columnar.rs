//! Dictionary-encoded columnar storage for the fact indexes.
//!
//! The legacy store keeps one heap allocation per entity row
//! (`Vec<Vec<…>>`) and one per fact key (`HashMap<(s,o), Vec<PropertyId>>`).
//! At Yago scale that is millions of small allocations, ~100 bytes of
//! overhead per triple, and a pointer chase per probe. This module packs
//! the same data into sorted columnar arenas:
//!
//! * [`CsrRows`] — dense-id rows in CSR form (one `off` array + one flat
//!   `data` arena). Backs the type closure, ENT(T)/subENT(P)/objENT(P)
//!   sets, and the out/in adjacency lists.
//! * [`PairCsr`] — the SPO permutation of the fact triples: subject-major
//!   offsets, per-subject object runs sorted by object id, and a flat
//!   property arena sliced per `(subject, object)` key. A probe is two
//!   array hops plus a binary/gallop search over the subject's (small)
//!   adjacency run — no hashing, no per-key allocation.
//! * [`NormIndex`] — the normalized-literal dictionary as a sorted key
//!   arena with CSR payload.
//!
//! Every structure carries a copy-on-write *overlay* so §6.1 enrichment
//! writes stay possible after finalize: a mutated row/key is shadowed by a
//! full private copy, base arenas are never touched. Read paths check the
//! (tiny, usually empty) overlay first, so query results — including
//! first-occurrence orderings — stay bit-identical to the legacy store.

use crate::ids::{LiteralId, PropertyId, ResourceId};

/// Gallop (exponential-then-binary) search for `target` in a sorted slice:
/// `Ok(i)` at a matching index, `Err(i)` at the insertion point. Probes
/// doubling strides from the front, then binary-searches the bracketed
/// window — O(log d) where d is the match distance, which beats a plain
/// binary search when the target sits near the cursor (the common case in
/// merge joins over skewed adjacency runs).
pub(crate) fn gallop_search<T: Ord>(slice: &[T], target: &T) -> Result<usize, usize> {
    let mut hi = 1usize;
    while hi < slice.len() && slice[hi - 1] < *target {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(slice.len());
    match slice[lo..hi].binary_search(target) {
        Ok(i) => Ok(lo + i),
        Err(i) => Err(lo + i),
    }
}

/// [`gallop_search`] under a key projection: search a slice sorted by
/// `key(elem)` for `target`. Lets the hierarchy closures (sorted
/// `(ancestor, distance)` runs) share the probe primitive without
/// materializing a key column.
pub(crate) fn gallop_search_by_key<T, K: Ord>(
    slice: &[T],
    target: &K,
    key: impl Fn(&T) -> K,
) -> Result<usize, usize> {
    let mut hi = 1usize;
    while hi < slice.len() && key(&slice[hi - 1]) < *target {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(slice.len());
    match slice[lo..hi].binary_search_by(|e| key(e).cmp(target)) {
        Ok(i) => Ok(lo + i),
        Err(i) => Err(lo + i),
    }
}

/// Dense rows in compressed-sparse-row form with a copy-on-write overlay.
///
/// Rows at indexes past the base arena (entities added by enrichment) are
/// implicitly empty until written, at which point they live entirely in
/// the overlay.
#[derive(Debug, Clone, Default)]
pub(crate) struct CsrRows<T> {
    off: Vec<u32>,
    data: Vec<T>,
    /// Shadow rows, sorted by row index. A present entry REPLACES the base
    /// row (it starts as a copy of it).
    overlay: Vec<(u32, Vec<T>)>,
}

impl<T: Copy> CsrRows<T> {
    /// Pack `rows` into CSR form.
    pub(crate) fn from_rows(rows: &[Vec<T>]) -> Self {
        let mut off = Vec::with_capacity(rows.len() + 1);
        let mut data = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        off.push(0u32);
        for row in rows {
            data.extend_from_slice(row);
            off.push(u32::try_from(data.len()).expect("CSR arena exceeds u32 offsets"));
        }
        CsrRows {
            off,
            data,
            overlay: Vec::new(),
        }
    }

    /// Number of rows in the base arena (overlay-only rows excluded).
    pub(crate) fn base_rows(&self) -> usize {
        self.off.len() - 1
    }

    /// The highest row index with any content, plus one.
    pub(crate) fn row_span(&self) -> usize {
        let over = self.overlay.last().map_or(0, |&(i, _)| i as usize + 1);
        self.base_rows().max(over)
    }

    /// The row at `i` (empty when never written and outside the base).
    pub(crate) fn row(&self, i: usize) -> &[T] {
        let key = i as u32;
        if let Ok(k) = self.overlay.binary_search_by_key(&key, |&(r, _)| r) {
            return &self.overlay[k].1;
        }
        if i + 1 < self.off.len() {
            &self.data[self.off[i] as usize..self.off[i + 1] as usize]
        } else {
            &[]
        }
    }

    /// Append `x` to row `i`, shadowing the base row on first write.
    pub(crate) fn push(&mut self, i: usize, x: T) {
        self.shadow_row(i).push(x);
    }

    /// Append `x` to row `i` unless already present (linear scan —
    /// enrichment-path semantics, identical to the legacy `push_unique`).
    pub(crate) fn push_unique(&mut self, i: usize, x: T)
    where
        T: PartialEq,
    {
        let row = self.shadow_row(i);
        // Overlay rows are tiny enrichment tails: a linear scan here is
        // the legacy semantics, not the §5e query-path dedup the
        // quadratic-dedup lint polices.
        let dup = row.contains(&x);
        if !dup {
            row.push(x);
        }
    }

    /// Membership test against a row whose BASE content is sorted (type
    /// closures, ENT sets). Overlay rows may carry an unsorted enrichment
    /// tail and are scanned linearly, matching legacy `contains` results.
    pub(crate) fn contains_sorted(&self, i: usize, x: T) -> bool
    where
        T: Ord,
    {
        let key = i as u32;
        if let Ok(k) = self.overlay.binary_search_by_key(&key, |&(r, _)| r) {
            return self.overlay[k].1.contains(&x);
        }
        if i + 1 < self.off.len() {
            let row = &self.data[self.off[i] as usize..self.off[i + 1] as usize];
            gallop_search(row, &x).is_ok()
        } else {
            false
        }
    }

    fn shadow_row(&mut self, i: usize) -> &mut Vec<T> {
        let key = i as u32;
        let k = match self.overlay.binary_search_by_key(&key, |&(r, _)| r) {
            Ok(k) => k,
            Err(k) => {
                let base: Vec<T> = if i + 1 < self.off.len() {
                    self.data[self.off[i] as usize..self.off[i + 1] as usize].to_vec()
                } else {
                    Vec::new()
                };
                self.overlay.insert(k, (key, base));
                k
            }
        };
        &mut self.overlay[k].1
    }

    /// Materialize every row back into `Vec<Vec<T>>` form (legacy layout),
    /// padded/truncated to exactly `rows` rows.
    pub(crate) fn to_rows(&self, rows: usize) -> Vec<Vec<T>> {
        (0..rows).map(|i| self.row(i).to_vec()).collect()
    }
}

/// The SPO permutation of the fact triples, generic over the object column
/// (`ResourceId` for resource facts, `LiteralId` for literal facts), with
/// a copy-on-write overlay keyed by `(subject, object)`.
#[derive(Debug, Clone, Default)]
pub(crate) struct PairCsr<B> {
    /// Subject-major offsets into `objs`: subject `s`'s adjacency run is
    /// `objs[off[s] .. off[s+1]]`, sorted by object id.
    off: Vec<u32>,
    objs: Vec<B>,
    /// Per-key property offsets into `props` (parallel to `objs`, len+1).
    prop_off: Vec<u32>,
    /// Properties per key in first-assertion order.
    props: Vec<PropertyId>,
    /// Shadow keys, sorted. A present entry replaces the base key's props.
    overlay: Vec<((ResourceId, B), Vec<PropertyId>)>,
}

impl<B: Copy + Ord> PairCsr<B> {
    /// Pack sorted `(key, props)` pairs. `pairs` must be sorted by key and
    /// unique; props keep their given (first-assertion) order.
    pub(crate) fn from_sorted_pairs(
        n_subjects: usize,
        pairs: &[((ResourceId, B), Vec<PropertyId>)],
    ) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        let mut off = vec![0u32; n_subjects + 1];
        let mut objs = Vec::with_capacity(pairs.len());
        let mut prop_off = Vec::with_capacity(pairs.len() + 1);
        let mut props = Vec::new();
        prop_off.push(0u32);
        for ((s, b), ps) in pairs {
            off[s.index() + 1] += 1;
            objs.push(*b);
            props.extend_from_slice(ps);
            prop_off.push(u32::try_from(props.len()).expect("property arena exceeds u32"));
        }
        for i in 1..off.len() {
            off[i] += off[i - 1];
        }
        PairCsr {
            off,
            objs,
            prop_off,
            props,
            overlay: Vec::new(),
        }
    }

    /// Number of distinct `(subject, object)` keys in the base arena.
    pub(crate) fn num_pairs(&self) -> usize {
        self.objs.len()
    }

    /// Number of subjects with at least one base key.
    pub(crate) fn num_subjects_with_pairs(&self) -> usize {
        self.off.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Whether any enrichment write has shadowed a key. While true, merge
    /// joins over base adjacency runs would miss overlay-only keys, so the
    /// probe planner must fall back to per-key probes.
    pub(crate) fn has_overlay(&self) -> bool {
        !self.overlay.is_empty()
    }

    /// The properties asserted for `(s, b)` (empty when the key is absent).
    pub(crate) fn get(&self, s: ResourceId, b: B) -> &[PropertyId] {
        if let Ok(k) = self.overlay.binary_search_by_key(&(s, b), |&(key, _)| key) {
            return &self.overlay[k].1;
        }
        let (objs, base) = self.adjacency(s);
        match objs.binary_search(&b) {
            Ok(i) => self.props_at(base + i),
            Err(_) => &[],
        }
    }

    /// Subject `s`'s base adjacency run (objects sorted ascending) and the
    /// arena index of its first entry.
    pub(crate) fn adjacency(&self, s: ResourceId) -> (&[B], usize) {
        let i = s.index();
        if i + 1 < self.off.len() {
            let lo = self.off[i] as usize;
            let hi = self.off[i + 1] as usize;
            (&self.objs[lo..hi], lo)
        } else {
            (&[], 0)
        }
    }

    /// The property slice of arena entry `k`.
    pub(crate) fn props_at(&self, k: usize) -> &[PropertyId] {
        &self.props[self.prop_off[k] as usize..self.prop_off[k + 1] as usize]
    }

    /// Idempotently assert `p` for key `(s, b)`, shadowing the base entry
    /// on first write. Returns whether the assertion was new.
    pub(crate) fn insert(&mut self, s: ResourceId, b: B, p: PropertyId) -> bool {
        let k = match self.overlay.binary_search_by_key(&(s, b), |&(key, _)| key) {
            Ok(k) => k,
            Err(k) => {
                let base = self.base_props(s, b).to_vec();
                self.overlay.insert(k, ((s, b), base));
                k
            }
        };
        let props = &mut self.overlay[k].1;
        let dup = props.contains(&p);
        if !dup {
            props.push(p);
        }
        !dup
    }

    fn base_props(&self, s: ResourceId, b: B) -> &[PropertyId] {
        let (objs, base) = self.adjacency(s);
        match objs.binary_search(&b) {
            Ok(i) => self.props_at(base + i),
            Err(_) => &[],
        }
    }

    /// Iterate every `(key, props)` pair — base entries with their overlay
    /// shadows applied, plus overlay-only keys. Order is unspecified.
    pub(crate) fn iter_pairs(&self) -> impl Iterator<Item = ((ResourceId, B), &[PropertyId])> {
        let base = (0..self.off.len().saturating_sub(1)).flat_map(move |s| {
            let lo = self.off[s] as usize;
            let hi = self.off[s + 1] as usize;
            (lo..hi).filter_map(move |k| {
                let key = (ResourceId::from_index(s), self.objs[k]);
                if self
                    .overlay
                    .binary_search_by_key(&key, |&(kk, _)| kk)
                    .is_ok()
                {
                    None // shadowed: reported from the overlay instead
                } else {
                    Some((key, self.props_at(k)))
                }
            })
        });
        let over = self.overlay.iter().map(|(key, ps)| (*key, ps.as_slice()));
        base.chain(over)
    }
}

/// The normalized-literal dictionary: sorted normalized spellings with a
/// CSR run of the literal ids spelling each of them, plus an overlay for
/// normalizations first seen during enrichment.
#[derive(Debug, Clone, Default)]
pub(crate) struct NormIndex {
    keys: Vec<Box<str>>,
    off: Vec<u32>,
    lids: Vec<LiteralId>,
    overlay: Vec<(Box<str>, Vec<LiteralId>)>,
}

impl NormIndex {
    /// Pack sorted `(norm, lids)` pairs; lids keep their intern order.
    pub(crate) fn from_sorted(pairs: Vec<(String, Vec<LiteralId>)>) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        let mut keys = Vec::with_capacity(pairs.len());
        let mut off = Vec::with_capacity(pairs.len() + 1);
        let mut lids = Vec::new();
        off.push(0u32);
        for (norm, ids) in pairs {
            keys.push(norm.into_boxed_str());
            lids.extend_from_slice(&ids);
            off.push(u32::try_from(lids.len()).expect("literal arena exceeds u32"));
        }
        NormIndex {
            keys,
            off,
            lids,
            overlay: Vec::new(),
        }
    }

    /// The literal ids whose normalized spelling is `norm`.
    pub(crate) fn get(&self, norm: &str) -> &[LiteralId] {
        if let Ok(k) = self.overlay.binary_search_by(|(key, _)| (**key).cmp(norm)) {
            return &self.overlay[k].1;
        }
        match self.keys.binary_search_by(|key| (**key).cmp(norm)) {
            Ok(i) => &self.lids[self.off[i] as usize..self.off[i + 1] as usize],
            Err(_) => &[],
        }
    }

    /// Record that `lid` spells `norm` (idempotent, legacy append order).
    pub(crate) fn insert(&mut self, norm: &str, lid: LiteralId) {
        let k = match self.overlay.binary_search_by(|(key, _)| (**key).cmp(norm)) {
            Ok(k) => k,
            Err(k) => {
                let base: Vec<LiteralId> = match self.keys.binary_search_by(|key| (**key).cmp(norm))
                {
                    Ok(i) => self.lids[self.off[i] as usize..self.off[i + 1] as usize].to_vec(),
                    Err(_) => Vec::new(),
                };
                self.overlay.insert(k, (Box::from(norm), base));
                k
            }
        };
        let ids = &mut self.overlay[k].1;
        let dup = ids.contains(&lid);
        if !dup {
            ids.push(lid);
        }
    }

    /// Iterate every `(norm, lids)` entry with overlay shadows applied.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&str, &[LiteralId])> {
        let base = self.keys.iter().enumerate().filter_map(move |(i, key)| {
            if self
                .overlay
                .binary_search_by(|(k, _)| (**k).cmp(key))
                .is_ok()
            {
                None
            } else {
                Some((
                    &**key,
                    &self.lids[self.off[i] as usize..self.off[i + 1] as usize],
                ))
            }
        });
        let over = self.overlay.iter().map(|(k, v)| (&**k, v.as_slice()));
        base.chain(over)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: u32) -> ResourceId {
        ResourceId(i)
    }
    fn pid(i: u32) -> PropertyId {
        PropertyId(i)
    }

    #[test]
    fn gallop_matches_binary_search() {
        let xs: Vec<u32> = vec![1, 3, 3, 7, 9, 20, 21, 22, 40];
        for t in 0..45u32 {
            let g = gallop_search(&xs, &t);
            match (g, xs.binary_search(&t)) {
                (Ok(i), Ok(_)) => assert_eq!(xs[i], t),
                (Err(i), Err(j)) => assert_eq!(i, j, "insertion point for {t}"),
                other => panic!("gallop/binary disagree for {t}: {other:?}"),
            }
        }
        assert_eq!(gallop_search::<u32>(&[], &5), Err(0));
    }

    #[test]
    fn gallop_by_key_matches_plain_gallop() {
        let pairs: Vec<(u32, u32)> = vec![(2, 1), (5, 1), (9, 2), (12, 3), (30, 1)];
        let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
        for t in 0..35u32 {
            assert_eq!(
                gallop_search_by_key(&pairs, &t, |&(k, _)| k),
                gallop_search(&keys, &t),
                "projected search for {t}"
            );
        }
        assert_eq!(
            gallop_search_by_key::<(u32, u32), u32>(&[], &5, |&(k, _)| k),
            Err(0)
        );
    }

    #[test]
    fn csr_rows_round_trip_and_overlay() {
        let rows = vec![vec![1u32, 2, 3], vec![], vec![9]];
        let mut csr = CsrRows::from_rows(&rows);
        assert_eq!(csr.base_rows(), 3);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(csr.row(i), row.as_slice());
        }
        assert_eq!(csr.row(7), &[] as &[u32]);
        // Shadow a base row, then an implicit row past the base.
        csr.push(1, 42);
        csr.push_unique(0, 2); // dup: no change
        csr.push_unique(0, 4);
        csr.push(5, 8);
        assert_eq!(csr.row(0), &[1, 2, 3, 4]);
        assert_eq!(csr.row(1), &[42]);
        assert_eq!(csr.row(2), &[9]); // untouched base row
        assert_eq!(csr.row(5), &[8]);
        assert_eq!(csr.row_span(), 6);
        assert_eq!(
            csr.to_rows(6),
            vec![vec![1, 2, 3, 4], vec![42], vec![9], vec![], vec![], vec![8]]
        );
    }

    #[test]
    fn csr_contains_sorted_handles_base_and_overlay() {
        let mut csr = CsrRows::from_rows(&[vec![2u32, 5, 9]]);
        assert!(csr.contains_sorted(0, 5));
        assert!(!csr.contains_sorted(0, 4));
        assert!(!csr.contains_sorted(3, 2));
        csr.push(0, 1); // unsorted tail, like an enrichment write
        assert!(csr.contains_sorted(0, 1));
        assert!(csr.contains_sorted(0, 9));
    }

    #[test]
    fn pair_csr_probes_and_overlay_inserts() {
        // Subject 0 -> objects {2, 5}; subject 2 -> object {1}.
        let pairs = vec![
            ((rid(0), rid(2)), vec![pid(7), pid(3)]),
            ((rid(0), rid(5)), vec![pid(1)]),
            ((rid(2), rid(1)), vec![pid(0)]),
        ];
        let mut idx = PairCsr::from_sorted_pairs(3, &pairs);
        assert_eq!(idx.num_pairs(), 3);
        assert_eq!(idx.num_subjects_with_pairs(), 2);
        assert_eq!(idx.get(rid(0), rid(2)), &[pid(7), pid(3)]);
        assert_eq!(idx.get(rid(0), rid(5)), &[pid(1)]);
        assert_eq!(idx.get(rid(1), rid(2)), &[] as &[PropertyId]);
        assert_eq!(idx.get(rid(9), rid(2)), &[] as &[PropertyId]);
        let (adj, base) = idx.adjacency(rid(0));
        assert_eq!(adj, &[rid(2), rid(5)]);
        assert_eq!(idx.props_at(base), &[pid(7), pid(3)]);

        // Enrichment: extend an existing key, then create a new one.
        assert!(!idx.has_overlay());
        assert!(idx.insert(rid(0), rid(2), pid(9)));
        assert!(!idx.insert(rid(0), rid(2), pid(3))); // dup
        assert!(idx.insert(rid(7), rid(7), pid(2))); // past base subjects
        assert!(idx.has_overlay());
        assert_eq!(idx.get(rid(0), rid(2)), &[pid(7), pid(3), pid(9)]);
        assert_eq!(idx.get(rid(7), rid(7)), &[pid(2)]);
        // Untouched keys still resolve from the base.
        assert_eq!(idx.get(rid(2), rid(1)), &[pid(0)]);

        // iter_pairs: every key exactly once, shadows applied.
        let mut all: Vec<_> = idx.iter_pairs().map(|(k, ps)| (k, ps.to_vec())).collect();
        all.sort_by_key(|&(k, _)| k);
        assert_eq!(
            all,
            vec![
                ((rid(0), rid(2)), vec![pid(7), pid(3), pid(9)]),
                ((rid(0), rid(5)), vec![pid(1)]),
                ((rid(2), rid(1)), vec![pid(0)]),
                ((rid(7), rid(7)), vec![pid(2)]),
            ]
        );
    }

    #[test]
    fn norm_index_get_insert_iter() {
        let lid = LiteralId;
        let mut idx = NormIndex::from_sorted(vec![
            ("1.78".to_string(), vec![lid(0), lid(2)]),
            ("rome".to_string(), vec![lid(1)]),
        ]);
        assert_eq!(idx.get("1.78"), &[lid(0), lid(2)]);
        assert_eq!(idx.get("rome"), &[lid(1)]);
        assert_eq!(idx.get("paris"), &[] as &[LiteralId]);
        idx.insert("rome", lid(5));
        idx.insert("rome", lid(5)); // dup
        idx.insert("paris", lid(3));
        assert_eq!(idx.get("rome"), &[lid(1), lid(5)]);
        assert_eq!(idx.get("paris"), &[lid(3)]);
        let mut all: Vec<_> = idx
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_vec()))
            .collect();
        all.sort();
        assert_eq!(
            all,
            vec![
                ("1.78".to_string(), vec![lid(0), lid(2)]),
                ("paris".to_string(), vec![lid(3)]),
                ("rome".to_string(), vec![lid(1), lid(5)]),
            ]
        );
    }
}
