//! Fuzz-style properties of the journal replay boundary.
//!
//! The recovery contract, checked on generated input:
//!
//! 1. **No panics.** [`katara_kb::journal::scan`] of arbitrary bytes —
//!    uniform noise, a valid header followed by garbage, framed records
//!    with flipped bits — returns `Ok` or a typed error, never panics.
//! 2. **Torn tails truncate cleanly.** Cutting a valid journal at any
//!    byte recovers exactly the records whose frames fully fit; the cut
//!    never corrupts an earlier record and never invents a later one.
//! 3. **Truncation repairs.** Re-scanning the intact prefix reported by
//!    a scan yields the same records with zero truncated bytes — the
//!    repair a recovering writer performs converges in one step.
//!
//! The case count is elevated in CI via `KATARA_FUZZ_CASES`.

use katara_kb::journal::{crc32, scan, JOURNAL_HEADER_LEN, JOURNAL_MAGIC};
use katara_kb::{DeltaOp, EnrichmentDelta};
use proptest::prelude::*;

/// Per-test case count: `KATARA_FUZZ_CASES` (CI runs an elevated count)
/// or the given local default.
fn fuzz_cases(default: u32) -> u32 {
    std::env::var("KATARA_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

// ---- A test-side encoder mirroring the documented on-disk format ------
// (header: magic + checkpoint_seq + base_version, LE; records framed as
// [len u32][crc32 u32][payload]; payload `d\t{seq}\n` + tab-separated op
// lines with backslash escapes). Re-implemented here so the tests catch
// silent format drift in the crate, not just internal self-consistency.

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn payload(seq: u64, delta: &EnrichmentDelta) -> Vec<u8> {
    let mut out = format!("d\t{seq}\n");
    for op in &delta.ops {
        match op {
            DeltaOp::Entity { name, label } => {
                out.push_str(&format!("E\t{}\t{}\n", escape(name), escape(label)));
            }
            DeltaOp::Type { resource, class } => {
                out.push_str(&format!("T\t{}\t{}\n", escape(resource), escape(class)));
            }
            DeltaOp::Fact {
                subject,
                property,
                object,
            } => {
                out.push_str(&format!(
                    "F\t{}\t{}\t{}\n",
                    escape(subject),
                    escape(property),
                    escape(object)
                ));
            }
            DeltaOp::LiteralFact {
                subject,
                property,
                literal,
            } => {
                out.push_str(&format!(
                    "L\t{}\t{}\t{}\n",
                    escape(subject),
                    escape(property),
                    escape(literal)
                ));
            }
            _ => unreachable!("strategy only builds the four known ops"),
        }
    }
    out.into_bytes()
}

fn journal_bytes(checkpoint_seq: u64, base_version: u64, deltas: &[EnrichmentDelta]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(JOURNAL_MAGIC);
    out.extend_from_slice(&checkpoint_seq.to_le_bytes());
    out.extend_from_slice(&base_version.to_le_bytes());
    for (i, delta) in deltas.iter().enumerate() {
        let p = payload(checkpoint_seq + 1 + i as u64, delta);
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&p).to_le_bytes());
        out.extend_from_slice(&p);
    }
    out
}

/// Strings that exercise the escaping: tabs, newlines, backslashes,
/// carriage returns, plain text, unicode.
fn field() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 \\t\\n\\r\\\\éß]{0,12}"
}

fn delta_strategy() -> impl Strategy<Value = EnrichmentDelta> {
    // The vendored proptest shim has no `prop_oneof!`; pick the variant
    // by a generated discriminant instead.
    let op = (0usize..4, field(), field(), field()).prop_map(|(which, a, b, c)| match which {
        0 => DeltaOp::Entity { name: a, label: b },
        1 => DeltaOp::Type {
            resource: a,
            class: b,
        },
        2 => DeltaOp::Fact {
            subject: a,
            property: b,
            object: c,
        },
        _ => DeltaOp::LiteralFact {
            subject: a,
            property: b,
            literal: c,
        },
    });
    prop::collection::vec(op, 0..5).prop_map(|ops| EnrichmentDelta { ops })
}

/// Whatever scan returns, its books must balance.
fn assert_scan_consistent(bytes: &[u8]) {
    if let Ok(s) = scan(bytes) {
        assert!(s.intact_len >= JOURNAL_HEADER_LEN);
        assert_eq!(
            s.intact_len + s.truncated_bytes,
            bytes.len() as u64,
            "every byte is intact or truncated: {s:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases(64)))]

    /// Scanning uniform byte noise never panics.
    #[test]
    fn scan_of_arbitrary_bytes_never_panics(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        assert_scan_consistent(&bytes);
    }

    /// A valid header followed by garbage parses the header and reports
    /// the garbage as a torn tail (scan must not error past the header).
    #[test]
    fn valid_header_with_garbage_tail_is_a_torn_tail(
        tail in prop::collection::vec(0u8..=255, 0..192),
        checkpoint_seq in 0u64..1000,
        base_version in 0u64..1000,
    ) {
        let mut bytes = journal_bytes(checkpoint_seq, base_version, &[]);
        bytes.extend_from_slice(&tail);
        let s = scan(&bytes).expect("a valid header always scans");
        prop_assert_eq!(s.checkpoint_seq, checkpoint_seq);
        prop_assert_eq!(s.base_version, base_version);
        prop_assert!(s.intact_len + s.truncated_bytes == bytes.len() as u64);
    }

    /// Cutting a valid journal at any byte recovers exactly the records
    /// whose frames fully fit — and re-scanning the intact prefix (the
    /// repair a recovering writer performs) converges with nothing torn.
    #[test]
    fn truncated_tail_recovers_the_intact_record_prefix(
        deltas in prop::collection::vec(delta_strategy(), 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let full = journal_bytes(3, 17, &deltas);
        let whole = scan(&full).expect("valid journal scans");
        prop_assert_eq!(whole.records.len(), deltas.len());
        prop_assert_eq!(whole.truncated_bytes, 0);

        let cut = (JOURNAL_HEADER_LEN as usize)
            + ((full.len() - JOURNAL_HEADER_LEN as usize) as f64 * cut_frac) as usize;
        let s = scan(&full[..cut]).expect("truncated journal still scans");
        // Exactly the records that fully fit, in order.
        prop_assert_eq!(&s.records[..], &whole.records[..s.records.len()]);
        prop_assert!(s.intact_len as usize <= cut);
        if (s.intact_len as usize) < cut {
            // The torn frame must indeed not fit in the cut.
            prop_assert!(s.records.len() < deltas.len());
        }
        // Truncation repairs: the intact prefix re-scans clean.
        let repaired = scan(&full[..s.intact_len as usize]).expect("repaired journal scans");
        prop_assert_eq!(repaired.records, s.records);
        prop_assert_eq!(repaired.truncated_bytes, 0);
    }

    /// Flipping any single bit after the header never panics and never
    /// corrupts the scan into non-prefix records: the CRC stops replay
    /// at the last record untouched by the flip.
    #[test]
    fn bit_flipped_tails_recover_a_prefix(
        deltas in prop::collection::vec(delta_strategy(), 1..5),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let full = journal_bytes(0, 0, &deltas);
        let whole = scan(&full).expect("valid journal scans");
        // deltas is non-empty, so the body holds at least one frame.
        let body = full.len() - JOURNAL_HEADER_LEN as usize;
        let pos = JOURNAL_HEADER_LEN as usize + ((body - 1) as f64 * pos_frac) as usize;
        let mut flipped = full.clone();
        flipped[pos] ^= 1 << bit;
        let s = scan(&flipped).expect("bit-flipped journal still scans");
        prop_assert!(
            s.records.len() <= whole.records.len()
                && s.records[..] == whole.records[..s.records.len()],
            "scan after a bit flip must yield a prefix of the original records"
        );
    }
}

/// The degenerate inputs that historically trip framed-log readers.
#[test]
fn degenerate_inputs_never_panic() {
    let header = journal_bytes(0, 0, &[]);
    let mut max_len = header.clone();
    max_len.extend_from_slice(&u32::MAX.to_le_bytes());
    max_len.extend_from_slice(&0u32.to_le_bytes());
    let mut zero_rec = header.clone();
    zero_rec.extend_from_slice(&0u32.to_le_bytes());
    zero_rec.extend_from_slice(&crc32(b"").to_le_bytes());
    let cases: Vec<Vec<u8>> = vec![
        Vec::new(),
        b"KATARAJ1".to_vec(),
        b"NOTMAGIC".to_vec(),
        vec![0; JOURNAL_HEADER_LEN as usize],
        header.clone(),
        header[..header.len() - 1].to_vec(),
        max_len,
        zero_rec,
    ];
    for bytes in cases {
        assert_scan_consistent(&bytes);
    }
}
