//! # katara-bench — shared fixtures for the Criterion benchmarks
//!
//! One bench target per evaluation artifact:
//!
//! * `discovery` — Tables 2–3, Figure 6 (candidate generation + the four
//!   discovery algorithms, top-k sweeps);
//! * `validation` — Table 4, Figure 7 (MUVF vs AVI, question sweeps);
//! * `annotation` — Table 5 (annotation throughput, enrichment);
//! * `repair` — Figure 8, Tables 6–7 (instance-graph index build, top-k
//!   repair generation, EQ/SCARE);
//! * `ablations` — the DESIGN.md design-choice benches (rank-join vs
//!   exhaustive, inverted lists vs full scan, coherence cache vs
//!   recompute, enrichment on/off).

use katara_core::candidates::{discover_candidates, CandidateConfig, CandidateSet};
use katara_datagen::{GeneratedTable, KbFlavor};
use katara_eval::corpus::{Corpus, CorpusConfig};
use katara_kb::Kb;

pub mod perf;

/// The benchmark corpus: small enough for Criterion's iteration counts,
/// large enough to exercise every code path.
pub fn bench_corpus() -> Corpus {
    Corpus::build(&CorpusConfig::small())
}

/// A (kb, table, candidates) fixture for one web table.
pub struct DiscoveryFixture {
    /// The KB.
    pub kb: Kb,
    /// The generated table.
    pub table: GeneratedTable,
    /// Precomputed candidate lists.
    pub cands: CandidateSet,
}

/// Build the standard discovery fixture (first web table, chosen flavor).
pub fn discovery_fixture(corpus: &Corpus, flavor: KbFlavor) -> DiscoveryFixture {
    let kb = corpus.kb(flavor);
    let table = corpus.web[0].clone();
    let cands = discover_candidates(&table.table, &kb, &CandidateConfig::default());
    DiscoveryFixture { kb, table, cands }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let corpus = bench_corpus();
        let f = discovery_fixture(&corpus, KbFlavor::DbpediaLike);
        assert!(f.table.table.num_rows() > 0);
        assert!(!f.cands.col_types.is_empty());
    }
}
