//! The `katara` binary — see [`katara_cli`] for the command reference.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match katara_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = katara_cli::run(cmd) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
