//! Deterministic pseudo-name generation.
//!
//! Entities need realistic-looking, mostly-unique string labels so that
//! string similarity, typo injection and label indexing behave as they do
//! on real data. Names are built from syllables with a seeded RNG and an
//! optional suffix pool; collisions get a numeric disambiguator.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::RngExt;

const SYLLABLES: &[&str] = &[
    "ba", "re", "mo", "ka", "li", "to", "sa", "du", "vi", "ne", "ra", "go", "te", "pu", "mi", "za",
    "lo", "fe", "ni", "ta", "ve", "ro", "si", "da", "ku", "pa", "je", "wa", "xi", "bo",
];

/// A seeded unique-name factory.
#[derive(Debug)]
pub struct NameGen {
    used: HashSet<String>,
}

impl NameGen {
    /// Fresh factory with an empty used-set.
    pub fn new() -> Self {
        NameGen {
            used: HashSet::new(),
        }
    }

    /// A capitalized word of `syllables` syllables.
    pub fn word(&mut self, rng: &mut StdRng, syllables: usize) -> String {
        let mut s = String::new();
        for _ in 0..syllables {
            s.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
        }
        capitalize(&s)
    }

    /// A unique name: `word` + optional suffix from `suffixes`; falls back
    /// to a numeric disambiguator on collision.
    pub fn unique(&mut self, rng: &mut StdRng, syllables: usize, suffixes: &[&str]) -> String {
        for _attempt in 0..16 {
            let mut name = self.word(rng, syllables);
            if !suffixes.is_empty() {
                name.push_str(suffixes[rng.random_range(0..suffixes.len())]);
            }
            if self.used.insert(name.clone()) {
                return name;
            }
        }
        // Dense namespace: disambiguate numerically.
        let base = self.word(rng, syllables);
        let mut i = 2usize;
        loop {
            let name = format!("{base} {i}");
            if self.used.insert(name.clone()) {
                return name;
            }
            i += 1;
        }
    }

    /// Register an externally-chosen name so `unique` avoids it.
    pub fn reserve(&mut self, name: &str) -> bool {
        self.used.insert(name.to_string())
    }

    /// Number of names handed out or reserved.
    pub fn len(&self) -> usize {
        self.used.len()
    }

    /// True if no names were generated yet.
    pub fn is_empty(&self) -> bool {
        self.used.is_empty()
    }
}

impl Default for NameGen {
    fn default() -> Self {
        Self::new()
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().chain(chars).collect(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn names_are_unique() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gen = NameGen::new();
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            let n = gen.unique(&mut rng, 2, &["ia", "land", ""]);
            assert!(seen.insert(n.clone()), "duplicate {n}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut gen = NameGen::new();
            (0..50)
                .map(|_| gen.unique(&mut rng, 3, &[]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn names_are_capitalized() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gen = NameGen::new();
        let n = gen.unique(&mut rng, 2, &[]);
        assert!(n.chars().next().unwrap().is_uppercase());
    }

    #[test]
    fn reserve_blocks_collisions() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut gen = NameGen::new();
        let n = gen.unique(&mut rng, 2, &[]);
        assert!(!gen.reserve(&n), "already present");
        assert!(gen.reserve("Fresh Name"));
    }
}
