//! Quickstart: clean the paper's Figure 1 soccer-players table end to end.
//!
//! Builds a miniature Yago-style KB containing the facts of the paper's
//! running example, runs the full KATARA pipeline — pattern discovery,
//! crowd validation, annotation, top-k repairs — and prints every step.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use katara::core::prelude::*;
use katara::crowd::{Answer, Crowd, CrowdConfig, Question};
use katara::kb::KbBuilder;
use katara::table::Table;

fn main() {
    // ------------------------------------------------------------------
    // The KB: the slice of Yago the paper's example needs. Note what is
    // *missing*: S. Africa's capital fact (KB incompleteness) — and that
    // Madrid is Spain's capital, not Italy's.
    // ------------------------------------------------------------------
    let mut b = KbBuilder::new().with_name("mini-yago");
    let person = b.class("person");
    let country = b.class("country");
    let capital = b.class("capital");
    let language = b.class("language");
    let nationality = b.property("nationality");
    let has_capital = b.property("hasCapital");
    let speaks = b.property("hasOfficialLanguage");

    let data = [
        ("Rossi", "Italy", "Rome", "Italian"),
        ("Klate", "S. Africa", "Pretoria", "Afrikaans"),
        ("Pirlo", "Italy", "Rome", "Italian"),
        ("Ramos", "Spain", "Madrid", "Spanish"),
        ("Benzema", "France", "Paris", "French"),
    ];
    for (p, c, cap, lang) in data {
        let rp = b.entity(p, &[person]);
        let rc = b.entity(c, &[country]);
        let rcap = b.entity(cap, &[capital]);
        let rlang = b.entity(lang, &[language]);
        b.fact(rp, nationality, rc);
        b.fact(rc, speaks, rlang);
        if c != "S. Africa" {
            // The KB does not know South Africa's capital.
            b.fact(rc, has_capital, rcap);
        }
    }
    let mut kb = b.finalize();
    println!(
        "KB `{}`: {} entities, {} classes, {} facts\n",
        kb.name(),
        kb.num_entities(),
        kb.num_classes(),
        kb.num_facts()
    );

    // ------------------------------------------------------------------
    // The dirty table (Fig. 1): t3 says Italy's capital is Madrid.
    // ------------------------------------------------------------------
    let mut table = Table::with_opaque_columns("soccer_players", 4);
    table.push_text_row(&["Rossi", "Italy", "Rome", "Italian"]);
    table.push_text_row(&["Klate", "S. Africa", "Pretoria", "Afrikaans"]);
    table.push_text_row(&["Pirlo", "Italy", "Madrid", "Italian"]);
    println!("input table:");
    for r in 0..table.num_rows() {
        println!("  t{}: {:?}", r + 1, table.row(r));
    }

    // ------------------------------------------------------------------
    // The crowd: simulated experts who know the real world — including
    // the fact the KB is missing.
    // ------------------------------------------------------------------
    let oracle = |q: &Question| match q {
        Question::ColumnType {
            column, candidates, ..
        } => {
            let want = ["person", "country", "capital", "language"][*column];
            candidates
                .iter()
                .position(|c| c == want)
                .map(Answer::Choice)
                .unwrap_or(Answer::NoneOfTheAbove)
        }
        Question::Relationship {
            columns,
            candidates,
            ..
        } => {
            let want = match columns {
                (0, 1) => "nationality",
                (1, 2) => "hasCapital",
                (1, 3) => "hasOfficialLanguage",
                _ => "",
            };
            candidates
                .iter()
                .position(|c| !want.is_empty() && c.contains(want))
                .map(Answer::Choice)
                .unwrap_or(Answer::NoneOfTheAbove)
        }
        Question::Fact {
            subject,
            property,
            object,
        } => {
            println!("  [crowd] Does {subject} {property} {object}?");
            let yes = matches!(
                (subject.as_str(), property.as_str(), object.as_str()),
                ("S. Africa", "hasCapital", "Pretoria")
            ) || property == "hasType"
                || (subject == "Klate" && object == "S. Africa");
            println!("  [crowd]   -> {}", if yes { "Yes" } else { "No" });
            Answer::Bool(yes)
        }
    };
    let mut crowd = Crowd::new(
        CrowdConfig {
            worker_accuracy: 1.0,
            ..CrowdConfig::default()
        },
        oracle,
    )
    .expect("example crowd config is valid");

    // ------------------------------------------------------------------
    // Run KATARA.
    // ------------------------------------------------------------------
    let katara = Katara::default();
    let report = katara
        .clean(&table, &mut kb, &mut crowd)
        .expect("a pattern must be discoverable");

    println!(
        "\nvalidated table pattern: {}",
        report.pattern.describe(&kb, table.columns())
    );
    println!(
        "pattern discovery explored {} search states, scored {} patterns",
        report.discovery_stats.states_expanded, report.discovery_stats.patterns_scored
    );

    println!("\nannotation:");
    for t in &report.annotation.tuples {
        println!("  t{}: {:?}", t.row + 1, t.status);
    }
    println!(
        "KB enrichment: {} new facts (S. Africa hasCapital Pretoria)",
        report.annotation.enriched_facts
    );

    println!("\npossible repairs:");
    for (row, repairs) in &report.repairs {
        println!("  t{} (erroneous):", row + 1);
        for (i, r) in repairs.iter().enumerate() {
            println!("    #{} cost {}: {:?}", i + 1, r.cost, r.changes);
        }
    }

    // Apply the top repair.
    if let Some((row, repairs)) = report.repairs.first() {
        if let Some(best) = repairs.first() {
            katara::core::repair::apply_repair(&mut table, *row, best);
        }
    }
    println!("\nrepaired table:");
    for r in 0..table.num_rows() {
        println!("  t{}: {:?}", r + 1, table.row(r));
    }
    println!(
        "\ncrowd cost: {} questions, {} worker answers",
        crowd.stats().questions(),
        crowd.stats().worker_answers
    );
}
