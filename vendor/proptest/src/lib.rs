//! Offline vendored stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the subset of the proptest API this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies (`0usize..6`, `0.01f64..1.0`, `0.0f64..=1.0`),
//! * string-regex strategies of the form `"[a-z ]{0,16}"` / `".{0,40}"`,
//! * `prop::collection::vec`, tuple strategies, and `prop_map`.
//!
//! Inputs are generated from a deterministic per-test RNG. There is no
//! shrinking: a failing case panics with the generated inputs printed by
//! the assertion itself, which is enough to reproduce (the stream is
//! seeded from the test name, so reruns are identical).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Test-runner configuration.
pub mod test_runner {
    /// Mirrors `proptest::test_runner::Config` for the parts we use.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Deterministic RNG used by generated tests (public for the macro).
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed a stream from the test's name so runs are reproducible.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub use strategy::{Just, Strategy};

use std::ops::{Range, RangeInclusive};

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::RngExt::random_range(rng.rng(), self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::RngExt::random_range(rng.rng(), self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().random_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// A `&str` is a strategy generating strings matching a simple regex of
/// the form `CLASS{min,max}` where `CLASS` is `.` or a `[...]` character
/// class of literals and ranges (e.g. `"[a-zA-Z ]{1,20}"`, `".{0,40}"`).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_simple_regex(self);
        let len = rng.rng().random_range(min..=max);
        (0..len)
            .map(|_| {
                let i = rng.rng().random_range(0..alphabet.len());
                alphabet[i]
            })
            .collect()
    }
}

/// Parse `CLASS{min,max}` (or `CLASS{n}` / bare `CLASS`, meaning one
/// repetition) into (alphabet, min, max). Panics on unsupported syntax —
/// this is a test-only shim and failing loudly beats generating the
/// wrong distribution silently.
fn parse_simple_regex(pattern: &str) -> (Vec<char>, usize, usize) {
    let (class, counts) = match pattern.find('{') {
        Some(i) => {
            let counts = pattern[i + 1..]
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated counts in regex {pattern:?}"));
            (&pattern[..i], Some(counts))
        }
        None => (pattern, None),
    };
    let alphabet: Vec<char> = if class == "." {
        // Printable ASCII minus newline, like proptest's `.` restricted
        // to one byte (upstream samples all of char; ASCII is enough for
        // the string-similarity properties tested here).
        (' '..='~').collect()
    } else {
        let inner = class
            .strip_prefix('[')
            .and_then(|c| c.strip_suffix(']'))
            .unwrap_or_else(|| panic!("unsupported regex class in {pattern:?}"));
        let chars: Vec<char> = inner.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                assert!(lo <= hi, "bad range {lo}-{hi} in regex {pattern:?}");
                out.extend(lo..=hi);
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty class in regex {pattern:?}");
        out
    };
    let (min, max) = match counts {
        None => (1, 1),
        Some(c) => match c.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("bad repeat lower bound"),
                hi.trim().parse().expect("bad repeat upper bound"),
            ),
            None => {
                let n = c.trim().parse().expect("bad repeat count");
                (n, n)
            }
        },
    };
    assert!(min <= max, "empty repeat range in regex {pattern:?}");
    (alphabet, min, max)
}

/// Namespaced strategy constructors (`prop::collection::vec` etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::TestRng;
        use std::ops::Range;

        /// Size specification for [`vec`]: an exact length or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    min: n,
                    max_exclusive: n + 1,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    min: r.start,
                    max_exclusive: r.end,
                }
            }
        }

        /// Strategy for `Vec`s of values from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec`].
        #[derive(Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.generate_len(self.size.min, self.size.max_exclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

impl TestRng {
    /// Length draw helper for collection strategies.
    pub fn generate_len(&mut self, min: usize, max_exclusive: usize) -> usize {
        self.rng().random_range(min..max_exclusive)
    }
}

/// Everything a test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Define property tests. Supports the subset of upstream syntax used in
/// this workspace: an optional leading `#![proptest_config(EXPR)]` and
/// any number of `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])+ fn $name:ident ($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut __proptest_rng = $crate::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..config.cases {
                    let _ = __proptest_case;
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __proptest_rng,
                    );)+
                    // The closure lets bodies `return Ok(())` early, as
                    // upstream proptest allows.
                    #[allow(clippy::redundant_closure_call)]
                    let __proptest_result: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = __proptest_result {
                        panic!("property failed: {e}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_parsing() {
        let (alpha, min, max) = super::parse_simple_regex("[a-z ]{0,16}");
        assert_eq!(alpha.len(), 27);
        assert_eq!((min, max), (0, 16));
        let (alpha, min, max) = super::parse_simple_regex(".{0,40}");
        assert_eq!(alpha.len(), 95);
        assert_eq!((min, max), (0, 40));
        let (alpha, _, _) = super::parse_simple_regex("[ -~]{0,12}");
        assert_eq!(alpha.len(), 95);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn strings_match_class(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vecs_respect_sizes(
            v in prop::collection::vec(0usize..10, 3..6),
            exact in prop::collection::vec(0u8..4, 7),
        ) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert_eq!(exact.len(), 7);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_map(x in (0usize..5, 0.0f64..=1.0).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(x.0 % 2 == 0 && x.0 < 10);
            prop_assert!((0.0..=1.0).contains(&x.1));
        }
    }
}
