//! Experiment runners — one module per table/figure of the paper.

pub mod ablation_coherence;
pub mod crowd_quality;
pub mod fig11;
pub mod fig12;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod robustness;
pub mod scaling;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

use katara_baselines::{maxlike_topk, pgm_topk, support_topk, PgmConfig};
use katara_core::candidates::{discover_candidates, CandidateConfig, CandidateSet};
use katara_core::pattern::TablePattern;
use katara_core::rank_join::{discover_topk, DiscoveryConfig};
use katara_crowd::{Crowd, CrowdConfig};
use katara_datagen::{GeneratedTable, KbFlavor, KbGenConfig, TableOracle};
use katara_kb::Kb;
use katara_table::Table;

use crate::corpus::Corpus;

/// The four pattern-discovery algorithms of §7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Support baseline.
    Support,
    /// Maximum-likelihood baseline.
    MaxLike,
    /// Probabilistic-graphical-model baseline.
    Pgm,
    /// KATARA's rank-join.
    RankJoin,
}

impl Algo {
    /// All four, in the paper's column order.
    pub fn all() -> [Algo; 4] {
        [Algo::Support, Algo::MaxLike, Algo::Pgm, Algo::RankJoin]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Support => "Support",
            Algo::MaxLike => "MaxLike",
            Algo::Pgm => "PGM",
            Algo::RankJoin => "RankJoin",
        }
    }

    /// Run the algorithm for the top-k patterns over precomputed
    /// candidates.
    pub fn topk(self, table: &Table, kb: &Kb, cands: &CandidateSet, k: usize) -> Vec<TablePattern> {
        match self {
            Algo::Support => support_topk(table, kb, cands, k),
            Algo::MaxLike => maxlike_topk(table, kb, cands, k),
            Algo::Pgm => pgm_topk(table, kb, cands, k, &PgmConfig::default()),
            Algo::RankJoin => discover_topk(table, kb, cands, k, &DiscoveryConfig::default()),
        }
    }
}

/// Both KB flavors, in the paper's order (Yago first).
pub fn flavors() -> [KbFlavor; 2] {
    [KbFlavor::YagoLike, KbFlavor::DbpediaLike]
}

/// Per-column ground-truth type names.
pub type GtTypes = Vec<Option<&'static str>>;
/// Ground-truth relationship triples `(subject col, object col, name)`.
pub type GtRels = Vec<(usize, usize, &'static str)>;

/// Ground truth of `g` rendered for `flavor`:
/// (per-column type names, relationship triples).
pub fn ground_truth_for(g: &GeneratedTable, flavor: KbFlavor) -> (GtTypes, GtRels) {
    let cfg = KbGenConfig::for_flavor(flavor);
    (
        g.ground_truth.types_for(flavor),
        g.ground_truth.rels_for(&cfg),
    )
}

/// Candidate discovery with the default experiment configuration.
pub fn candidates_for(table: &Table, kb: &Kb) -> CandidateSet {
    discover_candidates(table, kb, &CandidateConfig::default())
}

/// Candidate discovery pinned to one worker — used inside table-level
/// `par_map` sweeps so the corpus fans out across tables without nesting
/// a second pool per table.
fn candidates_for_seq(table: &Table, kb: &Kb) -> CandidateSet {
    discover_candidates(
        table,
        kb,
        &CandidateConfig {
            threads: katara_exec::Threads::single(),
            ..CandidateConfig::default()
        },
    )
}

/// An expert crowd for one (table, flavor) pair.
pub fn crowd_for(
    corpus: &Corpus,
    g: &GeneratedTable,
    flavor: KbFlavor,
    accuracy: f64,
    seed: u64,
) -> Crowd<TableOracle> {
    let oracle = TableOracle::new(corpus.facts.clone(), g.ground_truth.clone(), flavor);
    Crowd::new(
        CrowdConfig {
            worker_accuracy: accuracy,
            seed,
            ..CrowdConfig::default()
        },
        oracle,
    )
    .expect("experiment crowd config is valid")
}

/// Mean best-F of the top-k patterns over a set of tables, per algorithm
/// (shared by Figures 6 and 11).
pub fn topk_f_series(
    corpus: &Corpus,
    tables: &[&GeneratedTable],
    flavor: KbFlavor,
    ks: &[usize],
) -> Vec<[f64; 4]> {
    let kb = corpus.kb(flavor);
    let max_k = ks.iter().copied().max().unwrap_or(1);
    // Collect top-max_k once per table and algorithm; slice per k. Tables
    // are independent, so fan out across them (one worker pool level:
    // per-table discovery runs sequentially) and fold the per-table
    // results back in table order so the float sums are unchanged.
    let per_table: Vec<([Vec<TablePattern>; 4], GtTypes, GtRels)> =
        katara_exec::par_map(katara_exec::Threads::auto(), tables, |g| {
            let cands = candidates_for_seq(&g.table, &kb);
            let (gt_types, gt_rels) = ground_truth_for(g, flavor);
            let tops = [
                Algo::Support.topk(&g.table, &kb, &cands, max_k),
                Algo::MaxLike.topk(&g.table, &kb, &cands, max_k),
                Algo::Pgm.topk(&g.table, &kb, &cands, max_k),
                Algo::RankJoin.topk(&g.table, &kb, &cands, max_k),
            ];
            (tops, gt_types, gt_rels)
        });
    ks.iter()
        .map(|&k| {
            let mut means = [0.0f64; 4];
            for (tops, gt_types, gt_rels) in &per_table {
                for (ai, top) in tops.iter().enumerate() {
                    means[ai] += crate::metrics::best_f_of_topk(&kb, top, k, gt_types, gt_rels);
                }
            }
            if !per_table.is_empty() {
                for m in &mut means {
                    *m /= per_table.len() as f64;
                }
            }
            means
        })
        .collect()
}

/// Mean P/R of the crowd-validated pattern over a set of tables, for each
/// questions-per-variable value `q` (shared by Figures 7 and 12).
pub fn validation_series(
    corpus: &Corpus,
    tables: &[&GeneratedTable],
    flavor: KbFlavor,
    qs: &[usize],
    worker_accuracy: f64,
) -> Vec<crate::metrics::PatternScore> {
    use katara_core::validation::{validate_patterns, SchedulingStrategy, ValidationConfig};
    let kb = corpus.kb(flavor);
    qs.iter()
        .map(|&q| {
            let mut sum = crate::metrics::PatternScore::default();
            let mut n = 0usize;
            for (ti, g) in tables.iter().enumerate() {
                let cands = candidates_for(&g.table, &kb);
                let patterns = Algo::RankJoin.topk(&g.table, &kb, &cands, 5);
                if patterns.is_empty() {
                    continue;
                }
                let mut crowd =
                    crowd_for(corpus, g, flavor, worker_accuracy, (q * 1000 + ti) as u64);
                let outcome = validate_patterns(
                    &g.table,
                    &kb,
                    patterns,
                    &mut crowd,
                    &ValidationConfig {
                        questions_per_variable: q,
                        tuples_per_question: 5,
                        seed: ti as u64,
                        ..ValidationConfig::default()
                    },
                    SchedulingStrategy::Muvf,
                );
                let (gt_types, gt_rels) = ground_truth_for(g, flavor);
                let s = crate::metrics::pattern_precision_recall(
                    &kb,
                    &outcome.pattern,
                    &gt_types,
                    &gt_rels,
                );
                sum.p += s.p;
                sum.r += s.r;
                n += 1;
            }
            if n > 0 {
                sum.p /= n as f64;
                sum.r /= n as f64;
            }
            sum
        })
        .collect()
}

/// The outcome of one end-to-end KATARA repair run on a corrupted table.
#[derive(Debug)]
pub struct RepairRun {
    /// The injected errors (ground truth).
    pub log: katara_table::CorruptionLog,
    /// Top-k possible repairs per erroneous row.
    pub proposals: Vec<(usize, Vec<katara_core::repair::Repair>)>,
    /// False when the validated pattern had no relationships — the
    /// paper's Soccer-with-Yago `N.A.` case.
    pub applicable: bool,
}

/// Corrupt a copy of `g` on `corrupt_cols`, run the full KATARA pipeline
/// (discovery → validation → annotation → top-k repairs) and return the
/// scored artifacts. `None` when no pattern is discovered at all.
pub fn katara_repair_run(
    corpus: &Corpus,
    g: &GeneratedTable,
    flavor: KbFlavor,
    corrupt_cols: &[usize],
    k: usize,
    seed: u64,
) -> Option<RepairRun> {
    use katara_core::annotation::{annotate, AnnotationConfig};
    use katara_core::repair::{topk_repairs, RepairConfig, RepairIndex};
    use katara_core::validation::{validate_patterns, SchedulingStrategy, ValidationConfig};
    use katara_table::corrupt::{corrupt_table, CorruptionConfig};

    let mut dirty = g.table.clone();
    let mut log = corrupt_table(
        &mut dirty,
        &CorruptionConfig::paper_default(corrupt_cols.to_vec()),
        seed,
    );
    // Natural blanks are errors too (the paper: "most of remaining errors
    // in these tables are null values") — score against them as well.
    log.changes.extend(g.blanks.changes.iter().cloned());

    let mut kb = corpus.kb(flavor);
    let cands = candidates_for(&dirty, &kb);
    let patterns = Algo::RankJoin.topk(&dirty, &kb, &cands, 5);
    if patterns.is_empty() {
        return None;
    }
    let mut crowd = crowd_for(corpus, g, flavor, 0.97, seed);
    let outcome = validate_patterns(
        &dirty,
        &kb,
        patterns,
        &mut crowd,
        &ValidationConfig::default(),
        SchedulingStrategy::Muvf,
    );
    let pattern = outcome.pattern;
    if pattern.edges().is_empty() {
        // Without relationships KATARA cannot compute possible repairs
        // (§7.4: "Yago cannot be used to repair Soccer").
        return Some(RepairRun {
            log,
            proposals: Vec::new(),
            applicable: false,
        });
    }

    let annotation = annotate(
        &dirty,
        &pattern,
        &mut kb,
        &mut crowd,
        &AnnotationConfig::default(),
    );
    // Use the effective pattern (annotation-time feedback may have
    // stripped spurious elements).
    let pattern = annotation.pattern.clone();
    if pattern.edges().is_empty() {
        return Some(RepairRun {
            log,
            proposals: Vec::new(),
            applicable: false,
        });
    }
    let repair_cfg = RepairConfig::default();
    let index = RepairIndex::build(&kb, &pattern, &repair_cfg);
    let proposals = annotation
        .erroneous_rows()
        .into_iter()
        .map(|row| {
            let r = topk_repairs(&index, &kb, &pattern, dirty.row(row), k, &repair_cfg);
            (row, r)
        })
        .collect();
    Some(RepairRun {
        log,
        proposals,
        applicable: true,
    })
}

/// The Appendix D FDs for a RelationalTables member, plus the RHS columns
/// the paper injects errors into for the Table 6 comparison.
pub fn appendix_d_fds(table_name: &str) -> (Vec<katara_table::Fd>, Vec<usize>) {
    use katara_table::Fd;
    match table_name {
        // Person: A → B, C, D.
        "Person" => (Fd::expand(&[0], &[1, 2, 3]), vec![1, 2, 3]),
        // Soccer: C → A, B; A → E; D → A.
        "Soccer" => {
            let mut fds = Fd::expand(&[2], &[0, 1]);
            fds.push(Fd::new(vec![0], 4));
            fds.push(Fd::new(vec![3], 0));
            (fds, vec![0, 1, 4])
        }
        // University: A → B, C; C → B.
        "University" => {
            let mut fds = Fd::expand(&[0], &[1, 2]);
            fds.push(Fd::new(vec![2], 1));
            (fds, vec![1, 2])
        }
        other => panic!("no Appendix D FDs for table {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_roster_matches_paper() {
        let names: Vec<&str> = Algo::all().iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["Support", "MaxLike", "PGM", "RankJoin"]);
    }

    #[test]
    fn flavor_order_is_yago_first() {
        assert_eq!(flavors()[0], KbFlavor::YagoLike);
    }
}
