//! Crowd question and answer shapes.
//!
//! The paper decomposes pattern validation into two simple task kinds
//! (§5.1) — column-type validation and binary-relationship validation —
//! and data annotation adds boolean fact questions (§6.1). Every question
//! carries the contextual sample tuples shown to workers.

use std::fmt;

/// The kind of a question, for cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuestionKind {
    /// "What is the most accurate type of the highlighted column?" (Q1)
    ColumnType,
    /// "What is the most accurate relationship for the highlighted
    /// columns?" (Q2)
    Relationship,
    /// "Does `x` `P` `y`?" (Q_t2 / Q_t3)
    Fact,
}

/// A question posed to the crowd.
#[derive(Debug, Clone, PartialEq)]
pub enum Question {
    /// Select the best type for a column. `candidates` are readable type
    /// descriptions; workers may also answer "none of the above".
    ColumnType {
        /// Name of the table the question is about (context only).
        table: String,
        /// The highlighted column index.
        column: usize,
        /// Column names shown as header context.
        header: Vec<String>,
        /// `k_t` sample tuples exposing contextual values.
        sample_rows: Vec<Vec<String>>,
        /// Candidate type descriptions.
        candidates: Vec<String>,
    },
    /// Select the best relationship for an ordered column pair.
    Relationship {
        /// Name of the table the question is about.
        table: String,
        /// The (subject, object) column pair.
        columns: (usize, usize),
        /// Column names shown as header context.
        header: Vec<String>,
        /// `k_t` sample tuples.
        sample_rows: Vec<Vec<String>>,
        /// Candidate relationship descriptions (already directional, e.g.
        /// `"B hasCapital C"`).
        candidates: Vec<String>,
    },
    /// A boolean fact check, e.g. "Does S. Africa hasCapital Pretoria?".
    Fact {
        /// Subject display value.
        subject: String,
        /// Property display name.
        property: String,
        /// Object display value.
        object: String,
    },
}

impl Question {
    /// This question's kind.
    pub fn kind(&self) -> QuestionKind {
        match self {
            Question::ColumnType { .. } => QuestionKind::ColumnType,
            Question::Relationship { .. } => QuestionKind::Relationship,
            Question::Fact { .. } => QuestionKind::Fact,
        }
    }

    /// Number of selectable options a *wrong* worker can stray into:
    /// candidates + "none of the above" for choice questions, 2 for
    /// boolean facts.
    pub fn num_options(&self) -> usize {
        match self {
            Question::ColumnType { candidates, .. } | Question::Relationship { candidates, .. } => {
                candidates.len() + 1
            }
            Question::Fact { .. } => 2,
        }
    }
}

impl fmt::Display for Question {
    /// Render in the paper's HIT style (Q1 / Q2 / Q_t of §5.1, §6.1).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Question::ColumnType {
                column,
                header,
                sample_rows,
                candidates,
                ..
            } => {
                writeln!(
                    f,
                    "Q: What is the most accurate type of the highlighted column ({})?",
                    header.get(*column).map(String::as_str).unwrap_or("?")
                )?;
                writeln!(f, "   ({})", header.join(", "))?;
                for row in sample_rows {
                    writeln!(f, "   ({})", row.join(", "))?;
                }
                for c in candidates {
                    writeln!(f, "   ( ) {c}")?;
                }
                write!(f, "   ( ) none of the above")
            }
            Question::Relationship {
                columns,
                header,
                sample_rows,
                candidates,
                ..
            } => {
                writeln!(
                    f,
                    "Q: What is the most accurate relationship for highlighted columns ({}, {})?",
                    header.get(columns.0).map(String::as_str).unwrap_or("?"),
                    header.get(columns.1).map(String::as_str).unwrap_or("?"),
                )?;
                writeln!(f, "   ({})", header.join(", "))?;
                for row in sample_rows {
                    writeln!(f, "   ({})", row.join(", "))?;
                }
                for c in candidates {
                    writeln!(f, "   ( ) {c}")?;
                }
                write!(f, "   ( ) none of the above")
            }
            Question::Fact {
                subject,
                property,
                object,
            } => {
                writeln!(f, "Q: Does {subject} {property} {object}?")?;
                write!(f, "   ( ) Yes   ( ) No")
            }
        }
    }
}

/// A worker's (or the aggregated crowd's) answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Answer {
    /// Index into the question's `candidates`.
    Choice(usize),
    /// "None of the above".
    NoneOfTheAbove,
    /// Yes/No for [`Question::Fact`].
    Bool(bool),
}

impl Answer {
    /// Map an answer to a dense option slot for voting: choices first,
    /// then none-of-the-above; booleans use slots 0 (false) / 1 (true).
    pub fn slot(&self, num_candidates: usize) -> usize {
        match *self {
            Answer::Choice(i) => i,
            Answer::NoneOfTheAbove => num_candidates,
            Answer::Bool(b) => usize::from(b),
        }
    }

    /// Inverse of [`Answer::slot`] for choice-style questions.
    pub fn from_slot(slot: usize, num_candidates: usize, is_bool: bool) -> Answer {
        if is_bool {
            Answer::Bool(slot == 1)
        } else if slot == num_candidates {
            Answer::NoneOfTheAbove
        } else {
            Answer::Choice(slot)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn type_q() -> Question {
        Question::ColumnType {
            table: "soccer".into(),
            column: 1,
            header: vec!["A".into(), "B".into()],
            sample_rows: vec![vec!["Rossi".into(), "Italy".into()]],
            candidates: vec!["country".into(), "economy".into(), "state".into()],
        }
    }

    #[test]
    fn kinds_and_options() {
        assert_eq!(type_q().kind(), QuestionKind::ColumnType);
        assert_eq!(type_q().num_options(), 4);
        let fq = Question::Fact {
            subject: "Italy".into(),
            property: "hasCapital".into(),
            object: "Madrid".into(),
        };
        assert_eq!(fq.kind(), QuestionKind::Fact);
        assert_eq!(fq.num_options(), 2);
    }

    #[test]
    fn rendering_matches_paper_style() {
        let s = type_q().to_string();
        assert!(s.contains("most accurate type"));
        assert!(s.contains("(Rossi, Italy)"));
        assert!(s.contains("( ) country"));
        assert!(s.contains("none of the above"));

        let f = Question::Fact {
            subject: "S. Africa".into(),
            property: "hasCapital".into(),
            object: "Pretoria".into(),
        }
        .to_string();
        assert!(f.contains("Does S. Africa hasCapital Pretoria?"));
    }

    #[test]
    fn slot_round_trip() {
        for (a, n, b) in [
            (Answer::Choice(0), 3, false),
            (Answer::Choice(2), 3, false),
            (Answer::NoneOfTheAbove, 3, false),
            (Answer::Bool(true), 0, true),
            (Answer::Bool(false), 0, true),
        ] {
            assert_eq!(Answer::from_slot(a.slot(n), n, b), a);
        }
    }
}
