//! **Figure 12** (appendix C) — pattern-validation P/R sweeps on
//! WikiTables and RelationalTables. The paper notes RelationalTables
//! needs only one question per variable (less ambiguity).

use crate::corpus::Corpus;
use crate::experiments::fig7::{render_validation, QS, WORKER_ACCURACY};
use crate::experiments::{flavors, validation_series};
use crate::metrics::PatternScore;

/// The structured result.
#[derive(Debug, Clone, Default)]
pub struct Fig12 {
    /// `(dataset name, series[flavor][q])`.
    pub datasets: Vec<(&'static str, Vec<Vec<PatternScore>>)>,
}

/// Run the experiment.
pub fn run(corpus: &Corpus) -> Fig12 {
    let wiki: Vec<_> = corpus.wiki.iter().collect();
    let relational: Vec<_> = vec![&corpus.person, &corpus.soccer, &corpus.university];
    let mut out = Fig12::default();
    for (name, tables) in [("WikiTables", wiki), ("RelationalTables", relational)] {
        let series = flavors()
            .into_iter()
            .map(|flavor| validation_series(corpus, &tables, flavor, &QS, WORKER_ACCURACY))
            .collect();
        out.datasets.push((name, series));
    }
    out
}

impl Fig12 {
    /// Render the Markdown section.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, series) in &self.datasets {
            out.push_str(&render_validation(
                &format!("Figure 12 — pattern validation P/R ({name})"),
                series,
            ));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn both_datasets_covered_and_scores_sane() {
        let corpus = Corpus::build(&CorpusConfig::small());
        let f12 = run(&corpus);
        assert_eq!(f12.datasets.len(), 2);
        for (name, series) in &f12.datasets {
            for flavor_series in series {
                let last = flavor_series.last().unwrap();
                assert!(
                    last.p > 0.2 && last.r > 0.2,
                    "{name}: degenerate validation score {last:?}"
                );
            }
        }
        assert!(f12.render().contains("Figure 12"));
    }
}
