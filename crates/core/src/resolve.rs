//! The shared KB query snapshot: one read-only resolution of a table's
//! cell values against a KB, built once per `(table, KB)` pair and shared
//! immutably by every pipeline stage and every `katara-exec` worker.
//!
//! Every stage of KATARA — candidate discovery (§4.1), pattern matching
//! (§3.2), annotation (§6.1), repair (§6.2) — reduces to the same KB
//! primitives over cell *strings*: `candidate_resources`, `Q_types`,
//! `Q_rels`. A table with `n` cells typically has far fewer *distinct
//! normalized* values, so [`TableResolution`] deduplicates each column's
//! values, resolves each exactly once, and stores three read-only tiers:
//!
//! 1. **string tier** — per-cell value ids and normalized spellings.
//!    Pure string work, valid forever;
//! 2. **KB tier** — per-value candidate resources and `Q_types` closures;
//! 3. **pair-relation memo** — `(value, value) → Q_rels^1/Q_rels^2`
//!    results for the column-pair combinations that actually co-occur in
//!    the scanned rows, the hot path feeding the rank-join.
//!
//! ### Staleness (invalidation = never)
//!
//! The snapshot itself is immutable and is never invalidated in place.
//! Annotation *enriches* the KB mid-run (§6.1) and later tuples must see
//! the enriched facts, so the KB tiers are guarded by the KB's mutation
//! counter ([`Kb::version`]): the snapshot records the version it was
//! built against, and every KB-tier accessor takes `&Kb` and transparently
//! falls back to an equivalent live query once the version has moved.
//! Over-invalidation is safe (slower, identical answers); the string tier
//! needs no guard at all. Memory is bounded by the distinct-value count,
//! not the cell count — see `DESIGN.md` §5e.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

use katara_kb::sim;
use katara_kb::{ClassId, Kb, ProbePlan, PropertyId, ResourceId};
use katara_obs::{Counter, Gauge, NoopRecorder, Recorder};
use katara_table::Table;

/// How the pipeline resolves cells against the KB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResolveMode {
    /// Build one [`TableResolution`] per `(table, KB)` pair up front and
    /// share it across discovery, annotation, and repair.
    #[default]
    Snapshot,
    /// Query the KB directly from every stage — the historical path, kept
    /// for equivalence testing and cold-vs-warm benchmarking.
    Direct,
}

/// One distinct normalized cell value, resolved once.
#[derive(Debug, Clone)]
struct ResolvedValue {
    /// `sim::normalize` of every raw spelling mapping to this value.
    norm: String,
    /// `Kb::candidate_resources` of the value (KB tier).
    candidates: Vec<(ResourceId, f64)>,
    /// `Q_types`: types (with superclass closure) of the candidates.
    types: Vec<ClassId>,
}

/// `Q_rels` results for one ordered pair of distinct values.
#[derive(Debug, Clone, Default)]
pub struct PairRels {
    /// `Q_rels^1`: relationships with a resource object.
    pub res: Vec<PropertyId>,
    /// `Q_rels^2`: relationships with a literal object.
    pub lit: Vec<PropertyId>,
}

/// A read-only resolution of one table against one KB. See the module
/// docs for the tier structure and staleness contract.
#[derive(Debug, Clone)]
pub struct TableResolution {
    /// `Kb::version` at build time; KB tiers are valid while it holds.
    kb_version: u64,
    /// `cells[col][row]` → distinct-value id (None for null cells).
    cells: Vec<Vec<Option<u32>>>,
    values: Vec<ResolvedValue>,
    /// `(value_a, value_b)` → prebuilt `Q_rels` results, covering every
    /// ordered column pair over the first `pair_rows` rows.
    pair_rels: HashMap<(u32, u32), PairRels>,
    /// How many leading rows the pair memo covers.
    pair_rows: usize,
    non_null_cells: usize,
    /// Probe-plan tallies from the build-time pair memo, emitted as
    /// `kb.plan_*` counters when a recorder is attached.
    plan_type_first: u64,
    plan_rel_first: u64,
    /// Sink for per-tier lookup/hit/miss/fallback counters. Defaults to
    /// [`NoopRecorder`]; attach a live one with [`Self::with_recorder`].
    recorder: Arc<dyn Recorder>,
}

impl TableResolution {
    /// Resolve `table` against `kb`. All rows are resolved for the value
    /// tiers (annotation and repair walk the whole table); the pair memo
    /// covers the first `pair_rows` rows — pass the discovery scan cap
    /// ([`crate::candidates::CandidateConfig::max_rows`]), which is the
    /// only consumer of pair relations.
    pub fn build(table: &Table, kb: &Kb, pair_rows: usize) -> Self {
        let nrows = table.num_rows();
        let ncols = table.num_columns();
        let mut by_raw: HashMap<&str, u32> = HashMap::new();
        let mut by_norm: HashMap<String, u32> = HashMap::new();
        let mut values: Vec<ResolvedValue> = Vec::new();
        let mut cells = vec![vec![None; nrows]; ncols];
        let mut non_null_cells = 0usize;
        for (c, col) in cells.iter_mut().enumerate() {
            for (r, slot) in col.iter_mut().enumerate() {
                let Some(cell) = table.cell(r, c).as_str() else {
                    continue;
                };
                non_null_cells += 1;
                let id = match by_raw.get(cell) {
                    Some(&id) => id,
                    None => {
                        let norm = sim::normalize(cell);
                        let id = match by_norm.get(&norm) {
                            Some(&id) => id,
                            None => {
                                let candidates = kb.candidate_resources_normalized(&norm);
                                let types = kb.types_for_candidates(&candidates);
                                let id = u32::try_from(values.len())
                                    .expect("distinct-value space exhausted");
                                values.push(ResolvedValue {
                                    norm: norm.clone(),
                                    candidates,
                                    types,
                                });
                                by_norm.insert(norm, id);
                                id
                            }
                        };
                        by_raw.insert(cell, id);
                        id
                    }
                };
                *slot = Some(id);
            }
        }

        let pair_rows = nrows.min(pair_rows);
        let mut pair_rels: HashMap<(u32, u32), PairRels> = HashMap::new();
        let (mut plan_type_first, mut plan_rel_first) = (0u64, 0u64);
        for i in 0..ncols {
            for j in 0..ncols {
                if i == j {
                    continue;
                }
                for (a, b) in cells[i].iter().zip(&cells[j]).take(pair_rows) {
                    let (Some(a), Some(b)) = (*a, *b) else {
                        continue;
                    };
                    pair_rels.entry((a, b)).or_insert_with(|| {
                        let va = &values[a as usize];
                        let vb = &values[b as usize];
                        let (res, plan) =
                            kb.relations_for_candidates_planned(&va.candidates, &vb.candidates);
                        match plan {
                            ProbePlan::TypeFirst => plan_type_first += 1,
                            ProbePlan::RelFirst => plan_rel_first += 1,
                        }
                        PairRels {
                            res,
                            lit: kb.literal_relations_for_candidates(&va.candidates, &vb.norm),
                        }
                    });
                }
            }
        }

        TableResolution {
            kb_version: kb.version(),
            cells,
            values,
            pair_rels,
            pair_rows,
            non_null_cells,
            plan_type_first,
            plan_rel_first,
            recorder: Arc::new(NoopRecorder),
        }
    }

    /// Attach a recorder: subsequent tier accesses emit
    /// `resolve.{candidates,types,pair}_{lookups,hit,miss,fallback}`
    /// counters, and the snapshot's shape is published as gauges.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        recorder.set_gauge(Gauge::ResolveDistinctValues, self.values.len() as u64);
        recorder.set_gauge(Gauge::ResolveNonNullCells, self.non_null_cells as u64);
        recorder.incr_by(Counter::KbPlanTypeFirst, self.plan_type_first);
        recorder.incr_by(Counter::KbPlanRelFirst, self.plan_rel_first);
        self.recorder = recorder;
        self
    }

    /// Tally a live (non-memoized) probe-plan decision.
    fn record_plan(&self, plan: ProbePlan) {
        self.recorder.incr(match plan {
            ProbePlan::TypeFirst => Counter::KbPlanTypeFirst,
            ProbePlan::RelFirst => Counter::KbPlanRelFirst,
        });
    }

    /// True while the KB tiers still reflect `kb` (no enrichment write has
    /// landed since the snapshot was built).
    pub fn is_current(&self, kb: &Kb) -> bool {
        kb.version() == self.kb_version
    }

    /// Number of distinct normalized values across the table.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of non-null cells resolved.
    pub fn non_null_cells(&self) -> usize {
        self.non_null_cells
    }

    /// Distinct-value ratio: `num_values / non_null_cells` (1.0 for an
    /// empty table). Low ratios are where the snapshot pays off most.
    pub fn distinct_ratio(&self) -> f64 {
        if self.non_null_cells == 0 {
            1.0
        } else {
            self.values.len() as f64 / self.non_null_cells as f64
        }
    }

    /// How many leading rows the pair memo covers.
    pub fn pair_rows(&self) -> usize {
        self.pair_rows
    }

    /// The distinct-value id of cell `(col, row)`, `None` when null.
    pub fn value_id(&self, col: usize, row: usize) -> Option<u32> {
        self.cells.get(col)?.get(row).copied().flatten()
    }

    /// String tier: the normalized spelling of cell `(col, row)`. Never
    /// stale — normalization does not involve the KB.
    pub fn cell_norm(&self, col: usize, row: usize) -> Option<&str> {
        self.value_id(col, row)
            .map(|id| self.values[id as usize].norm.as_str())
    }

    /// The normalized spelling of a distinct-value id.
    pub fn norm_of(&self, id: u32) -> &str {
        &self.values[id as usize].norm
    }

    /// KB tier: `Kb::candidate_resources` of cell `(col, row)` — the
    /// cached list while current, an equivalent live query once `kb` has
    /// been enriched. `None` for null cells.
    pub fn candidates(&self, kb: &Kb, col: usize, row: usize) -> Option<CandList<'_>> {
        let id = self.value_id(col, row)?;
        Some(self.candidates_of(kb, id))
    }

    /// [`Self::candidates`] by distinct-value id.
    pub fn candidates_of(&self, kb: &Kb, id: u32) -> CandList<'_> {
        self.recorder.incr(Counter::ResolveCandidatesLookups);
        let v = &self.values[id as usize];
        if self.is_current(kb) {
            self.recorder.incr(Counter::ResolveCandidatesHit);
            Cow::Borrowed(v.candidates.as_slice())
        } else {
            self.recorder.incr(Counter::ResolveCandidatesFallback);
            Cow::Owned(kb.candidate_resources_normalized(&v.norm))
        }
    }

    /// KB tier: `Q_types` of cell `(col, row)`; `None` for null cells.
    pub fn types(&self, kb: &Kb, col: usize, row: usize) -> Option<Cow<'_, [ClassId]>> {
        let id = self.value_id(col, row)?;
        Some(self.types_of(kb, id))
    }

    /// [`Self::types`] by distinct-value id.
    pub fn types_of(&self, kb: &Kb, id: u32) -> Cow<'_, [ClassId]> {
        self.recorder.incr(Counter::ResolveTypesLookups);
        let v = &self.values[id as usize];
        if self.is_current(kb) {
            self.recorder.incr(Counter::ResolveTypesHit);
            Cow::Borrowed(v.types.as_slice())
        } else {
            self.recorder.incr(Counter::ResolveTypesFallback);
            Cow::Owned(kb.types_of_value(&v.norm))
        }
    }

    /// Pair memo: `Q_rels^1`/`Q_rels^2` between two distinct-value ids.
    /// Served from the prebuilt memo while current and covered; computed
    /// live (identically) for stale snapshots or uncovered combinations.
    pub fn pair_relations(&self, kb: &Kb, a: u32, b: u32) -> Cow<'_, PairRels> {
        self.recorder.incr(Counter::ResolvePairLookups);
        if self.is_current(kb) {
            if let Some(cached) = self.pair_rels.get(&(a, b)) {
                self.recorder.incr(Counter::ResolvePairHit);
                return Cow::Borrowed(cached);
            }
            // Current but uncovered (row beyond `pair_rows`): the cached
            // candidate lists are valid, so derive from them.
            self.recorder.incr(Counter::ResolvePairMiss);
            let va = &self.values[a as usize];
            let vb = &self.values[b as usize];
            let (res, plan) = kb.relations_for_candidates_planned(&va.candidates, &vb.candidates);
            self.record_plan(plan);
            return Cow::Owned(PairRels {
                res,
                lit: kb.literal_relations_for_candidates(&va.candidates, &vb.norm),
            });
        }
        self.recorder.incr(Counter::ResolvePairFallback);
        let ca = kb.candidate_resources_normalized(self.norm_of(a));
        let cb = kb.candidate_resources_normalized(self.norm_of(b));
        let (res, plan) = kb.relations_for_candidates_planned(&ca, &cb);
        self.record_plan(plan);
        Cow::Owned(PairRels {
            res,
            lit: kb.literal_relations_for_candidates(&ca, self.norm_of(b)),
        })
    }
}

/// A candidate list that is either borrowed from the snapshot or computed
/// live on staleness.
pub type CandList<'a> = Cow<'a, [(ResourceId, f64)]>;

#[cfg(test)]
mod tests {
    use super::*;
    use katara_kb::KbBuilder;

    fn kb_and_table() -> (Kb, Table) {
        let mut b = KbBuilder::new();
        let country = b.class("country");
        let capital = b.class("capital");
        let person = b.class("person");
        let has_capital = b.property("hasCapital");
        let height = b.property("hasHeight");
        let italy = b.entity("Italy", &[country]);
        let rome = b.entity("Rome", &[capital]);
        let rossi = b.entity("Rossi", &[person]);
        b.fact(italy, has_capital, rome);
        b.literal_fact(rossi, height, "1.78");
        let kb = b.finalize();

        let mut t = Table::with_opaque_columns("t", 3);
        t.push_text_row(&["Italy", "Rome", ""]);
        t.push_text_row(&["  ITALY ", "Rome", "1.78"]);
        t.push_text_row(&["Rossi", "", "1.78"]);
        (kb, t)
    }

    #[test]
    fn dedup_by_normalized_value() {
        let (kb, t) = kb_and_table();
        let res = TableResolution::build(&t, &kb, usize::MAX);
        // "Italy" and "  ITALY " collapse; "" is null; distinct values:
        // italy, rome, 1.78, rossi.
        assert_eq!(res.num_values(), 4);
        assert_eq!(res.non_null_cells(), 7);
        assert_eq!(res.value_id(0, 0), res.value_id(0, 1));
        assert_eq!(res.value_id(2, 0), None);
        assert_eq!(res.cell_norm(0, 1), Some("italy"));
        assert!((res.distinct_ratio() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn cached_tiers_match_live_queries() {
        let (kb, t) = kb_and_table();
        let res = TableResolution::build(&t, &kb, usize::MAX);
        for c in 0..t.num_columns() {
            for r in 0..t.num_rows() {
                let cell = t.cell(r, c).as_str();
                let cands = res.candidates(&kb, c, r);
                let types = res.types(&kb, c, r);
                match cell {
                    None => {
                        assert!(cands.is_none());
                        assert!(types.is_none());
                    }
                    Some(cell) => {
                        assert_eq!(cands.unwrap().as_ref(), kb.candidate_resources(cell));
                        assert_eq!(types.unwrap().as_ref(), kb.types_of_value(cell));
                    }
                }
            }
        }
        // Pair memo matches Q_rels on every co-occurring pair.
        for r in 0..t.num_rows() {
            for i in 0..t.num_columns() {
                for j in 0..t.num_columns() {
                    if i == j {
                        continue;
                    }
                    let (Some(a), Some(b)) = (res.value_id(i, r), res.value_id(j, r)) else {
                        continue;
                    };
                    let (sa, sb) = (
                        t.cell(r, i).as_str().unwrap(),
                        t.cell(r, j).as_str().unwrap(),
                    );
                    let pr = res.pair_relations(&kb, a, b);
                    assert_eq!(pr.res, kb.relations_between_values(sa, sb));
                    assert_eq!(pr.lit, kb.relations_to_literal(sa, sb));
                }
            }
        }
    }

    #[test]
    fn stale_snapshot_falls_back_to_live() {
        let (mut kb, t) = kb_and_table();
        let res = TableResolution::build(&t, &kb, usize::MAX);
        assert!(res.is_current(&kb));
        // Enrich: "Pretoria" becomes a capital, and Italy gains a second
        // capital fact — the cached tiers are now stale.
        let capital = kb.class_by_name("capital").unwrap();
        let has_capital = kb.property_by_name("hasCapital").unwrap();
        let pretoria = kb.add_entity("Pretoria", "Pretoria", &[capital]);
        let italy = kb.resource_by_name("Italy").unwrap();
        kb.add_fact(italy, has_capital, pretoria);
        assert!(!res.is_current(&kb));
        // Accessors now agree with the *enriched* KB, not the snapshot.
        let (a, b) = (res.value_id(0, 0).unwrap(), res.value_id(1, 0).unwrap());
        assert_eq!(
            res.candidates(&kb, 0, 0).unwrap().as_ref(),
            kb.candidate_resources("Italy")
        );
        assert_eq!(
            res.pair_relations(&kb, a, b).res,
            kb.relations_between_values("Italy", "Rome")
        );
        // The string tier is mutation-independent.
        assert_eq!(res.cell_norm(0, 0), Some("italy"));
    }

    #[test]
    fn pair_memo_respects_row_cap() {
        let (kb, t) = kb_and_table();
        let res = TableResolution::build(&t, &kb, 1);
        assert_eq!(res.pair_rows(), 1);
        // Row 2's (Rossi, 1.78) pair is uncovered but still computed
        // correctly on demand.
        let (a, b) = (res.value_id(0, 2).unwrap(), res.value_id(2, 2).unwrap());
        let pr = res.pair_relations(&kb, a, b);
        assert_eq!(pr.lit, kb.relations_to_literal("Rossi", "1.78"));
    }

    #[test]
    fn empty_table() {
        let (kb, _) = kb_and_table();
        let t = Table::with_opaque_columns("empty", 2);
        let res = TableResolution::build(&t, &kb, 100);
        assert_eq!(res.num_values(), 0);
        assert_eq!(res.distinct_ratio(), 1.0);
        assert_eq!(res.value_id(0, 0), None);
    }
}
