//! The SCARE baseline (§7.4) — ML-based repair after Yakout et al.
//! (SIGMOD 2013).
//!
//! SCARE partitions attributes into *reliable* (assumed correct — here
//! the FD left-hand sides, matching the paper's setup "we only injected
//! errors to the right hand side attributes of the FDs") and *flexible*
//! ones. For each flexible attribute it learns `P(value | reliable
//! values)` from the data itself and proposes the maximum-likelihood
//! value whenever (a) it differs from the current one and (b) its
//! confidence clears a threshold — the threshold the paper calls "hard
//! to set precisely". Prediction quality is entirely redundancy-driven,
//! which is why SCARE is inapplicable to the small Wiki/Web tables.

use std::collections::HashMap;

use katara_table::{Fd, Table};

use crate::RepairOutcome;

/// SCARE knobs.
#[derive(Debug, Clone)]
pub struct ScareConfig {
    /// Minimum confidence `P(best | key)` required to propose a change.
    pub confidence_threshold: f64,
    /// Minimum observations of a reliable-key group before predicting.
    pub min_group_support: usize,
}

impl Default for ScareConfig {
    fn default() -> Self {
        ScareConfig {
            confidence_threshold: 0.6,
            min_group_support: 2,
        }
    }
}

/// Repair the RHS attributes of `fds`, treating the LHS attributes as
/// reliable.
pub fn scare_repair(table: &Table, fds: &[Fd], config: &ScareConfig) -> RepairOutcome {
    let mut out = RepairOutcome::default();
    for fd in fds {
        // Learn P(rhs value | lhs key) by frequency.
        let mut groups: HashMap<Vec<&str>, HashMap<&str, usize>> = HashMap::new();
        for r in 0..table.num_rows() {
            if let Some(v) = table.cell(r, fd.rhs).as_str() {
                *groups
                    .entry(fd.key(table, r))
                    .or_default()
                    .entry(v)
                    .or_insert(0) += 1;
            }
        }
        // Predict.
        for r in 0..table.num_rows() {
            let key = fd.key(table, r);
            let Some(dist) = groups.get(&key) else {
                continue;
            };
            let total: usize = dist.values().sum();
            if total < config.min_group_support {
                continue;
            }
            let (&best, &count) = dist
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .expect("group non-empty");
            let confidence = count as f64 / total as f64;
            if confidence < config.confidence_threshold {
                continue;
            }
            if table.cell(r, fd.rhs).as_str() != Some(best) {
                out.changes.push((r, fd.rhs, best.to_string()));
            }
        }
    }
    out.changes.sort();
    out.changes.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: &[[&str; 2]]) -> Table {
        let mut t = Table::with_opaque_columns("t", 2);
        for r in rows {
            t.push_text_row(r);
        }
        t
    }

    #[test]
    fn predicts_majority_with_confidence() {
        let table = t(&[
            ["Italy", "Rome"],
            ["Italy", "Rome"],
            ["Italy", "Rome"],
            ["Italy", "Madrid"],
        ]);
        let out = scare_repair(&table, &[Fd::new(vec![0], 1)], &ScareConfig::default());
        assert_eq!(out.changes, vec![(3, 1, "Rome".to_string())]);
    }

    #[test]
    fn low_confidence_blocks_prediction() {
        // 50/50 split: confidence 0.5 < 0.6 threshold.
        let table = t(&[["Italy", "Rome"], ["Italy", "Madrid"]]);
        let out = scare_repair(&table, &[Fd::new(vec![0], 1)], &ScareConfig::default());
        assert!(out.is_empty());
    }

    #[test]
    fn threshold_is_a_knob() {
        let table = t(&[["Italy", "Rome"], ["Italy", "Madrid"]]);
        let eager = ScareConfig {
            confidence_threshold: 0.5,
            ..ScareConfig::default()
        };
        let out = scare_repair(&table, &[Fd::new(vec![0], 1)], &eager);
        // At 0.5 the (deterministic) majority value is proposed for the
        // other row.
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sparse_groups_are_skipped() {
        // Singleton groups carry no redundancy: nothing to learn from.
        let table = t(&[["Italy", "Rome"], ["Spain", "Madrid"]]);
        let out = scare_repair(&table, &[Fd::new(vec![0], 1)], &ScareConfig::default());
        assert!(out.is_empty());
    }

    #[test]
    fn null_rhs_cells_ignored_in_training() {
        let mut table = Table::with_opaque_columns("t", 2);
        table.push_text_row(&["Italy", "Rome"]);
        table.push_text_row(&["Italy", ""]);
        table.push_text_row(&["Italy", "Rome"]);
        let out = scare_repair(&table, &[Fd::new(vec![0], 1)], &ScareConfig::default());
        // The null cell gets the learned value.
        assert_eq!(out.changes, vec![(1, 1, "Rome".to_string())]);
    }
}
