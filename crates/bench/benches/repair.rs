//! Benches for **Figure 8 / Table 6 / Table 7**: instance-graph index
//! construction, top-k repair generation, and the EQ/SCARE comparators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use katara_baselines::{eq_repair, scare_repair, ScareConfig};
use katara_bench::bench_corpus;
use katara_core::candidates::{discover_candidates, CandidateConfig};
use katara_core::rank_join::{discover_topk, DiscoveryConfig};
use katara_core::repair::{topk_repairs, RepairConfig, RepairIndex};
use katara_datagen::KbFlavor;
use katara_table::corrupt::{corrupt_table, CorruptionConfig};
use katara_table::Fd;

fn person_fixture() -> (
    katara_kb::Kb,
    katara_core::pattern::TablePattern,
    katara_table::Table,
) {
    let corpus = bench_corpus();
    let kb = corpus.kb(KbFlavor::DbpediaLike);
    let g = &corpus.person;
    let cands = discover_candidates(&g.table, &kb, &CandidateConfig::default());
    let pattern = discover_topk(&g.table, &kb, &cands, 1, &DiscoveryConfig::default())
        .into_iter()
        .next()
        .expect("person pattern");
    let mut dirty = g.table.clone();
    corrupt_table(
        &mut dirty,
        &CorruptionConfig::paper_default(vec![1, 2, 3]),
        7,
    );
    (kb, pattern, dirty)
}

/// Index build (offline, per pattern — the paper precomputes it too).
fn bench_index_build(c: &mut Criterion) {
    let (kb, pattern, _) = person_fixture();
    let mut group = c.benchmark_group("fig8_repair_index_build");
    group.sample_size(10);
    group.bench_function("person_pattern", |b| {
        b.iter(|| RepairIndex::build(black_box(&kb), &pattern, &RepairConfig::default()))
    });
    group.finish();
}

/// Figure 8: per-tuple top-k repair generation, sweeping k.
fn bench_topk_repairs(c: &mut Criterion) {
    let (kb, pattern, dirty) = person_fixture();
    let index = RepairIndex::build(&kb, &pattern, &RepairConfig::default());
    let mut group = c.benchmark_group("fig8_topk_repairs");
    for k in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                for r in 0..dirty.num_rows().min(50) {
                    black_box(topk_repairs(
                        &index,
                        &kb,
                        &pattern,
                        dirty.row(r),
                        k,
                        &RepairConfig::default(),
                    ));
                }
            })
        });
    }
    group.finish();
}

/// Table 6: the automatic comparators on the dirty Person table.
fn bench_comparators(c: &mut Criterion) {
    let (_, _, dirty) = person_fixture();
    let fds = Fd::expand(&[0], &[1, 2, 3]);
    let mut group = c.benchmark_group("table6_comparators");
    group.bench_function("eq", |b| b.iter(|| eq_repair(black_box(&dirty), &fds)));
    group.bench_function("scare", |b| {
        b.iter(|| scare_repair(black_box(&dirty), &fds, &ScareConfig::default()))
    });
    group.finish();
}

/// Worker-pool scaling of per-row repair generation. Emits
/// `BENCH_repair.json` at the workspace root (same schema as the
/// discovery report; quick mode via `KATARA_BENCH_QUICK=1`).
fn bench_thread_scaling(c: &mut Criterion) {
    use katara_bench::perf;
    use katara_core::repair::generate_repairs;
    use katara_core::Threads;

    let (kb, pattern, dirty) = person_fixture();
    let config = RepairConfig::default();
    let index = RepairIndex::build(&kb, &pattern, &config);
    let rows: Vec<usize> = (0..dirty.num_rows().min(50)).collect();
    let mut group = c.benchmark_group("repair_thread_scaling");
    group.sample_size(10);
    let mut report = perf::ScalingReport::new("repair", "person/dbpedia-like/k3");
    for threads in perf::thread_counts() {
        let pool = Threads::fixed(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                generate_repairs(
                    &index,
                    &kb,
                    &pattern,
                    black_box(&dirty),
                    &rows,
                    3,
                    &config,
                    pool,
                )
            })
        });
        report.measure(threads, perf::sweep_iters(), || {
            black_box(generate_repairs(
                &index, &kb, &pattern, &dirty, &rows, 3, &config, pool,
            ));
        });
    }
    group.finish();
    // One untimed instrumented run (index build + repair generation) so
    // the report records graphs built and repairs proposed.
    let rec = std::sync::Arc::new(katara_obs::RunRecorder::new());
    let instrumented = RepairConfig {
        recorder: rec.clone(),
        ..RepairConfig::default()
    };
    let obs_index = RepairIndex::build(&kb, &pattern, &instrumented);
    black_box(generate_repairs(
        &obs_index,
        &kb,
        &pattern,
        &dirty,
        &rows,
        3,
        &instrumented,
        Threads::fixed(1),
    ));
    let mut metrics = rec.snapshot();
    metrics.threads = 1;
    report.metrics = Some(metrics);
    let path = report.write().expect("write BENCH_repair.json");
    eprintln!("thread-scaling report: {}", path.display());
}

criterion_group!(
    benches,
    bench_index_build,
    bench_topk_repairs,
    bench_comparators,
    bench_thread_scaling
);
criterion_main!(benches);
