//! A hardened, zero-dependency HTTP/1.1 request parser and response
//! writer.
//!
//! The parser is deliberately small and hostile-input-first: every size
//! is capped ([`ParseLimits`]), unsupported framing is rejected rather
//! than guessed at, and every failure is a typed [`ServeError`] — the
//! fuzz suite feeds it arbitrary bytes and truncated/oversized/pipelined
//! requests and asserts it never panics. It reads from any
//! [`std::io::Read`], so tests can drive it from in-memory buffers
//! while the server drives it from sockets with read timeouts (which
//! surface as [`ServeError::Timeout`] — the slowloris cutoff).
//!
//! Scope: exactly what the daemon needs. `GET`/`POST`, `Content-Length`
//! framing, no chunked transfer encoding, no continuation lines, no
//! percent-decoding beyond `+`/`%20` in query values.

use std::io::Read;
use std::time::{Duration, Instant};

use crate::error::ServeError;

/// Hard caps for request parsing. Defaults are generous for CSV-table
/// payloads and stingy for everything else.
#[derive(Debug, Clone)]
pub struct ParseLimits {
    /// Cap on the request line plus all headers, in bytes.
    pub max_head_bytes: usize,
    /// Cap on the number of header lines.
    pub max_headers: usize,
    /// Cap on the declared (and read) body size, in bytes.
    pub max_body_bytes: usize,
    /// Wall-clock cutoff for reading one complete request; `None`
    /// disables it (in-memory parsing). On sockets this backstops the
    /// per-read timeout against clients that trickle one byte per read.
    pub max_wall: Option<Duration>,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 4 * 1024 * 1024,
            max_wall: None,
        }
    }
}

/// A parsed request. Header names are lowercased; the target is split
/// into path and query pairs.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Query parameters in request order, minimally decoded.
    pub query: Vec<(String, String)>,
    /// Headers in request order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter value for `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read and parse one request from `r` under `limits`.
///
/// Never panics on any input: every failure is a typed [`ServeError`].
pub fn read_request<R: Read>(r: &mut R, limits: &ParseLimits) -> Result<Request, ServeError> {
    let cutoff = limits.max_wall.map(|d| Instant::now() + d);
    let overdue = |cutoff: &Option<Instant>| -> Result<(), ServeError> {
        match cutoff {
            Some(c) if Instant::now() >= *c => Err(ServeError::Timeout),
            _ => Ok(()),
        }
    };

    // Accumulate until the blank line ending the head. A chunked read
    // may run past it; the excess is the start of the body.
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(ServeError::RequestTooLarge {
                what: "headers",
                limit: limits.max_head_bytes,
            });
        }
        overdue(&cutoff)?;
        let n = r.read(&mut chunk).map_err(ServeError::from_io)?;
        if n == 0 {
            return Err(ServeError::Disconnected);
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    // A head can arrive complete in one chunk and still be oversized.
    if head_end.0 > limits.max_head_bytes {
        return Err(ServeError::RequestTooLarge {
            what: "headers",
            limit: limits.max_head_bytes,
        });
    }
    let (head, rest) = buf.split_at(head_end.0);
    let head = std::str::from_utf8(head)
        .map_err(|_| ServeError::BadRequest("head is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));

    // Request line: METHOD SP target SP HTTP/1.x
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ServeError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ServeError::BadRequest(format!("bad method {method:?}")));
    }
    if !matches!(version, "HTTP/1.0" | "HTTP/1.1") {
        return Err(ServeError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }

    // Headers.
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= limits.max_headers {
            return Err(ServeError::RequestTooLarge {
                what: "header count",
                limit: limits.max_headers,
            });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ServeError::BadRequest(format!("malformed header {line:?}")));
        };
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(ServeError::BadRequest(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body framing: Content-Length only. Reject chunked outright — a
    // parser that guesses at framing is how request smuggling happens.
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(ServeError::BadRequest(
            "transfer-encoding is not supported".into(),
        ));
    }
    let mut content_length = 0usize;
    let mut seen_length: Option<usize> = None;
    for (n, v) in &headers {
        if n == "content-length" {
            let len: usize = v
                .parse()
                .map_err(|_| ServeError::BadRequest(format!("bad content-length {v:?}")))?;
            if let Some(prev) = seen_length {
                if prev != len {
                    return Err(ServeError::BadRequest(
                        "conflicting content-length headers".into(),
                    ));
                }
            }
            seen_length = Some(len);
            content_length = len;
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(ServeError::RequestTooLarge {
            what: "body",
            limit: limits.max_body_bytes,
        });
    }

    // Body: whatever the head read already pulled in, then the rest.
    let mut body: Vec<u8> = rest[head_end.1.min(rest.len())..].to_vec();
    body.truncate(content_length);
    while body.len() < content_length {
        overdue(&cutoff)?;
        let want = (content_length - body.len()).min(chunk.len());
        let n = r.read(&mut chunk[..want]).map_err(ServeError::from_io)?;
        if n == 0 {
            return Err(ServeError::Disconnected);
        }
        body.extend_from_slice(&chunk[..n]);
    }

    // Target: path '?' query.
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), decode_component(v)),
            None => (kv.to_string(), String::new()),
        })
        .collect();

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        headers,
        body,
    })
}

/// Locate the end of the head: returns (offset of the terminator, length
/// of the terminator). Accepts `\r\n\r\n` and bare `\n\n`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n");
    let lf = buf.windows(2).position(|w| w == b"\n\n");
    match (crlf, lf) {
        (Some(c), Some(l)) if l + 1 < c => Some((l, 2)),
        (Some(c), _) => Some((c, 4)),
        (None, Some(l)) => Some((l, 2)),
        (None, None) => None,
    }
}

/// Minimal query-component decoding: `+` and `%20` become spaces. The
/// daemon's parameters are plain tokens; anything fancier stays encoded.
fn decode_component(s: &str) -> String {
    s.replace('+', " ").replace("%20", " ")
}

/// Reason phrase for the statuses the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        206 => "Partial Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize one response: status line, standard headers (length,
/// connection-close), `extra` header lines, blank line, body.
pub fn response_bytes(
    status: u16,
    content_type: &str,
    body: &[u8],
    extra: &[(&str, &str)],
) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    )
    .into_bytes();
    for (name, value) in extra {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, ServeError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &ParseLimits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /clean?crowd=trust&deadline_ms=50 HTTP/1.1\r\n\
              Host: localhost\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/clean");
        assert_eq!(req.query_param("crowd"), Some("trust"));
        assert_eq!(req.query_param("deadline_ms"), Some("50"));
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(ServeError::BadRequest(_))),
                "{:?} must be rejected",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn rejects_smuggling_prone_framing() {
        let chunked = b"POST /clean HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(parse(chunked), Err(ServeError::BadRequest(_))));
        let conflict =
            b"POST /clean HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde";
        assert!(matches!(parse(conflict), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn caps_are_enforced() {
        let limits = ParseLimits {
            max_head_bytes: 64,
            max_headers: 2,
            max_body_bytes: 4,
            max_wall: None,
        };
        let mut big_head = b"GET / HTTP/1.1\r\n".to_vec();
        big_head.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "a".repeat(200)).as_bytes());
        assert!(matches!(
            read_request(&mut Cursor::new(big_head), &limits),
            Err(ServeError::RequestTooLarge {
                what: "headers",
                ..
            })
        ));

        let many = b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n".to_vec();
        assert!(matches!(
            read_request(&mut Cursor::new(many), &limits),
            Err(ServeError::RequestTooLarge {
                what: "header count",
                ..
            })
        ));

        let fat = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789".to_vec();
        assert!(matches!(
            read_request(&mut Cursor::new(fat), &limits),
            Err(ServeError::RequestTooLarge { what: "body", .. })
        ));
    }

    #[test]
    fn truncated_requests_read_as_disconnects() {
        // Head never completes.
        assert!(matches!(
            parse(b"POST /clean HTTP/1.1\r\nContent-"),
            Err(ServeError::Disconnected)
        ));
        // Body shorter than its declared length.
        assert!(matches!(
            parse(b"POST /clean HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ServeError::Disconnected)
        ));
        // Empty stream.
        assert!(matches!(parse(b""), Err(ServeError::Disconnected)));
    }

    #[test]
    fn pipelined_second_request_is_ignored_not_misparsed() {
        let two = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let req = parse(two).unwrap();
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty(), "no content-length means no body");
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let bytes = response_bytes(429, "application/json", b"{}", &[("Retry-After", "1")]);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
