//! # katara-obs — zero-dependency observability for KATARA
//!
//! A small from-scratch metrics and tracing layer (no external
//! dependencies, per the workspace's vendored-shim policy) in the same
//! spirit as `katara-exec`: the pipeline's hot paths record *what
//! happened* — KB probes, snapshot cache hits, crowd spend, repair-search
//! effort — without ever changing *what is computed*.
//!
//! ## The determinism split
//!
//! Everything a [`Recorder`] collects falls into exactly one of two
//! buckets:
//!
//! * **deterministic** — [`Counter`]s, [`Gauge`]s, and [`Histogram`]s
//!   whose values are a pure function of the inputs. Instrumented call
//!   sites increment *per work item*, never per worker or per memo-cache
//!   miss, so the totals are byte-identical for every `--threads N` and
//!   for snapshot vs direct resolution. CI diffs this section of two runs
//!   byte-for-byte.
//! * **non-deterministic** — wall-clock [`Span`] timings (and the worker
//!   count), quantized to milliseconds and kept in a separate JSON
//!   section precisely so the deterministic core stays diffable.
//!
//! ## Overhead
//!
//! Instrumentation is always compiled in and dispatched through a
//! `&dyn Recorder`; the [`NoopRecorder`] turns every call into an empty
//! virtual call, which is within measurement noise for every bench in
//! this workspace (the per-item work behind each call is hundreds of
//! times larger). The live [`RunRecorder`] keeps counters in per-thread
//! shards of cache-line-aligned atomics so instrumented hot paths never
//! contend under the `katara-exec` worker pool.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

macro_rules! metric_enum {
    ($(#[$meta:meta])* $vis:vis enum $enum_name:ident { $($variant:ident => $name:literal,)* }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        $vis enum $enum_name {
            $(
                #[doc = concat!("The `", $name, "` metric.")]
                $variant,
            )*
        }

        impl $enum_name {
            /// Every variant, in emission (sorted-name) order.
            pub const ALL: &'static [$enum_name] = &[$($enum_name::$variant,)*];

            /// Number of variants.
            pub const COUNT: usize = $enum_name::ALL.len();

            /// The stable dotted name used as the JSON key.
            pub fn name(self) -> &'static str {
                match self {
                    $($enum_name::$variant => $name,)*
                }
            }
        }
    };
}

metric_enum! {
    /// Deterministic event counters. Values are a pure function of the
    /// run's inputs: call sites increment per logical work item, so every
    /// total is identical across thread counts and resolve modes.
    ///
    /// Variants are declared in sorted-name order; [`Counter::ALL`] is
    /// therefore also the stable JSON key order.
    pub enum Counter {
        AnnotationCrowdQuestions => "annotation.crowd_questions",
        AnnotationEnrichedEntities => "annotation.enriched_entities",
        AnnotationEnrichedFacts => "annotation.enriched_facts",
        CrowdBudgetDenied => "crowd.budget_denied",
        CrowdEmIterations => "crowd.em_iterations",
        CrowdEscalations => "crowd.escalations",
        CrowdNoQuorumQuestions => "crowd.no_quorum_questions",
        CrowdPosteriorConfident => "crowd.posterior_confident",
        CrowdQuestionsAsked => "crowd.questions_asked",
        CrowdQuestionsRetried => "crowd.questions_retried",
        CrowdQuestionsSaved => "crowd.questions_saved",
        DeltaNoopEdits => "delta.noop_edits",
        DeltaPatternsRescored => "delta.patterns_rescored",
        DeltaTuplesRepaired => "delta.tuples_repaired",
        DeltaTuplesTouched => "delta.tuples_touched",
        DeltaValuesResolved => "delta.values_resolved",
        DiscoveryHeapPops => "discovery.heap_pops",
        DiscoveryPatternsScored => "discovery.patterns_scored",
        DiscoveryRelProbes => "discovery.rel_probes",
        DiscoveryTruncated => "discovery.truncated",
        DiscoveryTypeProbes => "discovery.type_probes",
        IngestQuarantined => "ingest.quarantined",
        IngestRepairedEdges => "ingest.repaired_edges",
        JournalAppends => "journal.appends",
        JournalCheckpoints => "journal.checkpoints",
        JournalFsyncs => "journal.fsyncs",
        JournalReplayedRecords => "journal.replayed_records",
        JournalRetries => "journal.retries",
        KbPlanRelFirst => "kb.plan_rel_first",
        KbPlanTypeFirst => "kb.plan_type_first",
        RepairBudgetStopped => "repair.budget_stopped",
        RepairGraphsBuilt => "repair.graphs_built",
        RepairIndexTruncated => "repair.index_truncated",
        RepairTopkTruncations => "repair.topk_truncations",
        RepairTuplesRepaired => "repair.tuples_repaired",
        ResolveCandidatesFallback => "resolve.candidates_fallback",
        ResolveCandidatesHit => "resolve.candidates_hit",
        ResolveCandidatesLookups => "resolve.candidates_lookups",
        ResolveCandidatesMiss => "resolve.candidates_miss",
        ResolvePairFallback => "resolve.pair_fallback",
        ResolvePairHit => "resolve.pair_hit",
        ResolvePairLookups => "resolve.pair_lookups",
        ResolvePairMiss => "resolve.pair_miss",
        ResolveTypesFallback => "resolve.types_fallback",
        ResolveTypesHit => "resolve.types_hit",
        ResolveTypesLookups => "resolve.types_lookups",
        ResolveTypesMiss => "resolve.types_miss",
        ResolveValuesEvicted => "resolve.values_evicted",
        ServeDegraded => "serve.degraded",
        ServeEnrichmentDropped => "serve.enrichment_dropped",
        ServeQuarantined => "serve.quarantined",
        ServeRequests => "serve.requests",
        ServeSessionsEvicted => "serve.sessions_evicted",
        ServeShed => "serve.shed",
        ServeSnapshotHit => "serve.snapshot_hit",
        ServeSnapshotMiss => "serve.snapshot_miss",
        ServeTimeouts => "serve.timeouts",
        ValidationNoQuorumVariables => "validation.no_quorum_variables",
        ValidationQuestions => "validation.questions",
    }
}

metric_enum! {
    /// Deterministic point-in-time values, set once (or last-write-wins).
    /// Unset gauges are omitted from the export; whether a gauge is set
    /// depends only on the run's configuration, never on thread count.
    pub enum Gauge {
        CrowdBudgetRemaining => "crowd.budget_remaining",
        JournalLag => "journal.lag",
        ResolveDistinctValues => "resolve.distinct_values",
        ResolveNonNullCells => "resolve.non_null_cells",
        ServeQueueDepth => "serve.queue_depth",
        TableColumns => "table.columns",
        TableRows => "table.rows",
    }
}

metric_enum! {
    /// Deterministic value distributions over power-of-two buckets.
    /// Observed per work item, so bucket counts are thread-count
    /// invariant like every other deterministic metric.
    pub enum Histogram {
        RepairChangesPerRepair => "repair.changes_per_repair",
        RepairRepairsPerTuple => "repair.repairs_per_tuple",
    }
}

/// Buckets per histogram: bucket 0 holds the value 0, bucket `i` holds
/// values in `[2^(i-1), 2^i)`, and the last bucket saturates.
pub const HISTOGRAM_BUCKETS: usize = 16;

fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The instrumentation sink. Hot paths hold a `&dyn Recorder` (usually
/// through an `Arc`) and emit events; the implementation decides whether
/// anything is stored.
///
/// Implementations must be thread-safe: counters and histograms are hit
/// from inside `katara-exec` worker pools. Spans are only entered from
/// orchestrating (single-threaded) code, but the trait keeps them on the
/// same object so call sites need exactly one handle.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// True when events are actually recorded. Call sites may use this to
    /// skip building expensive event payloads; they must not skip the
    /// work being measured.
    fn enabled(&self) -> bool;

    /// Add `n` to a counter.
    fn incr_by(&self, counter: Counter, n: u64);

    /// Add 1 to a counter.
    fn incr(&self, counter: Counter) {
        self.incr_by(counter, 1);
    }

    /// Set a gauge (last write wins).
    fn set_gauge(&self, gauge: Gauge, value: u64);

    /// Record one observation into a histogram.
    fn observe(&self, histogram: Histogram, value: u64);

    /// Open a span and return its token; pair with [`Recorder::span_exit`].
    /// Prefer the RAII [`Span::enter`] guard over calling this directly.
    fn span_enter(&self, name: &'static str) -> usize;

    /// Close the span identified by `token`.
    fn span_exit(&self, token: usize);
}

/// A recorder that drops everything. The pipeline default: all
/// instrumentation collapses to empty virtual calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn incr_by(&self, _counter: Counter, _n: u64) {}
    fn set_gauge(&self, _gauge: Gauge, _value: u64) {}
    fn observe(&self, _histogram: Histogram, _value: u64) {}
    fn span_enter(&self, _name: &'static str) -> usize {
        usize::MAX
    }
    fn span_exit(&self, _token: usize) {}
}

/// RAII span guard: records the wall time between [`Span::enter`] and
/// drop under the recorder's currently open span (hierarchical nesting).
pub struct Span<'a> {
    rec: &'a dyn Recorder,
    token: usize,
}

impl<'a> Span<'a> {
    /// Open a span named `name` on `rec`; it closes when the guard drops.
    pub fn enter(rec: &'a dyn Recorder, name: &'static str) -> Self {
        Span {
            rec,
            token: rec.span_enter(name),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.rec.span_exit(self.token);
    }
}

const SHARDS: usize = 8;

/// One cache line (or more) of counters private to a shard, so workers
/// incrementing the same [`Counter`] never bounce a line between cores.
#[repr(align(64))]
struct Shard {
    counts: [AtomicU64; Counter::COUNT],
}

impl Shard {
    fn new() -> Self {
        Shard {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Round-robin shard assignment per thread: cheap, collision-tolerant
/// (two threads sharing a shard is correct, just marginally slower).
fn shard_id() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<Option<usize>> = const { Cell::new(None) };
    }
    SHARD.with(|s| match s.get() {
        Some(i) => i,
        None => {
            let i = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(Some(i));
            i
        }
    })
}

struct GaugeCell {
    value: AtomicU64,
    set: AtomicBool,
}

struct HistCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

struct SpanRecord {
    name: &'static str,
    depth: usize,
    start_ns: u64,
    dur_ns: Option<u64>,
}

#[derive(Default)]
struct SpanLog {
    records: Vec<SpanRecord>,
    stack: Vec<usize>,
}

/// The live recorder: sharded atomic counters, gauges, histograms, and a
/// hierarchical span log, snapshotted into a [`RunMetrics`] at the end of
/// a run.
pub struct RunRecorder {
    shards: Vec<Shard>,
    gauges: [GaugeCell; Gauge::COUNT],
    hists: [HistCells; Histogram::COUNT],
    spans: Mutex<SpanLog>,
    epoch: Instant,
}

impl Default for RunRecorder {
    fn default() -> Self {
        RunRecorder::new()
    }
}

impl std::fmt::Debug for RunRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunRecorder").finish_non_exhaustive()
    }
}

impl RunRecorder {
    /// A fresh recorder with all metrics at zero and the span clock
    /// starting now.
    pub fn new() -> Self {
        RunRecorder {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            gauges: std::array::from_fn(|_| GaugeCell {
                value: AtomicU64::new(0),
                set: AtomicBool::new(false),
            }),
            hists: std::array::from_fn(|_| HistCells {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
            spans: Mutex::new(SpanLog::default()),
            epoch: Instant::now(),
        }
    }

    /// The current total of a counter (sum over all shards).
    pub fn counter_total(&self, counter: Counter) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counts[counter as usize].load(Ordering::Relaxed))
            .sum()
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn span_log(&self) -> std::sync::MutexGuard<'_, SpanLog> {
        // A poisoned lock only means a panicking thread held it; the log
        // itself is still structurally sound.
        self.spans.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Freeze everything recorded so far into an exportable snapshot.
    pub fn snapshot(&self) -> RunMetrics {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.counter_total(c)))
            .collect();
        let gauges = Gauge::ALL
            .iter()
            .filter(|&&g| self.gauges[g as usize].set.load(Ordering::Relaxed))
            .map(|&g| {
                (
                    g.name(),
                    self.gauges[g as usize].value.load(Ordering::Relaxed),
                )
            })
            .collect();
        let histograms = Histogram::ALL
            .iter()
            .map(|&h| {
                let cells = &self.hists[h as usize];
                (
                    h.name(),
                    HistogramSnapshot {
                        count: cells.count.load(Ordering::Relaxed),
                        sum: cells.sum.load(Ordering::Relaxed),
                        buckets: cells
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                    },
                )
            })
            .collect();
        let now = self.now_ns();
        let spans = self
            .span_log()
            .records
            .iter()
            .map(|r| SpanSnapshot {
                name: r.name,
                depth: r.depth,
                // A still-open span reads as "up to now" — better than
                // dropping it from the trace.
                wall_ns: r.dur_ns.unwrap_or_else(|| now.saturating_sub(r.start_ns)),
            })
            .collect();
        RunMetrics {
            counters,
            gauges,
            histograms,
            spans,
            threads: 0,
        }
    }
}

impl Recorder for RunRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn incr_by(&self, counter: Counter, n: u64) {
        self.shards[shard_id()].counts[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn set_gauge(&self, gauge: Gauge, value: u64) {
        let cell = &self.gauges[gauge as usize];
        cell.value.store(value, Ordering::Relaxed);
        cell.set.store(true, Ordering::Relaxed);
    }

    fn observe(&self, histogram: Histogram, value: u64) {
        let cells = &self.hists[histogram as usize];
        cells.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn span_enter(&self, name: &'static str) -> usize {
        let start_ns = self.now_ns();
        let mut log = self.span_log();
        let token = log.records.len();
        let depth = log.stack.len();
        log.records.push(SpanRecord {
            name,
            depth,
            start_ns,
            dur_ns: None,
        });
        log.stack.push(token);
        token
    }

    fn span_exit(&self, token: usize) {
        let now = self.now_ns();
        let mut log = self.span_log();
        if let Some(pos) = log.stack.iter().rposition(|&t| t == token) {
            // Closing a span implicitly closes anything still open below
            // it (defensive — guards normally drop in LIFO order).
            log.stack.truncate(pos);
        }
        if let Some(rec) = log.records.get_mut(token) {
            if rec.dur_ns.is_none() {
                rec.dur_ns = Some(now.saturating_sub(rec.start_ns));
            }
        }
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts; see [`HISTOGRAM_BUCKETS`].
    pub buckets: Vec<u64>,
}

/// Snapshot of one finished (or still-open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: &'static str,
    /// Nesting depth (0 = root).
    pub depth: usize,
    /// Wall time in nanoseconds (quantized to milliseconds on export).
    pub wall_ns: u64,
}

/// An exportable snapshot of one run's metrics, split into the
/// deterministic core (counters/gauges/histograms, byte-diffable across
/// thread counts) and the non-deterministic timing section (spans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMetrics {
    /// Every counter with its total, in stable sorted-name order.
    pub counters: Vec<(&'static str, u64)>,
    /// The gauges that were set, in stable sorted-name order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Every histogram, in stable sorted-name order.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
    /// The span log in enter order (pre-order of the span tree).
    pub spans: Vec<SpanSnapshot>,
    /// Worker-thread count the run was configured with (0 = unknown).
    /// Reported in the non-deterministic section: it is exactly the knob
    /// the deterministic section must be invariant to.
    pub threads: usize,
}

impl RunMetrics {
    /// Value of a counter by dotted name (0 if unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Value of a gauge by dotted name (`None` if unset).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The deterministic section as a JSON object, with `indent` leading
    /// spaces on its closing brace. Byte-identical across thread counts
    /// for the same logical run — CI diffs exactly this string.
    pub fn deterministic_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut out = String::from("{\n");
        out.push_str(&format!("{pad}  \"counters\": {{\n"));
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            out.push_str(&format!("{pad}    \"{name}\": {v}{comma}\n"));
        }
        out.push_str(&format!("{pad}  }},\n"));
        out.push_str(&format!("{pad}  \"gauges\": {{"));
        if self.gauges.is_empty() {
            out.push_str("},\n");
        } else {
            out.push('\n');
            for (i, (name, v)) in self.gauges.iter().enumerate() {
                let comma = if i + 1 < self.gauges.len() { "," } else { "" };
                out.push_str(&format!("{pad}    \"{name}\": {v}{comma}\n"));
            }
            out.push_str(&format!("{pad}  }},\n"));
        }
        out.push_str(&format!("{pad}  \"histograms\": {{\n"));
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "{pad}    \"{name}\": {{ \"count\": {}, \"sum\": {}, \"buckets\": [{}] }}{comma}\n",
                h.count,
                h.sum,
                buckets.join(",")
            ));
        }
        out.push_str(&format!("{pad}  }}\n"));
        out.push_str(&format!("{pad}}}"));
        out
    }

    /// The full metrics document as a JSON object with `indent` leading
    /// spaces on nested lines — for embedding into a larger document
    /// (katara-bench embeds this into `BENCH_*.json`).
    pub fn to_json_object(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut out = String::from("{\n");
        out.push_str(&format!("{pad}  \"schema\": \"katara-run-metrics/v1\",\n"));
        out.push_str(&format!("{pad}  \"deterministic\": "));
        out.push_str(&self.deterministic_json(indent + 2));
        out.push_str(",\n");
        out.push_str(&format!("{pad}  \"nondeterministic\": {{\n"));
        out.push_str(&format!("{pad}    \"threads\": {},\n", self.threads));
        out.push_str(&format!("{pad}    \"spans\": ["));
        if self.spans.is_empty() {
            out.push_str("]\n");
        } else {
            out.push('\n');
            for (i, s) in self.spans.iter().enumerate() {
                let comma = if i + 1 < self.spans.len() { "," } else { "" };
                out.push_str(&format!(
                    "{pad}      {{ \"name\": \"{}\", \"depth\": {}, \"wall_ms\": {:.3} }}{comma}\n",
                    s.name,
                    s.depth,
                    s.wall_ns as f64 / 1e6
                ));
            }
            out.push_str(&format!("{pad}    ]\n"));
        }
        out.push_str(&format!("{pad}  }}\n"));
        out.push_str(&format!("{pad}}}"));
        out
    }

    /// The full metrics document as a standalone JSON file body.
    pub fn to_json(&self) -> String {
        let mut out = self.to_json_object(0);
        out.push('\n');
        out
    }

    /// Human-readable span tree (for `--trace`): one line per span,
    /// indented by depth, with quantized wall times.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&format!(
                "{:indent$}{:<width$} {:>9.3} ms\n",
                "",
                s.name,
                s.wall_ns as f64 / 1e6,
                indent = s.depth * 2,
                width = 24usize.saturating_sub(s.depth * 2),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_counters_merge_across_threads() {
        let rec = RunRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        rec.incr(Counter::DiscoveryTypeProbes);
                    }
                    rec.incr_by(Counter::DiscoveryRelProbes, 5);
                });
            }
        });
        assert_eq!(rec.counter_total(Counter::DiscoveryTypeProbes), 8000);
        assert_eq!(rec.counter_total(Counter::DiscoveryRelProbes), 40);
        assert_eq!(rec.counter_total(Counter::RepairGraphsBuilt), 0);
        let m = rec.snapshot();
        assert_eq!(m.counter("discovery.type_probes"), 8000);
        assert_eq!(m.counter("discovery.rel_probes"), 40);
    }

    #[test]
    fn span_nesting_and_drop_ordering() {
        let rec = RunRecorder::new();
        {
            let _outer = Span::enter(&rec, "outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = Span::enter(&rec, "inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let _sibling = Span::enter(&rec, "sibling");
        }
        let m = rec.snapshot();
        let names: Vec<&str> = m.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["outer", "inner", "sibling"]);
        let depths: Vec<usize> = m.spans.iter().map(|s| s.depth).collect();
        assert_eq!(depths, vec![0, 1, 1]);
        // Pre-order + LIFO drop: the parent's wall time covers the child's.
        assert!(m.spans[0].wall_ns >= m.spans[1].wall_ns);
        assert!(m.spans.iter().all(|s| s.wall_ns > 0));
    }

    #[test]
    fn out_of_order_drop_is_tolerated() {
        let rec = RunRecorder::new();
        let outer = Span::enter(&rec, "outer");
        let inner = Span::enter(&rec, "inner");
        drop(outer); // closes inner implicitly
        drop(inner); // late exit must not panic or corrupt the log
        let m = rec.snapshot();
        assert_eq!(m.spans.len(), 2);
        assert_eq!(m.spans[1].depth, 1);
        // A fresh span after the mess lands back at the root.
        drop(Span::enter(&rec, "after"));
        let m = rec.snapshot();
        assert_eq!(m.spans[2].depth, 0);
    }

    #[test]
    fn histogram_buckets_and_sums() {
        let rec = RunRecorder::new();
        for v in [0u64, 1, 2, 3, 1000] {
            rec.observe(Histogram::RepairRepairsPerTuple, v);
        }
        let m = rec.snapshot();
        let (_, h) = m
            .histograms
            .iter()
            .find(|(n, _)| *n == "repair.repairs_per_tuple")
            .expect("histogram present");
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[10], 1); // 1000 in [512, 1024)
        assert_eq!(h.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn bucket_saturation() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn noop_recorder_is_disabled_and_inert() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.incr(Counter::CrowdQuestionsAsked);
        rec.set_gauge(Gauge::TableRows, 9);
        rec.observe(Histogram::RepairRepairsPerTuple, 3);
        drop(Span::enter(&rec, "ignored"));
    }

    #[test]
    fn counter_names_are_sorted_and_unique() {
        for kind in [
            Counter::ALL.iter().map(|c| c.name()).collect::<Vec<_>>(),
            Gauge::ALL.iter().map(|g| g.name()).collect::<Vec<_>>(),
            Histogram::ALL.iter().map(|h| h.name()).collect::<Vec<_>>(),
        ] {
            let mut sorted = kind.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(kind, sorted, "names must be declared sorted and unique");
        }
    }

    #[test]
    fn deterministic_json_ignores_spans_and_threads() {
        let a = RunRecorder::new();
        let b = RunRecorder::new();
        a.incr_by(Counter::ValidationQuestions, 7);
        b.incr_by(Counter::ValidationQuestions, 7);
        a.set_gauge(Gauge::TableRows, 3);
        b.set_gauge(Gauge::TableRows, 3);
        drop(Span::enter(&a, "only-in-a"));
        let mut ma = a.snapshot();
        let mb = b.snapshot();
        ma.threads = 8;
        assert_ne!(ma.to_json(), mb.to_json());
        assert_eq!(ma.deterministic_json(2), mb.deterministic_json(2));
    }

    #[test]
    fn json_shape() {
        let rec = RunRecorder::new();
        rec.incr(Counter::ResolveTypesHit);
        rec.set_gauge(Gauge::ResolveDistinctValues, 4);
        drop(Span::enter(&rec, "clean"));
        let mut m = rec.snapshot();
        m.threads = 2;
        let json = m.to_json();
        for key in [
            "\"schema\": \"katara-run-metrics/v1\"",
            "\"deterministic\": {",
            "\"counters\": {",
            "\"gauges\": {",
            "\"histograms\": {",
            "\"nondeterministic\": {",
            "\"threads\": 2",
            "\"spans\": [",
            "\"resolve.types_hit\": 1",
            "\"resolve.distinct_values\": 4",
            "\"name\": \"clean\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Counters appear in sorted order.
        let pos = |needle: &str| json.find(needle).expect("key present");
        assert!(pos("annotation.crowd_questions") < pos("crowd.budget_denied"));
        assert!(pos("crowd.budget_denied") < pos("validation.questions"));
        // The trace renders one line per span.
        assert_eq!(m.render_trace().lines().count(), 1);
        assert!(m.render_trace().contains("clean"));
    }

    #[test]
    fn unset_gauges_are_omitted() {
        let rec = RunRecorder::new();
        rec.set_gauge(Gauge::TableRows, 1);
        let m = rec.snapshot();
        assert_eq!(m.gauge("table.rows"), Some(1));
        assert_eq!(m.gauge("table.columns"), None);
        assert!(!m.to_json().contains("table.columns"));
    }
}
