//! Top-k table pattern generation (§4.3, Algorithms 1 and 2).
//!
//! The pattern space is the product of the ranked candidate lists: one
//! type per covered column, one relationship per covered column pair. The
//! paper enumerates it with a rank-join over the tf-idf-sorted lists,
//! maintaining an upper bound `B` on every unseen join result and halting
//! once the running top-k beats `B` (Algorithm 1), skipping types whose
//! best possible coherence cannot reach the current top-k (Algorithm 2).
//!
//! [`discover_topk`] realizes the same contract with a best-first (A*)
//! expansion over the sorted lists: a search state fixes a prefix of the
//! variables and carries an admissible bound — exact score of the fixed
//! prefix plus, per remaining list, its top tf-idf and per remaining pair
//! its maximum achievable coherence (the same ingredients as the paper's
//! `B`). States are popped best-bound-first, so the first `k` completed
//! patterns are *exactly* the top-k, and a state whose bound falls below
//! the current k-th score is never expanded — subsuming Algorithm 2's
//! type pruning. [`DiscoveryStats`] reports how much of the space was
//! touched; [`discover_exhaustive`] is the ablation baseline that scores
//! the full Cartesian product.
//!
//! Rank-join does not consume the shared
//! [`TableResolution`](crate::resolve::TableResolution) snapshot: it
//! joins the already-resolved [`CandidateSet`] lists and PMI coherence
//! statistics — all cell→KB resolution happened upstream in candidate
//! discovery, where the snapshot applies.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use katara_kb::Kb;
use katara_obs::{Counter, NoopRecorder, Recorder};
use katara_table::Table;

use crate::candidates::CandidateSet;
use crate::pattern::{PatternEdge, PatternNode, TablePattern};
use crate::scoring::ScoringConfig;

/// Discovery knobs.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Scoring model parameters.
    pub scoring: ScoringConfig,
    /// Safety valve on search-state expansions (0 = unlimited). The search
    /// is exact whenever the limit is not hit; hitting it is reported via
    /// [`DiscoveryStats::truncated`].
    pub max_states: usize,
    /// Sink for `discovery.{heap_pops,patterns_scored,truncated}` —
    /// the same numbers as [`DiscoveryStats`], exported as run metrics.
    pub recorder: Arc<dyn Recorder>,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            scoring: ScoringConfig::default(),
            max_states: 0,
            recorder: Arc::new(NoopRecorder),
        }
    }
}

/// Search-effort accounting, for the rank-join ablation bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscoveryStats {
    /// States popped from the frontier.
    pub states_expanded: usize,
    /// Complete patterns scored.
    pub patterns_scored: usize,
    /// True if `max_states` stopped the search early (top-k then
    /// best-effort).
    pub truncated: bool,
}

/// One discovery variable: a column choosing among types, or an ordered
/// column pair choosing among relationships.
#[derive(Debug, Clone)]
enum Var {
    /// `(column, options)` — options are `(class, tfidf)`.
    Col(usize, Vec<(katara_kb::ClassId, f64)>),
    /// `(subject col, object col, options)` — options are
    /// `(property, tfidf)`.
    Pair(usize, usize, Vec<(katara_kb::PropertyId, f64)>),
}

struct SearchSpace {
    vars: Vec<Var>,
    /// For column c: index of its Col var, if any.
    col_var: Vec<Option<usize>>,
    /// Optimistic max contribution of each var.
    optimistic: Vec<f64>,
}

fn build_space(table: &Table, kb: &Kb, cands: &CandidateSet, w: f64) -> SearchSpace {
    let ncols = table.num_columns();
    let mut vars = Vec::new();
    let mut col_var = vec![None; ncols];
    for (c, list) in cands.col_types.iter().enumerate() {
        if !list.is_empty() {
            col_var[c] = Some(vars.len());
            vars.push(Var::Col(
                c,
                list.iter().map(|t| (t.class, t.tfidf)).collect(),
            ));
        }
    }
    let pair_start = vars.len();
    for (i, j) in cands.pairs() {
        let list = cands.rels(i, j);
        vars.push(Var::Pair(
            i,
            j,
            list.iter().map(|r| (r.property, r.tfidf)).collect(),
        ));
    }
    // Optimistic bounds. Column vars: best tf-idf. Pair vars: best over
    // options of tfidf + w·(max achievable coherence at each typed end).
    let mut optimistic = Vec::with_capacity(vars.len());
    for (vi, v) in vars.iter().enumerate() {
        let o = match v {
            // Candidate lists normally arrive tf-idf-sorted, but the
            // bound must not depend on that (baselines re-sort, callers
            // may not): take the max, not the head.
            Var::Col(_, opts) => opts.iter().map(|&(_, s)| s).fold(0.0f64, f64::max),
            Var::Pair(i, j, opts) => opts
                .iter()
                .map(|&(p, s)| {
                    let mut b = s;
                    if col_var[*i].is_some() {
                        b += w * kb.coherence().max_sub(p);
                    }
                    if col_var[*j].is_some() {
                        b += w * kb.coherence().max_obj(p);
                    }
                    b
                })
                .fold(0.0f64, f64::max),
        };
        debug_assert!(vi >= pair_start || matches!(v, Var::Col(..)));
        optimistic.push(o);
    }
    SearchSpace {
        vars,
        col_var,
        optimistic,
    }
}

/// A frontier state: the first `depth` variables are assigned.
struct State {
    depth: usize,
    choices: Vec<u16>,
    /// Exact score of the assigned prefix.
    g: f64,
    /// g + optimistic rest — the admissible bound.
    f: f64,
    /// Tie-break for determinism.
    seq: u64,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        // Consistent with `Ord::cmp` below (total_cmp), as `Eq` requires
        // — `f == other.f` would make two NaN bounds unequal yet
        // compare `Ordering::Equal`.
        self.f.total_cmp(&other.f) == Ordering::Equal && self.seq == other.seq
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on f; ties → earlier seq first (deterministic). The
        // ordering must be total (`total_cmp`): `partial_cmp` mapping a
        // NaN bound to `Equal` would violate transitivity and silently
        // corrupt the heap's best-first order for *other* states too.
        self.f
            .total_cmp(&other.f)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Discover the top-k table patterns, highest score first.
///
/// Returns fewer than `k` patterns when the space is smaller; returns an
/// empty vector when no column has candidates (the §2 "KATARA will
/// terminate" case — see [`crate::error::KataraError::NoPatternFound`]).
pub fn discover_topk(
    table: &Table,
    kb: &Kb,
    cands: &CandidateSet,
    k: usize,
    config: &DiscoveryConfig,
) -> Vec<TablePattern> {
    discover_topk_with_stats(table, kb, cands, k, config).0
}

/// [`discover_topk`] plus search-effort statistics.
pub fn discover_topk_with_stats(
    table: &Table,
    kb: &Kb,
    cands: &CandidateSet,
    k: usize,
    config: &DiscoveryConfig,
) -> (Vec<TablePattern>, DiscoveryStats) {
    let w = config.scoring.coherence_weight;
    let space = build_space(table, kb, cands, w);
    let mut stats = DiscoveryStats::default();
    if k == 0 || space.vars.is_empty() {
        return (Vec::new(), stats);
    }

    let total_optimistic: f64 = space.optimistic.iter().sum();
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    heap.push(State {
        depth: 0,
        choices: Vec::new(),
        g: 0.0,
        f: total_optimistic,
        seq,
    });

    let mut out = Vec::with_capacity(k);
    while let Some(state) = heap.pop() {
        stats.states_expanded += 1;
        if config.max_states > 0 && stats.states_expanded > config.max_states {
            stats.truncated = true;
            break;
        }
        if state.depth == space.vars.len() {
            stats.patterns_scored += 1;
            out.push(materialize(table, &space, &state.choices, state.g));
            if out.len() == k {
                break;
            }
            continue;
        }
        // Expand: assign every option of the next variable.
        let rest_optimistic: f64 = space.optimistic[state.depth + 1..].iter().sum();
        let options = option_count(&space.vars[state.depth]);
        for opt in 0..options {
            let delta = contribution(kb, &space, &state.choices, state.depth, opt, w);
            let g = state.g + delta;
            seq += 1;
            let mut choices = state.choices.clone();
            choices.push(opt as u16);
            heap.push(State {
                depth: state.depth + 1,
                choices,
                g,
                f: g + rest_optimistic,
                seq,
            });
        }
    }
    record_stats(config, &stats);
    (out, stats)
}

/// Export a finished search's [`DiscoveryStats`] as run metrics.
fn record_stats(config: &DiscoveryConfig, stats: &DiscoveryStats) {
    let rec = &config.recorder;
    rec.incr_by(Counter::DiscoveryHeapPops, stats.states_expanded as u64);
    rec.incr_by(
        Counter::DiscoveryPatternsScored,
        stats.patterns_scored as u64,
    );
    if stats.truncated {
        rec.incr(Counter::DiscoveryTruncated);
    }
}

/// Exhaustive enumeration of the whole pattern space — the ablation
/// baseline for the rank-join. Returns the top-k, identical to
/// [`discover_topk`] (asserted by tests), at full enumeration cost.
pub fn discover_exhaustive(
    table: &Table,
    kb: &Kb,
    cands: &CandidateSet,
    k: usize,
    config: &DiscoveryConfig,
) -> (Vec<TablePattern>, DiscoveryStats) {
    let w = config.scoring.coherence_weight;
    let space = build_space(table, kb, cands, w);
    let mut stats = DiscoveryStats::default();
    if k == 0 || space.vars.is_empty() {
        return (Vec::new(), stats);
    }
    let mut all: Vec<(Vec<u16>, f64)> = Vec::new();
    let mut choices: Vec<u16> = Vec::new();
    enumerate(kb, &space, &mut choices, 0, 0.0, w, &mut all, &mut stats);
    all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let out = all
        .into_iter()
        .take(k)
        .map(|(c, g)| materialize(table, &space, &c, g))
        .collect();
    record_stats(config, &stats);
    (out, stats)
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    kb: &Kb,
    space: &SearchSpace,
    choices: &mut Vec<u16>,
    depth: usize,
    g: f64,
    w: f64,
    all: &mut Vec<(Vec<u16>, f64)>,
    stats: &mut DiscoveryStats,
) {
    if depth == space.vars.len() {
        stats.patterns_scored += 1;
        all.push((choices.clone(), g));
        return;
    }
    stats.states_expanded += 1;
    for opt in 0..option_count(&space.vars[depth]) {
        let delta = contribution(kb, space, choices, depth, opt, w);
        choices.push(opt as u16);
        enumerate(kb, space, choices, depth + 1, g + delta, w, all, stats);
        choices.pop();
    }
}

fn option_count(v: &Var) -> usize {
    match v {
        Var::Col(_, o) => o.len(),
        Var::Pair(_, _, o) => o.len(),
    }
}

/// Exact score contribution of assigning option `opt` to variable `depth`,
/// given the already-assigned prefix. Column variables precede pair
/// variables in the ordering, so a pair's endpoint types are always
/// available here.
fn contribution(
    kb: &Kb,
    space: &SearchSpace,
    prefix: &[u16],
    depth: usize,
    opt: usize,
    w: f64,
) -> f64 {
    match &space.vars[depth] {
        Var::Col(_, opts) => opts[opt].1,
        Var::Pair(i, j, opts) => {
            let (p, tfidf) = opts[opt];
            let mut s = tfidf;
            if let Some(vi) = space.col_var[*i] {
                debug_assert!(vi < depth, "column vars precede pair vars");
                if let Var::Col(_, copts) = &space.vars[vi] {
                    let t = copts[prefix[vi] as usize].0;
                    s += w * kb.sub_coherence(t, p);
                }
            }
            if let Some(vj) = space.col_var[*j] {
                if let Var::Col(_, copts) = &space.vars[vj] {
                    let t = copts[prefix[vj] as usize].0;
                    s += w * kb.obj_coherence(t, p);
                }
            }
            s
        }
    }
}

/// Turn a complete assignment into a [`TablePattern`].
fn materialize(table: &Table, space: &SearchSpace, choices: &[u16], score: f64) -> TablePattern {
    let mut nodes: Vec<PatternNode> = Vec::new();
    let mut edges: Vec<PatternEdge> = Vec::new();
    for (vi, v) in space.vars.iter().enumerate() {
        match v {
            Var::Col(c, opts) => nodes.push(PatternNode {
                column: *c,
                class: Some(opts[choices[vi] as usize].0),
            }),
            Var::Pair(i, j, opts) => {
                edges.push(PatternEdge {
                    subject: *i,
                    object: *j,
                    property: opts[choices[vi] as usize].0,
                });
            }
        }
    }
    // Untyped nodes for edge endpoints without a type variable.
    for e in &edges {
        for col in [e.subject, e.object] {
            if !nodes.iter().any(|n| n.column == col) {
                nodes.push(PatternNode {
                    column: col,
                    class: None,
                });
            }
        }
    }
    let _ = table;
    // invariant: nodes/edges come from the enumeration space, which only
    // produces in-range columns, and the loop above inserts a node for
    // every edge endpoint — exactly what `TablePattern::new` validates.
    TablePattern::new(nodes, edges, score).expect("materialized pattern is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{discover_candidates, CandidateConfig};
    use katara_kb::KbBuilder;

    /// Example 5/7 shape: country-capital with a distractor supertype on
    /// each side, so coherence decides the winner.
    fn setting() -> (Kb, Table, CandidateSet) {
        let mut b = KbBuilder::new();
        let economy = b.class("economy");
        let country = b.class("country");
        let city = b.class("city");
        let capital = b.class("capital");
        b.subclass(country, economy).unwrap();
        b.subclass(capital, city).unwrap();
        let has_capital = b.property("hasCapital");
        let located_in = b.property("locatedIn");

        for (c, cap) in [
            ("Italy", "Rome"),
            ("Spain", "Madrid"),
            ("France", "Paris"),
            ("Germany", "Berlin"),
        ] {
            let rc = b.entity(c, &[country]);
            let rcap = b.entity(cap, &[capital]);
            b.fact(rc, has_capital, rcap);
            b.fact(rcap, located_in, rc);
        }
        for i in 0..12 {
            b.entity(&format!("Corp{i}"), &[economy]);
            b.entity(&format!("Town{i}"), &[city]);
        }
        let kb = b.finalize();

        let mut t = Table::with_opaque_columns("t", 2);
        t.push_text_row(&["Italy", "Rome"]);
        t.push_text_row(&["Spain", "Madrid"]);
        t.push_text_row(&["France", "Paris"]);
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        (kb, t, cands)
    }

    #[test]
    fn top1_is_country_capital_has_capital() {
        let (kb, t, cands) = setting();
        let top = discover_topk(&t, &kb, &cands, 3, &DiscoveryConfig::default());
        assert!(!top.is_empty());
        let best = &top[0];
        assert_eq!(
            best.node_for_column(0).unwrap().class,
            kb.class_by_name("country")
        );
        assert_eq!(
            best.node_for_column(1).unwrap().class,
            kb.class_by_name("capital")
        );
        // Both directed edges exist (hasCapital forward, locatedIn back).
        assert_eq!(best.edges().len(), 2);
    }

    #[test]
    fn scores_are_descending() {
        let (kb, t, cands) = setting();
        let top = discover_topk(&t, &kb, &cands, 10, &DiscoveryConfig::default());
        for w in top.windows(2) {
            assert!(w[0].score() >= w[1].score());
        }
    }

    #[test]
    fn astar_matches_exhaustive() {
        let (kb, t, cands) = setting();
        let cfg = DiscoveryConfig::default();
        for k in [1, 2, 3, 5, 8] {
            let fast = discover_topk(&t, &kb, &cands, k, &cfg);
            let (slow, _) = discover_exhaustive(&t, &kb, &cands, k, &cfg);
            assert_eq!(fast.len(), slow.len(), "k={k}");
            for (a, b) in fast.iter().zip(slow.iter()) {
                assert!(
                    (a.score() - b.score()).abs() < 1e-9,
                    "k={k}: {} vs {}",
                    a.score(),
                    b.score()
                );
            }
        }
    }

    #[test]
    fn rank_join_expands_less_than_exhaustive() {
        let (kb, t, cands) = setting();
        let cfg = DiscoveryConfig::default();
        let (_, fast) = discover_topk_with_stats(&t, &kb, &cands, 2, &cfg);
        let (_, slow) = discover_exhaustive(&t, &kb, &cands, 2, &cfg);
        assert!(
            fast.patterns_scored < slow.patterns_scored,
            "early termination must avoid scoring the full product \
             ({} vs {})",
            fast.patterns_scored,
            slow.patterns_scored
        );
    }

    #[test]
    fn empty_candidates_empty_result() {
        let (kb, _, _) = setting();
        let mut t = Table::with_opaque_columns("t", 2);
        t.push_text_row(&["Zzz", "Qqq"]);
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        let top = discover_topk(&t, &kb, &cands, 3, &DiscoveryConfig::default());
        assert!(top.is_empty());
    }

    #[test]
    fn k_zero_is_empty() {
        let (kb, t, cands) = setting();
        assert!(discover_topk(&t, &kb, &cands, 0, &DiscoveryConfig::default()).is_empty());
    }

    #[test]
    fn max_states_truncates_gracefully() {
        let (kb, t, cands) = setting();
        let cfg = DiscoveryConfig {
            max_states: 1,
            ..DiscoveryConfig::default()
        };
        let (out, stats) = discover_topk_with_stats(&t, &kb, &cands, 5, &cfg);
        assert!(stats.truncated);
        assert!(out.len() <= 5);
    }

    /// A NaN upper bound must not corrupt the frontier: the heap ordering
    /// is total, so every non-NaN state still pops in strict best-first
    /// order and equal bounds still tie-break by insertion sequence.
    #[test]
    fn nan_bound_keeps_heap_order_total() {
        let mk = |f: f64, seq: u64| State {
            depth: 0,
            choices: Vec::new(),
            g: 0.0,
            f,
            seq,
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(1.0, 0));
        heap.push(mk(f64::NAN, 1));
        heap.push(mk(0.5, 2));
        heap.push(mk(1.0, 3));
        heap.push(mk(-f64::NAN, 4));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop()).map(|s| s.seq).collect();
        // total_cmp: +NaN above every real, -NaN below every real; the
        // 1.0 tie resolves to the earlier sequence number.
        assert_eq!(order, vec![1, 0, 3, 2, 4]);
    }

    #[test]
    fn distinct_patterns_returned() {
        let (kb, t, cands) = setting();
        let top = discover_topk(&t, &kb, &cands, 6, &DiscoveryConfig::default());
        for (a_idx, a) in top.iter().enumerate() {
            for b in &top[a_idx + 1..] {
                assert!(
                    a.nodes() != b.nodes() || a.edges() != b.edges(),
                    "duplicate pattern in top-k"
                );
            }
        }
    }
}
