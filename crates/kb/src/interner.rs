//! A small string interner.
//!
//! Maps strings to dense `u32`-backed ids and back. Used for resource
//! names, class names, property names and literal values. Lookup keys are
//! the *raw* strings; label normalization (case folding etc.) is the
//! responsibility of [`crate::label_index`].

use std::collections::HashMap;
use std::sync::Arc;

/// A string interner handing out dense indexes.
///
/// Generic over the id type only through `usize` indexes; the typed wrappers
/// in [`crate::ids`] convert at the call sites.
///
/// Each distinct term owns exactly one heap allocation: the arena `Vec` and
/// the reverse-lookup map share it through an `Arc<str>`. At Yago scale
/// (hundreds of thousands of labels) storing every term twice — which a
/// naive `Box<str>` arena plus `Box<str>`-keyed map does — doubles resident
/// label memory for no benefit.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Arc<str>>,
    lookup: HashMap<Arc<str>, usize>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its dense index. Re-interning an existing
    /// string returns the original index.
    pub fn intern(&mut self, s: &str) -> usize {
        if let Some(&i) = self.lookup.get(s) {
            return i;
        }
        let i = self.strings.len();
        let shared: Arc<str> = Arc::from(s);
        self.strings.push(Arc::clone(&shared));
        self.lookup.insert(shared, i);
        i
    }

    /// The index of `s` if it has been interned.
    pub fn get(&self, s: &str) -> Option<usize> {
        self.lookup.get(s).copied()
    }

    /// The string behind index `i`.
    ///
    /// # Panics
    /// Panics if `i` was not handed out by this interner.
    pub fn resolve(&self, i: usize) -> &str {
        &self.strings[i]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(index, string)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (i, &**s))
    }

    /// Total bytes of string payload held, counting each term's allocation
    /// once regardless of how many internal views share it.
    pub fn string_heap_bytes(&self) -> usize {
        self.strings.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("Italy");
        let b = it.intern("Italy");
        assert_eq!(a, b);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let mut it = Interner::new();
        let a = it.intern("Italy");
        let b = it.intern("italy"); // raw comparison: case matters here
        assert_ne!(a, b);
        assert_eq!(it.resolve(a), "Italy");
        assert_eq!(it.resolve(b), "italy");
    }

    #[test]
    fn get_without_intern() {
        let mut it = Interner::new();
        assert_eq!(it.get("Rome"), None);
        let i = it.intern("Rome");
        assert_eq!(it.get("Rome"), Some(i));
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut it = Interner::new();
        it.intern("a");
        it.intern("b");
        it.intern("c");
        let collected: Vec<&str> = it.iter().map(|(_, s)| s).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_interner() {
        let it = Interner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }

    #[test]
    fn each_term_is_stored_once() {
        // Memory accounting: the arena slot and the map key must share one
        // allocation (strong count exactly 2), and the payload accounting
        // must equal the sum of distinct term lengths — not double it.
        let mut it = Interner::new();
        let terms = ["Italy", "Rome", "a much longer borrowed label"];
        for t in terms {
            it.intern(t);
            it.intern(t); // re-intern must not clone a second copy
        }
        for (i, _) in it.strings.iter().enumerate() {
            assert_eq!(
                Arc::strong_count(&it.strings[i]),
                2,
                "term {i} must be shared by exactly the arena and the map"
            );
        }
        let distinct: usize = terms.iter().map(|t| t.len()).sum();
        assert_eq!(it.string_heap_bytes(), distinct);
    }

    #[test]
    fn clone_shares_no_extra_payload_copies() {
        // Cloning the interner bumps refcounts instead of copying bytes;
        // the per-term payload accounting stays flat.
        let mut it = Interner::new();
        it.intern("Italy");
        let cloned = it.clone();
        assert_eq!(cloned.string_heap_bytes(), it.string_heap_bytes());
        assert_eq!(Arc::strong_count(&it.strings[0]), 4);
    }
}
