//! Ground-truth oracles.
//!
//! A simulated worker needs to know what the *correct* answer would be; an
//! [`Oracle`] supplies it. Experiments implement this against the
//! synthetic world's ground truth; unit tests use [`FixedOracle`].

use crate::question::{Answer, Question};

/// Supplies the ground-truth answer for a question.
pub trait Oracle {
    /// The correct answer to `q`. Returning [`Answer::NoneOfTheAbove`] is
    /// legitimate when none of the offered candidates is right.
    fn answer(&self, q: &Question) -> Answer;
}

impl<F> Oracle for F
where
    F: Fn(&Question) -> Answer,
{
    fn answer(&self, q: &Question) -> Answer {
        self(q)
    }
}

/// An oracle that always returns the same answer — test helper.
#[derive(Debug, Clone, Copy)]
pub struct FixedOracle(pub Answer);

impl Oracle for FixedOracle {
    fn answer(&self, _q: &Question) -> Answer {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact_q() -> Question {
        Question::Fact {
            subject: "Italy".into(),
            property: "hasCapital".into(),
            object: "Rome".into(),
        }
    }

    #[test]
    fn fixed_oracle() {
        let o = FixedOracle(Answer::Bool(true));
        assert_eq!(o.answer(&fact_q()), Answer::Bool(true));
    }

    #[test]
    fn closure_oracle() {
        let o = |q: &Question| match q {
            Question::Fact { object, .. } if object == "Rome" => Answer::Bool(true),
            _ => Answer::Bool(false),
        };
        assert_eq!(o.answer(&fact_q()), Answer::Bool(true));
    }
}
