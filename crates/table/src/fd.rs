//! Functional dependencies.
//!
//! The paper's repair comparison (§7.4, Appendix D) configures the EQ
//! baseline with FDs such as `Person: A → B, C, D` and `Soccer: C → A, B`.
//! An [`Fd`] here has a composite LHS and a single RHS column; multi-RHS
//! declarations like `A → B, C, D` expand into one [`Fd`] per RHS.

use std::collections::HashMap;

use crate::table::Table;
use crate::value::Value;

/// A functional dependency `lhs → rhs` over column indexes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fd {
    /// Determinant columns.
    pub lhs: Vec<usize>,
    /// Dependent column.
    pub rhs: usize,
}

impl Fd {
    /// `lhs → rhs`.
    ///
    /// # Panics
    /// Panics if `lhs` is empty or contains `rhs`.
    pub fn new(lhs: Vec<usize>, rhs: usize) -> Self {
        assert!(!lhs.is_empty(), "FD needs a non-empty LHS");
        assert!(!lhs.contains(&rhs), "FD RHS cannot appear in its LHS");
        Fd { lhs, rhs }
    }

    /// Expand a multi-RHS declaration `lhs → rhs_1, …, rhs_n`.
    pub fn expand(lhs: &[usize], rhs: &[usize]) -> Vec<Fd> {
        rhs.iter().map(|&r| Fd::new(lhs.to_vec(), r)).collect()
    }

    /// The LHS key of row `r` (null cells render as empty strings, which
    /// keeps key grouping total).
    pub fn key<'a>(&self, table: &'a Table, r: usize) -> Vec<&'a str> {
        self.lhs
            .iter()
            .map(|&c| table.cell(r, c).text_or_empty())
            .collect()
    }

    /// Groups of row indexes sharing an LHS key but disagreeing on the RHS
    /// — the FD's violations.
    pub fn violations(&self, table: &Table) -> Vec<Vec<usize>> {
        let mut groups: HashMap<Vec<&str>, Vec<usize>> = HashMap::new();
        for r in 0..table.num_rows() {
            groups.entry(self.key(table, r)).or_default().push(r);
        }
        let mut out: Vec<Vec<usize>> = groups
            .into_values()
            .filter(|rows| {
                rows.len() > 1 && {
                    let first = table.cell(rows[0], self.rhs);
                    rows[1..].iter().any(|&r| table.cell(r, self.rhs) != first)
                }
            })
            .collect();
        out.sort();
        out
    }

    /// True if the table satisfies this FD.
    pub fn holds_on(&self, table: &Table) -> bool {
        self.violations(table).is_empty()
    }

    /// Majority RHS value per LHS key, for repair heuristics:
    /// `key -> (value, support)`. Ties break toward the lexicographically
    /// smaller value for determinism.
    pub fn majority_rhs<'a>(&self, table: &'a Table) -> HashMap<Vec<&'a str>, (&'a Value, usize)> {
        let mut counts: HashMap<Vec<&str>, HashMap<&Value, usize>> = HashMap::new();
        for r in 0..table.num_rows() {
            *counts
                .entry(self.key(table, r))
                .or_default()
                .entry(table.cell(r, self.rhs))
                .or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|(k, vs)| {
                let best = vs
                    .into_iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
                    .expect("non-empty group");
                (k, best)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        let mut t = Table::with_opaque_columns("t", 3);
        t.push_text_row(&["Italy", "Rome", "Italian"]);
        t.push_text_row(&["Italy", "Rome", "Italian"]);
        t.push_text_row(&["Italy", "Madrid", "Italian"]); // violates A→B
        t.push_text_row(&["Spain", "Madrid", "Spanish"]);
        t
    }

    #[test]
    fn violations_found() {
        let fd = Fd::new(vec![0], 1);
        let v = fd.violations(&t());
        assert_eq!(v, vec![vec![0, 1, 2]]);
        assert!(!fd.holds_on(&t()));
    }

    #[test]
    fn satisfied_fd() {
        let fd = Fd::new(vec![0], 2); // country → language holds
        assert!(fd.holds_on(&t()));
    }

    #[test]
    fn majority_picks_most_frequent() {
        let fd = Fd::new(vec![0], 1);
        let table = t();
        let maj = fd.majority_rhs(&table);
        let (v, support) = maj[&vec!["Italy"]];
        assert_eq!(v.as_str(), Some("Rome"));
        assert_eq!(support, 2);
    }

    #[test]
    fn expand_multi_rhs() {
        let fds = Fd::expand(&[0], &[1, 2, 3]);
        assert_eq!(fds.len(), 3);
        assert_eq!(fds[2], Fd::new(vec![0], 3));
    }

    #[test]
    fn composite_lhs() {
        let mut t = Table::with_opaque_columns("t", 3);
        t.push_text_row(&["a", "x", "1"]);
        t.push_text_row(&["a", "y", "2"]);
        t.push_text_row(&["a", "x", "3"]); // violates (A,B)→C with row 0
        let fd = Fd::new(vec![0, 1], 2);
        assert_eq!(fd.violations(&t), vec![vec![0, 2]]);
    }

    #[test]
    #[should_panic(expected = "LHS")]
    fn empty_lhs_panics() {
        Fd::new(vec![], 1);
    }

    #[test]
    #[should_panic(expected = "RHS")]
    fn rhs_in_lhs_panics() {
        Fd::new(vec![0, 1], 1);
    }
}
