//! # katara-bench — shared fixtures for the Criterion benchmarks
//!
//! One bench target per evaluation artifact:
//!
//! * `discovery` — Tables 2–3, Figure 6 (candidate generation + the four
//!   discovery algorithms, top-k sweeps);
//! * `validation` — Table 4, Figure 7 (MUVF vs AVI, question sweeps);
//! * `annotation` — Table 5 (annotation throughput, enrichment);
//! * `repair` — Figure 8, Tables 6–7 (instance-graph index build, top-k
//!   repair generation, EQ/SCARE);
//! * `ablations` — the DESIGN.md design-choice benches (rank-join vs
//!   exhaustive, inverted lists vs full scan, coherence cache vs
//!   recompute, enrichment on/off);
//! * `resolve` — the shared KB query snapshot (DESIGN.md §5e): cold
//!   (snapshot built inside every cleaning run) vs snapshot-cached
//!   (pre-built [`katara_core::resolve::TableResolution`] injected),
//!   end to end on a large fixture.

use std::sync::Arc;

use katara_core::candidates::{discover_candidates, CandidateConfig, CandidateSet};
use katara_crowd::{Crowd, CrowdConfig};
use katara_datagen::{
    build_kb, person_table, GeneratedTable, KbFlavor, KbGenConfig, TableOracle, World, WorldConfig,
    WorldFacts,
};
use katara_eval::corpus::{Corpus, CorpusConfig};
use katara_kb::Kb;
use katara_table::corrupt::{corrupt_table, CorruptionConfig};

pub mod perf;

/// The benchmark corpus: small enough for Criterion's iteration counts,
/// large enough to exercise every code path.
pub fn bench_corpus() -> Corpus {
    Corpus::build(&CorpusConfig::small())
}

/// A (kb, table, candidates) fixture for one web table.
pub struct DiscoveryFixture {
    /// The KB.
    pub kb: Kb,
    /// The generated table.
    pub table: GeneratedTable,
    /// Precomputed candidate lists.
    pub cands: CandidateSet,
}

/// Build the standard discovery fixture (first web table, chosen flavor).
pub fn discovery_fixture(corpus: &Corpus, flavor: KbFlavor) -> DiscoveryFixture {
    let kb = corpus.kb(flavor);
    let table = corpus.web[0].clone();
    let cands = discover_candidates(&table.table, &kb, &CandidateConfig::default());
    DiscoveryFixture { kb, table, cands }
}

/// The large end-to-end fixture for the `resolve` bench: a
/// [`WorldConfig::yago_scale`] world compiled with
/// [`KbGenConfig::yago_scale`] into a KB of over a million triples and
/// 100K+ classes, and a Person table of [`resolve_rows`] rows with
/// typo-heavy paper-style corruption, so fuzzy cell→KB resolution
/// genuinely dominates a cold cleaning run. Quick mode shrinks both for
/// CI smoke.
pub struct ResolveFixture {
    /// The (immutable during the bench — enrichment is off) KB.
    pub kb: Kb,
    /// The corrupted Person table plus its ground truth.
    pub table: GeneratedTable,
    /// Oracle fact base for expert crowds.
    pub facts: Arc<WorldFacts>,
    /// KB flavor the fixture was built with.
    pub flavor: KbFlavor,
    /// Injected cell errors.
    pub errors: usize,
    /// Human-readable fixture description for the report.
    pub name: String,
}

/// Person rows in the resolve fixture: 4 000 full (against the
/// million-triple Yago-scale KB each fuzzy probe costs ~15× what it did
/// on the old ~20K-entity fixture, so this keeps one cold iteration in
/// single-digit seconds while resolution still dominates), 400 in quick
/// mode.
pub fn resolve_rows() -> usize {
    if perf::quick_mode() {
        400
    } else {
        4_000
    }
}

/// Build the resolve fixture.
pub fn resolve_fixture() -> ResolveFixture {
    let flavor = KbFlavor::YagoLike;
    let (world_config, kbgen_config) = if perf::quick_mode() {
        (WorldConfig::tiny(), KbGenConfig::for_flavor(flavor))
    } else {
        (WorldConfig::yago_scale(), KbGenConfig::yago_scale())
    };
    let rows = resolve_rows();
    let world = World::generate(world_config);
    let kb = build_kb(&world, &kbgen_config);
    let mut table = person_table(&world, rows, 0xBE7C);
    // Typo-dominated corruption: typos miss the exact label index and
    // force the expensive fuzzy lookup, which is exactly the per-distinct
    // -value cost the snapshot amortizes. A low tuple error rate keeps
    // the (shared) crowd/repair tail small relative to resolution.
    let log = corrupt_table(
        &mut table.table,
        &CorruptionConfig {
            tuple_error_rate: 0.05,
            columns: vec![0, 1, 2, 3],
            w_domain_swap: 0.3,
            w_typo: 0.7,
            w_null: 0.0,
        },
        0xBAD_5EED,
    );
    let facts = Arc::new(WorldFacts::build(&world));
    ResolveFixture {
        kb,
        table,
        facts,
        flavor,
        errors: log.len(),
        name: format!("person/{rows}rows/{}", flavor.name()),
    }
}

/// A fresh, deterministic expert crowd for the resolve fixture. Rebuilt
/// per iteration so cold and snapshot-cached runs answer identical
/// question sequences.
pub fn resolve_crowd(f: &ResolveFixture) -> Crowd<TableOracle> {
    let oracle = TableOracle::new(f.facts.clone(), f.table.ground_truth.clone(), f.flavor);
    Crowd::new(
        CrowdConfig {
            worker_accuracy: 1.0,
            seed: 0x5EED,
            ..CrowdConfig::default()
        },
        oracle,
    )
    .expect("resolve bench crowd config is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let corpus = bench_corpus();
        let f = discovery_fixture(&corpus, KbFlavor::DbpediaLike);
        assert!(f.table.table.num_rows() > 0);
        assert!(!f.cands.col_types.is_empty());
    }

    #[test]
    #[ignore = "builds the full Yago-scale KB (minutes); run on demand"]
    fn yago_scale_fixture_reaches_a_million_triples() {
        let world = World::generate(WorldConfig::yago_scale());
        let kb = build_kb(&world, &KbGenConfig::yago_scale());
        let triples = kb.num_facts() + kb.num_type_assertions() + kb.num_entities();
        assert!(triples >= 1_000_000, "only {triples} triples");
        assert!(
            kb.num_classes() > 100_000,
            "only {} classes",
            kb.num_classes()
        );
        assert_eq!(kb.backend_name(), "columnar");
    }

    #[test]
    fn resolve_fixture_builds_in_quick_mode() {
        // The full fixture is bench-only; the unit test pins the quick
        // path (no env juggling — tiny worlds build in milliseconds, so
        // just check the full builder plumbing on whatever mode is set).
        let f = resolve_fixture();
        assert_eq!(f.table.table.num_rows(), resolve_rows());
        assert!(f.errors > 0, "corruption must inject errors");
        let mut crowd = resolve_crowd(&f);
        let q = katara_crowd::Question::Fact {
            subject: "nobody".into(),
            property: "nationality".into(),
            object: "nowhere".into(),
        };
        assert!(crowd.ask(&q).answer().is_some());
    }
}
