//! The EQ baseline (§7.4) — equivalence-class FD repair after Bohannon et
//! al. (SIGMOD 2005), as shipped in NADEEF.
//!
//! For each FD `X → A`, tuples that agree on `X` must agree on `A`, so
//! their `A`-cells form an equivalence class; a class whose cells
//! disagree is repaired by setting every cell to the class's *minimum
//! cost* target value — the most frequent value (ties toward the
//! lexicographically smaller one). This computes a consistent instance
//! with few changes, but "not necessarily the correct changes" — exactly
//! the failure mode Table 6 exposes.
//!
//! Classes are merged across FDs with a union-find over cell positions,
//! so interacting FDs (e.g. `A → B` and `C → B`) repair coherently.

use std::collections::HashMap;

use katara_table::{Fd, Table};

use crate::RepairOutcome;

/// Repair `table` against `fds`, returning the proposed cell changes.
pub fn eq_repair(table: &Table, fds: &[Fd]) -> RepairOutcome {
    let nrows = table.num_rows();
    let ncols = table.num_columns();
    if nrows == 0 || fds.is_empty() {
        return RepairOutcome::default();
    }

    // Union-find over cell positions (row * ncols + col).
    let mut parent: Vec<usize> = (0..nrows * ncols).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let union = |parent: &mut [usize], a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
        }
    };

    // For each FD, group rows by LHS key and union their RHS cells.
    for fd in fds {
        let mut groups: HashMap<Vec<&str>, usize> = HashMap::new();
        for r in 0..nrows {
            let key = fd.key(table, r);
            let cell = r * ncols + fd.rhs;
            match groups.get(&key) {
                Some(&first) => union(&mut parent, first, cell),
                None => {
                    groups.insert(key, cell);
                }
            }
        }
    }

    // Collect classes and pick each class's target value.
    let mut classes: HashMap<usize, Vec<usize>> = HashMap::new();
    for cell in 0..nrows * ncols {
        let root = find(&mut parent, cell);
        if root != cell || classes.contains_key(&root) {
            classes.entry(root).or_default().push(cell);
        }
    }
    // Ensure roots are included exactly once.
    for (&root, members) in classes.iter_mut() {
        if !members.contains(&root) {
            members.push(root);
        }
        members.sort_unstable();
    }

    let mut out = RepairOutcome::default();
    let mut sorted: Vec<(&usize, &Vec<usize>)> = classes.iter().collect();
    sorted.sort();
    for (_, members) in sorted {
        if members.len() < 2 {
            continue;
        }
        // Majority value over the class (nulls excluded as targets).
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for &cell in members {
            if let Some(v) = table.cell(cell / ncols, cell % ncols).as_str() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let Some((&target, _)) = counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
        else {
            continue;
        };
        for &cell in members {
            let (r, c) = (cell / ncols, cell % ncols);
            if table.cell(r, c).as_str() != Some(target) {
                out.changes.push((r, c, target.to_string()));
            }
        }
    }
    out.changes.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: &[[&str; 3]]) -> Table {
        let mut t = Table::with_opaque_columns("t", 3);
        for r in rows {
            t.push_text_row(r);
        }
        t
    }

    #[test]
    fn majority_wins_within_class() {
        // FD A → B; Italy maps to Rome twice and Madrid once.
        let table = t(&[
            ["Italy", "Rome", "x"],
            ["Italy", "Rome", "y"],
            ["Italy", "Madrid", "z"],
            ["Spain", "Madrid", "w"],
        ]);
        let out = eq_repair(&table, &[Fd::new(vec![0], 1)]);
        assert_eq!(out.changes, vec![(2, 1, "Rome".to_string())]);
    }

    #[test]
    fn no_violations_no_changes() {
        let table = t(&[["Italy", "Rome", "x"], ["Spain", "Madrid", "y"]]);
        let out = eq_repair(&table, &[Fd::new(vec![0], 1)]);
        assert!(out.is_empty());
    }

    #[test]
    fn minority_keys_can_be_repaired_wrongly() {
        // The paper's point: EQ restores consistency, not correctness.
        // With a 2-1 majority for the *wrong* value, EQ repairs the right
        // one away.
        let table = t(&[
            ["Italy", "Madrid", "x"],
            ["Italy", "Madrid", "y"],
            ["Italy", "Rome", "z"],
        ]);
        let out = eq_repair(&table, &[Fd::new(vec![0], 1)]);
        assert_eq!(out.changes, vec![(2, 1, "Madrid".to_string())]);
    }

    #[test]
    fn interacting_fds_merge_classes() {
        // A → B and C → B: rows 0 and 1 share A; rows 1 and 2 share C.
        // All three B-cells join one class.
        let table = t(&[
            ["k1", "Rome", "c1"],
            ["k1", "Rome", "c2"],
            ["k2", "Milan", "c2"],
        ]);
        let out = eq_repair(&table, &[Fd::new(vec![0], 1), Fd::new(vec![2], 1)]);
        assert_eq!(out.changes, vec![(2, 1, "Rome".to_string())]);
    }

    #[test]
    fn empty_inputs() {
        let table = t(&[]);
        assert!(eq_repair(&table, &[Fd::new(vec![0], 1)]).is_empty());
        let table = t(&[["a", "b", "c"]]);
        assert!(eq_repair(&table, &[]).is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        // 1-1 tie: lexicographically smaller value wins.
        let table = t(&[["Italy", "Rome", "x"], ["Italy", "Milan", "y"]]);
        let out = eq_repair(&table, &[Fd::new(vec![0], 1)]);
        assert_eq!(out.changes, vec![(0, 1, "Milan".to_string())]);
    }
}
