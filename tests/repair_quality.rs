//! Integration tests focused on repair generation quality: the behaviors
//! Figure 8 and Tables 6–7 rest on.

use katara::core::prelude::*;
use katara::core::repair::topk_repairs_naive;
use katara::datagen::KbFlavor;
use katara::eval::corpus::{Corpus, CorpusConfig};
use katara::eval::experiments::{ground_truth_for, katara_repair_run};
use katara::eval::metrics::repair_precision_recall;
use katara::kb::sim;
use katara::table::Value;

fn corpus() -> Corpus {
    Corpus::build(&CorpusConfig::small())
}

/// Build the person pattern + index once for the small corpus.
fn person_index(
    corpus: &Corpus,
) -> (
    katara::kb::Kb,
    katara::core::pattern::TablePattern,
    RepairIndex,
) {
    let kb = corpus.kb(KbFlavor::DbpediaLike);
    let g = &corpus.person;
    // The tiny test world has 1-in-3 capital density, which lets a
    // spurious birthPlace edge slip into the raw pattern (the pipeline's
    // annotation feedback strips it; here we raise the support bar to the
    // same effect).
    let cands = discover_candidates(
        &g.table,
        &kb,
        &CandidateConfig {
            min_rel_support_fraction: 0.5,
            ..CandidateConfig::default()
        },
    );
    let pattern = discover_topk(&g.table, &kb, &cands, 1, &DiscoveryConfig::default())
        .into_iter()
        .next()
        .expect("person pattern");
    let index = RepairIndex::build(&kb, &pattern, &RepairConfig::default());
    (kb, pattern, index)
}

#[test]
fn single_cell_corruption_repairs_at_top1() {
    let corpus = corpus();
    let (kb, pattern, index) = person_index(&corpus);
    let g = &corpus.person;
    // Corrupt the capital of a row whose player is covered by the KB.
    let mut hits = 0;
    let mut total = 0;
    for r in 0..g.table.num_rows().min(80) {
        let player = g.table.cell(r, 0).as_str().unwrap();
        if kb.resources_by_label(player).is_empty() {
            continue; // KB gap: out of scope for this test
        }
        let clean_capital = g.table.cell(r, 2).as_str().unwrap().to_string();
        let mut row = g.table.row(r).to_vec();
        row[2] = Value::from_cell("Totally Wrong Capital");
        let repairs = topk_repairs(&index, &kb, &pattern, &row, 3, &RepairConfig::default());
        total += 1;
        if let Some(top) = repairs.first() {
            if top
                .changes
                .iter()
                .any(|(c, v)| *c == 2 && sim::normalize(v) == sim::normalize(&clean_capital))
            {
                hits += 1;
            }
        }
    }
    assert!(total > 20, "need enough covered rows, got {total}");
    assert!(
        hits as f64 / total as f64 > 0.7,
        "top-1 restored only {hits}/{total}"
    );
}

#[test]
fn ambiguity_cutoff_abstains_rather_than_guessing() {
    // A height column value shared by many players must not trigger a
    // name guess: build a KB where 20 players share one height.
    let mut b = katara::kb::KbBuilder::new();
    let sp = b.class("SoccerPlayer");
    let height = b.property("height");
    for i in 0..20 {
        let p = b.entity(&format!("Player{i:02}"), &[sp]);
        b.literal_fact(p, height, "1.75");
    }
    let kb = b.finalize();
    let pattern = katara::core::pattern::TablePattern::new(
        vec![
            katara::core::pattern::PatternNode {
                column: 0,
                class: Some(sp),
            },
            katara::core::pattern::PatternNode {
                column: 1,
                class: None,
            },
        ],
        vec![katara::core::pattern::PatternEdge {
            subject: 0,
            object: 1,
            property: height,
        }],
        1.0,
    )
    .unwrap();
    let index = RepairIndex::build(&kb, &pattern, &RepairConfig::default());
    // A common height with an unknown player name: dozens of graphs share
    // the height — the cut-off must abstain instead of proposing a name.
    let row = vec![Value::from_cell("Unknown Player"), Value::from_cell("1.75")];
    let repairs = topk_repairs(&index, &kb, &pattern, &row, 3, &RepairConfig::default());
    for r in &repairs {
        assert!(
            !r.changes.iter().any(|(c, _)| *c == 0),
            "must not guess a player name from a height: {repairs:?}"
        );
    }
}

#[test]
fn naive_matches_indexed_on_full_table() {
    let corpus = corpus();
    let (kb, pattern, index) = person_index(&corpus);
    let g = &corpus.person;
    let naive_cfg = RepairConfig {
        // Disable the ambiguity cutoff for the equivalence check (the
        // naive path doesn't implement it).
        max_alternatives_per_cell_set: usize::MAX,
        ..RepairConfig::default()
    };
    for r in (0..g.table.num_rows()).step_by(17) {
        let row = g.table.row(r);
        let fast = topk_repairs(&index, &kb, &pattern, row, 1, &naive_cfg);
        let naive = topk_repairs_naive(&index, &kb, &pattern, row, 1, &naive_cfg);
        match (fast.first(), naive.first()) {
            (Some(f), Some(n)) => assert!(
                (f.cost - n.cost).abs() < 1e-9,
                "row {r}: {} vs {}",
                f.cost,
                n.cost
            ),
            (None, Some(n)) => assert!(
                !n.changes.is_empty(),
                "indexed abstains only when no overlap exists"
            ),
            (Some(_), None) => panic!("naive found nothing but indexed did"),
            (None, None) => {}
        }
    }
}

#[test]
fn repair_run_precision_beats_chance_on_all_relational_tables() {
    let corpus = corpus();
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        for (name, g) in corpus.relational() {
            let (gt_types, _) = ground_truth_for(g, flavor);
            let cols: Vec<usize> = gt_types
                .iter()
                .enumerate()
                .filter_map(|(c, t)| t.map(|_| c))
                .collect();
            let Some(run) = katara_repair_run(&corpus, g, flavor, &cols, 3, 5) else {
                continue;
            };
            if !run.applicable || run.log.is_empty() {
                continue;
            }
            if name == "University" && flavor == KbFlavor::DbpediaLike {
                // Coverage-starved by design (the paper's low-recall
                // cell); the tiny corpus makes its handful of attempts
                // statistically meaningless.
                continue;
            }
            let s = repair_precision_recall(&run.log, &run.proposals);
            assert!(
                s.p >= 0.5 || run.proposals.is_empty(),
                "{name}/{flavor:?}: precision {:.2}",
                s.p
            );
        }
    }
}

#[test]
fn enriched_kb_extends_repair_reach() {
    // A fact confirmed by the crowd during annotation becomes an instance
    // graph: repairs can then cite it.
    let corpus = corpus();
    let mut kb = corpus.kb(KbFlavor::YagoLike);
    let country = kb.class_by_name("country").unwrap();
    let capital = kb.class_by_name("capital").unwrap();
    let has_capital = kb.property_by_name("hasCapital").unwrap();
    let pattern = katara::core::pattern::TablePattern::new(
        vec![
            katara::core::pattern::PatternNode {
                column: 0,
                class: Some(country),
            },
            katara::core::pattern::PatternNode {
                column: 1,
                class: Some(capital),
            },
        ],
        vec![katara::core::pattern::PatternEdge {
            subject: 0,
            object: 1,
            property: has_capital,
        }],
        1.0,
    )
    .unwrap();

    // Find a country whose capital fact is missing from the KB.
    let missing = corpus.world.countries.iter().enumerate().find(|(_ci, c)| {
        let cap = &corpus.world.cities[c.capital];
        match (kb.resource_by_name(&c.name), kb.resource_by_name(&cap.name)) {
            (Some(rc), Some(rcap)) => !kb.holds(rc, has_capital, rcap),
            _ => false,
        }
    });
    let Some((ci, c)) = missing else {
        return; // fully covered at this seed; nothing to show
    };
    let cap_name = corpus.world.cities[c.capital].name.clone();
    let row = vec![
        Value::from_cell(&c.name),
        Value::from_cell("Wrong Capital City"),
    ];

    // Before enrichment: the country's own graph does not exist.
    let index = RepairIndex::build(&kb, &pattern, &RepairConfig::default());
    let before = topk_repairs(&index, &kb, &pattern, &row, 3, &RepairConfig::default());
    let restores = |reps: &[katara::core::repair::Repair]| {
        reps.iter().any(|r| {
            r.changes
                .iter()
                .any(|(col, v)| *col == 1 && sim::normalize(v) == sim::normalize(&cap_name))
        })
    };
    assert!(!restores(&before), "fact missing → repair cannot cite it");

    // Enrich (as crowd confirmation would) and rebuild.
    let rc = kb.resource_by_name(&c.name).unwrap();
    let rcap = kb
        .resource_by_name(&corpus.world.cities[c.capital].name)
        .unwrap();
    kb.add_fact(rc, has_capital, rcap);
    let index = RepairIndex::build(&kb, &pattern, &RepairConfig::default());
    let after = topk_repairs(&index, &kb, &pattern, &row, 3, &RepairConfig::default());
    assert!(
        restores(&after),
        "enriched fact must become citable: {after:?} (country {ci})"
    );
}
