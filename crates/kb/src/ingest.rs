//! Ingestion policy, quarantine, and audit types for KB loading.
//!
//! KATARA's paper treats the KB as trusted, but a production ingress
//! cannot: real N-Triples dumps contain malformed lines, cyclic
//! `subClassOf` chains, dangling references, and pathological literals.
//! This module defines the knobs and reports that make the KB loading
//! boundary panic-free and *observable*:
//!
//! * [`IngestPolicy`] — strict (fail on the first defect, byte-identical
//!   to the historical parser) or lenient (quarantine defects and keep
//!   going), plus resource caps that turn exhaustion inputs into typed
//!   errors instead of OOM;
//! * [`Quarantined`] — one rejected input line with line number, byte
//!   offset, and error kind;
//! * [`KbAudit`] — what the builder's audit-and-repair pass found and did
//!   (cycle edges dropped, label collisions);
//! * [`IngestReport`] — the full per-load account, consumed by
//!   `katara-core`'s degradation machinery and the CLI.

use std::fmt;

/// How defects encountered during ingestion are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum IngestMode {
    /// Fail on the first defect with a typed, line-numbered error. On
    /// clean input this is byte-identical to the historical parser.
    #[default]
    Strict,
    /// Quarantine defective lines (subject to caps) and keep loading;
    /// hierarchy cycles are repaired by dropping the closing edge.
    Lenient,
}

/// Knobs for one KB load.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestPolicy {
    /// Strict or lenient defect handling.
    pub mode: IngestMode,
    /// Maximum fraction of non-blank lines that may be quarantined before
    /// the load aborts with [`crate::ntriples::NtError::TooManyQuarantined`]
    /// even in lenient mode. Guards against feeding a binary blob through
    /// the lenient path one "line" at a time.
    pub max_quarantined_fraction: f64,
    /// Maximum accepted literal length in bytes; longer literals are a
    /// defect (quarantined or fatal by mode). Caps memory spent on a
    /// single pathological cell.
    pub max_literal_len: usize,
    /// Maximum accepted IRI / blank-node-label length in bytes.
    pub max_term_len: usize,
    /// Maximum number of [`Quarantined`] diagnostics *stored* (the count
    /// keeps incrementing past it). Bounds report memory on huge dirty
    /// dumps.
    pub max_quarantine_entries: usize,
}

impl Default for IngestPolicy {
    fn default() -> Self {
        IngestPolicy::strict()
    }
}

impl IngestPolicy {
    /// The historical behaviour: first defect aborts, no caps.
    pub fn strict() -> Self {
        IngestPolicy {
            mode: IngestMode::Strict,
            max_quarantined_fraction: 1.0,
            max_literal_len: usize::MAX,
            max_term_len: usize::MAX,
            max_quarantine_entries: 1024,
        }
    }

    /// Recovering mode with production-shaped caps: defects are
    /// quarantined, at most half of the input may be defective, and
    /// single terms/literals are capped at 1 MiB.
    pub fn lenient() -> Self {
        IngestPolicy {
            mode: IngestMode::Lenient,
            max_quarantined_fraction: 0.5,
            max_literal_len: 1 << 20,
            max_term_len: 1 << 20,
            max_quarantine_entries: 1024,
        }
    }

    /// True in lenient mode.
    pub fn is_lenient(&self) -> bool {
        self.mode == IngestMode::Lenient
    }
}

/// Why a line was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuarantineKind {
    /// The line was not a well-formed N-Triples statement.
    Syntax,
    /// A literal exceeded [`IngestPolicy::max_literal_len`].
    OversizedLiteral,
    /// An IRI or blank-node label exceeded [`IngestPolicy::max_term_len`].
    OversizedTerm,
}

impl fmt::Display for QuarantineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineKind::Syntax => write!(f, "syntax"),
            QuarantineKind::OversizedLiteral => write!(f, "oversized literal"),
            QuarantineKind::OversizedTerm => write!(f, "oversized term"),
        }
    }
}

/// One quarantined input line, with enough provenance to find it again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// 1-based line number.
    pub line: usize,
    /// Byte offset of the line start within the input.
    pub byte_offset: usize,
    /// What class of defect this was.
    pub kind: QuarantineKind,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Quarantined {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {} (byte {}): {}: {}",
            self.line, self.byte_offset, self.kind, self.message
        )
    }
}

/// A hierarchy edge the audit pass dropped to keep the DAG acyclic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokenEdge {
    /// Which hierarchy (`"subClassOf"` / `"subPropertyOf"`).
    pub hierarchy: &'static str,
    /// Child-side name of the dropped `child subXOf parent` edge.
    pub child: String,
    /// Parent-side name of the dropped edge.
    pub parent: String,
    /// True for a trivial `x subXOf x` self-loop, false for an edge that
    /// would have closed a longer cycle.
    pub self_loop: bool,
}

impl fmt::Display for BrokenEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.self_loop {
            write!(f, "{}: dropped self-loop {:?}", self.hierarchy, self.child)
        } else {
            write!(
                f,
                "{}: dropped cycle-closing edge {:?} -> {:?}",
                self.hierarchy, self.child, self.parent
            )
        }
    }
}

/// Two or more distinct resources sharing one label. Not an error (KATARA
/// disambiguates by type), but worth surfacing: unexpected collisions are
/// a classic symptom of a mangled dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelCollision {
    /// The shared label.
    pub label: String,
    /// Names of the colliding resources, in declaration order.
    pub resources: Vec<String>,
}

/// What the builder's audit-and-repair pass observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KbAudit {
    /// Hierarchy edges dropped to break cycles (deterministic: the edge
    /// that would have *closed* each cycle, in declaration order).
    pub broken_edges: Vec<BrokenEdge>,
    /// Labels shared by more than one resource.
    pub label_collisions: Vec<LabelCollision>,
}

impl KbAudit {
    /// True when the audit found nothing to repair or flag.
    pub fn is_clean(&self) -> bool {
        self.broken_edges.is_empty() && self.label_collisions.is_empty()
    }
}

/// The full account of one KB load.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Non-blank, non-comment lines seen.
    pub total_statements: usize,
    /// Statements accepted into the KB.
    pub accepted: usize,
    /// Number of quarantined lines (may exceed `quarantined.len()` when
    /// the diagnostic store cap was hit).
    pub quarantined_count: usize,
    /// Stored per-line diagnostics, capped at
    /// [`IngestPolicy::max_quarantine_entries`].
    pub quarantined: Vec<Quarantined>,
    /// Builder audit results: broken cycles, label collisions.
    pub audit: KbAudit,
    /// IRIs referenced as fact objects but never given a type, label, or
    /// outgoing statement of their own — likely truncated-dump artifacts.
    pub dangling_refs: Vec<String>,
}

impl IngestReport {
    /// True when the load deviated from a clean strict parse in any way
    /// that changed the data (quarantine or repair). Dangling references
    /// and label collisions are advisory only: they occur in legitimate
    /// dumps and drop no data.
    pub fn is_degraded(&self) -> bool {
        self.quarantined_count > 0 || !self.audit.broken_edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_strict() {
        assert_eq!(IngestPolicy::default().mode, IngestMode::Strict);
        assert!(IngestPolicy::lenient().is_lenient());
    }

    #[test]
    fn report_degradation_rules() {
        let mut r = IngestReport::default();
        assert!(!r.is_degraded());
        r.dangling_refs.push("x".into());
        r.audit.label_collisions.push(LabelCollision {
            label: "l".into(),
            resources: vec!["a".into(), "b".into()],
        });
        assert!(!r.is_degraded(), "advisory findings are not degradation");
        r.quarantined_count = 1;
        assert!(r.is_degraded());
        let mut r = IngestReport::default();
        r.audit.broken_edges.push(BrokenEdge {
            hierarchy: "subClassOf",
            child: "a".into(),
            parent: "b".into(),
            self_loop: false,
        });
        assert!(r.is_degraded(), "a repaired cycle is degradation");
    }

    #[test]
    fn display_formats() {
        let q = Quarantined {
            line: 3,
            byte_offset: 41,
            kind: QuarantineKind::Syntax,
            message: "unterminated IRI".into(),
        };
        let s = q.to_string();
        assert!(s.contains("line 3") && s.contains("byte 41") && s.contains("syntax"));
        let e = BrokenEdge {
            hierarchy: "subClassOf",
            child: "a".into(),
            parent: "b".into(),
            self_loop: false,
        };
        assert!(e.to_string().contains("cycle-closing"));
        let e = BrokenEdge {
            self_loop: true,
            ..e
        };
        assert!(e.to_string().contains("self-loop"));
    }
}
