//! Deadline semantics over the full pipeline: expiry degrades, it never
//! tears.
//!
//! For ANY deadline (modelled as a deterministic check budget so the
//! property is reproducible) and any worker-pool size, a cleaning run
//! must produce either
//!
//! * an error — only when the deadline expired before discovery yielded
//!   a pattern, or
//! * a complete report identical to the undeadlined run, or
//! * a degraded report whose *completed-phase prefix* is byte-identical
//!   to the undeadlined run: every phase before
//!   [`DegradationReport::deadline_phase`] finished normally and its
//!   output matches the baseline exactly.
//!
//! There is no fourth outcome: no torn state, no phase silently half-run
//! without the report saying so.

use katara_core::prelude::*;
use katara_crowd::{Answer, Crowd, CrowdConfig, Oracle, Question};
use katara_kb::{Kb, KbBuilder};
use katara_table::Table;
use proptest::prelude::*;

/// The mini Figure-1 soccer world: one wrong capital, one missing KB
/// fact, so every phase (validation asks, enrichment, repair) has work.
fn setting() -> (Kb, Table) {
    let mut b = KbBuilder::new().with_name("mini-yago");
    let person = b.class("person");
    let country = b.class("country");
    let capital = b.class("capital");
    let nationality = b.property("nationality");
    let has_capital = b.property("hasCapital");
    let pairs = [
        ("Rossi", "Italy", "Rome"),
        ("Klate", "S. Africa", "Pretoria"),
        ("Pirlo", "Italy", "Rome"),
        ("Ramos", "Spain", "Madrid"),
        ("Benzema", "France", "Paris"),
    ];
    for (p, c, cap) in pairs {
        let rp = b.entity(p, &[person]);
        let rc = b.entity(c, &[country]);
        let rcap = b.entity(cap, &[capital]);
        b.fact(rp, nationality, rc);
        if c != "S. Africa" {
            b.fact(rc, has_capital, rcap);
        }
    }
    let kb = b.finalize();

    let mut t = Table::with_opaque_columns("soccer", 3);
    t.push_text_row(&["Rossi", "Italy", "Rome"]);
    t.push_text_row(&["Klate", "S. Africa", "Pretoria"]);
    t.push_text_row(&["Pirlo", "Italy", "Madrid"]); // the error
    t.push_text_row(&["Ramos", "Spain", "Madrid"]);
    (kb, t)
}

fn oracle() -> impl Oracle {
    |q: &Question| match q {
        Question::ColumnType {
            column, candidates, ..
        } => {
            let want = ["person", "country", "capital"][*column];
            match candidates.iter().position(|c| c == want) {
                Some(i) => Answer::Choice(i),
                None => Answer::NoneOfTheAbove,
            }
        }
        Question::Relationship {
            columns,
            candidates,
            ..
        } => {
            let want = match columns {
                (0, 1) => "nationality",
                (1, 2) => "hasCapital",
                _ => "",
            };
            match candidates
                .iter()
                .position(|c| c.contains(want) && !want.is_empty())
            {
                Some(i) => Answer::Choice(i),
                None => Answer::NoneOfTheAbove,
            }
        }
        Question::Fact {
            subject,
            property,
            object,
        } => Answer::Bool(matches!(
            (subject.as_str(), property.as_str(), object.as_str()),
            ("S. Africa", "hasCapital", "Pretoria") | ("Klate", "nationality", "S. Africa")
        )),
    }
}

fn run(threads: usize, deadline: Deadline) -> Result<CleaningReport, KataraError> {
    let (mut kb, table) = setting();
    let pool = Threads::fixed(threads);
    let config = KataraConfig {
        threads: pool,
        candidates: CandidateConfig {
            threads: pool,
            ..CandidateConfig::default()
        },
        deadline,
        ..KataraConfig::default()
    };
    let mut crowd = Crowd::new(
        CrowdConfig {
            worker_accuracy: 1.0,
            ..CrowdConfig::default()
        },
        oracle(),
    )
    .expect("crowd config is valid");
    Katara::new(config).clean(&table, &mut kb, &mut crowd)
}

/// The ISSUE's pool sizes: sequential, small, oversubscribed.
const POOLS: [usize; 3] = [1, 2, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_deadline_yields_complete_or_untorn_prefix(
        checks in 0u64..80,
        pool_idx in 0usize..POOLS.len(),
    ) {
        let threads = POOLS[pool_idx];
        let baseline = run(threads, Deadline::none()).expect("undeadlined run succeeds");
        prop_assert!(!baseline.degradation.deadline_expired);

        match run(threads, Deadline::after_checks(checks)) {
            Err(KataraError::DeadlineExceeded { phase }) => {
                // Only the pre-discovery boundaries may error.
                prop_assert!(phase == "resolve" || phase == "discover");
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
            Ok(report) => {
                let d = &report.degradation;
                // The report never lies about expiry.
                prop_assert_eq!(d.deadline_expired, d.deadline_phase.is_some());
                match d.deadline_phase {
                    None => {
                        // Complete run: identical to the baseline.
                        prop_assert_eq!(
                            format!("{:?}", report), format!("{:?}", baseline),
                            "an unexpired deadline changed the output"
                        );
                    }
                    Some("repair") => {
                        // Everything through annotation finished normally.
                        prop_assert_eq!(&report.discovery_stats, &baseline.discovery_stats);
                        prop_assert_eq!(report.variables_validated, baseline.variables_validated);
                        prop_assert_eq!(
                            format!("{:?}", report.annotation),
                            format!("{:?}", baseline.annotation)
                        );
                        prop_assert_eq!(
                            format!("{:?}", report.pattern),
                            format!("{:?}", baseline.pattern)
                        );
                        // Repairs are a contiguous prefix of the
                        // baseline's — never a reordered or torn subset.
                        prop_assert!(report.repairs.len() <= baseline.repairs.len());
                        for (got, want) in report.repairs.iter().zip(&baseline.repairs) {
                            prop_assert_eq!(format!("{got:?}"), format!("{want:?}"));
                        }
                    }
                    Some("annotate") => {
                        // Discovery and validation finished normally.
                        prop_assert_eq!(&report.discovery_stats, &baseline.discovery_stats);
                        prop_assert_eq!(report.variables_validated, baseline.variables_validated);
                    }
                    Some("validate") => {
                        prop_assert_eq!(&report.discovery_stats, &baseline.discovery_stats);
                    }
                    Some(other) => prop_assert!(false, "unknown deadline phase {other:?}"),
                }
            }
        }
    }
}
