//! Seeded error injection with provenance.
//!
//! Reproduces the paper's dirty-instance construction (§7.4): "we injected
//! 10% random errors into columns that are covered by the patterns …, that
//! is, each tuple has a 10% chance of being modified to contain errors."
//! Every change is logged so experiments can score repairs against the
//! clean ground truth.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::table::{CellRef, Table};
use crate::value::Value;

/// How a cell was corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Replaced with a value drawn from another row of the same column
    /// (an in-domain wrong value, like `Madrid` for Italy's capital).
    DomainSwap,
    /// A character-level typo (delete / substitute / transpose).
    Typo,
    /// Set to null.
    Nulled,
}

/// One injected error.
#[derive(Debug, Clone, PartialEq)]
pub struct CellChange {
    /// Where.
    pub cell: CellRef,
    /// The ground-truth value before corruption.
    pub original: Value,
    /// The dirty value written.
    pub corrupted: Value,
    /// How.
    pub kind: CorruptionKind,
}

/// The full provenance of one corruption pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorruptionLog {
    /// Injected changes, in row order.
    pub changes: Vec<CellChange>,
}

impl CorruptionLog {
    /// Number of injected errors.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True if nothing was corrupted.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// The change at a given cell, if any.
    pub fn change_at(&self, cell: CellRef) -> Option<&CellChange> {
        self.changes.iter().find(|c| c.cell == cell)
    }

    /// True if `cell` was corrupted.
    pub fn is_dirty(&self, cell: CellRef) -> bool {
        self.change_at(cell).is_some()
    }
}

/// Configuration for [`corrupt_table`].
#[derive(Debug, Clone)]
pub struct CorruptionConfig {
    /// Probability that a tuple receives an error (paper: 0.10).
    pub tuple_error_rate: f64,
    /// Columns eligible for corruption (paper: the pattern-covered ones).
    pub columns: Vec<usize>,
    /// Relative weight of [`CorruptionKind::DomainSwap`].
    pub w_domain_swap: f64,
    /// Relative weight of [`CorruptionKind::Typo`].
    pub w_typo: f64,
    /// Relative weight of [`CorruptionKind::Nulled`].
    pub w_null: f64,
}

impl CorruptionConfig {
    /// The paper's setup: 10% tuple error rate over the given columns,
    /// errors dominated by in-domain wrong values (the kind FDs and KBs
    /// can catch), with some typos and no nulls.
    pub fn paper_default(columns: Vec<usize>) -> Self {
        CorruptionConfig {
            tuple_error_rate: 0.10,
            columns,
            w_domain_swap: 0.8,
            w_typo: 0.2,
            w_null: 0.0,
        }
    }
}

/// Corrupt `table` in place, returning the provenance log.
///
/// For each row, with probability `tuple_error_rate`, one eligible
/// non-null cell is corrupted. Deterministic for a fixed seed.
pub fn corrupt_table(table: &mut Table, config: &CorruptionConfig, seed: u64) -> CorruptionLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = CorruptionLog::default();
    let total_w = config.w_domain_swap + config.w_typo + config.w_null;
    assert!(
        total_w > 0.0,
        "at least one corruption kind must be enabled"
    );
    if config.columns.is_empty() {
        return log;
    }

    for r in 0..table.num_rows() {
        if !rng.random_bool(config.tuple_error_rate) {
            continue;
        }
        // Pick an eligible column with a non-null cell.
        let candidates: Vec<usize> = config
            .columns
            .iter()
            .copied()
            .filter(|&c| !table.cell(r, c).is_null())
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let col = candidates[rng.random_range(0..candidates.len())];
        let original = table.cell(r, col).clone();
        let Some(orig_text) = original.as_str() else {
            continue;
        };

        let kind = pick_kind(&mut rng, config, total_w);
        let corrupted = match kind {
            CorruptionKind::DomainSwap => {
                match domain_swap(table, r, col, orig_text, &mut rng) {
                    Some(v) => Value::Text(v),
                    // Column has a single distinct value; fall back to typo.
                    None => Value::Text(typo(orig_text, &mut rng)),
                }
            }
            CorruptionKind::Typo => Value::Text(typo(orig_text, &mut rng)),
            CorruptionKind::Nulled => Value::Null,
        };
        if corrupted == original {
            continue; // a no-op "corruption" is not an error
        }
        let kind = match (&corrupted, kind) {
            // Record the fallback accurately.
            (Value::Text(_), CorruptionKind::DomainSwap)
                if !column_contains(table, col, &corrupted) =>
            {
                CorruptionKind::Typo
            }
            (_, k) => k,
        };
        table.set_cell(r, col, corrupted.clone());
        log.changes.push(CellChange {
            cell: CellRef { row: r, col },
            original,
            corrupted,
            kind,
        });
    }
    log
}

fn pick_kind(rng: &mut StdRng, config: &CorruptionConfig, total_w: f64) -> CorruptionKind {
    let x = rng.random_range(0.0..total_w);
    if x < config.w_domain_swap {
        CorruptionKind::DomainSwap
    } else if x < config.w_domain_swap + config.w_typo {
        CorruptionKind::Typo
    } else {
        CorruptionKind::Nulled
    }
}

fn column_contains(table: &Table, col: usize, v: &Value) -> bool {
    (0..table.num_rows()).any(|r| table.cell(r, col) == v)
}

/// A different value drawn from the same column, or `None` if the column
/// holds a single distinct value.
fn domain_swap(
    table: &Table,
    row: usize,
    col: usize,
    original: &str,
    rng: &mut StdRng,
) -> Option<String> {
    let distinct: Vec<&str> = table
        .distinct_column_values(col)
        .into_iter()
        .filter(|&v| v != original)
        .collect();
    let _ = row;
    if distinct.is_empty() {
        None
    } else {
        Some(distinct[rng.random_range(0..distinct.len())].to_string())
    }
}

/// How a CSV text line was structurally corrupted (as opposed to the
/// value-level corruption of [`corrupt_table`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StructuralKind {
    /// One extra field appended to the record (ragged: too wide).
    ExtraField,
    /// The last field removed from the record (ragged: too narrow).
    MissingField,
    /// The last field replaced by an oversized blob of
    /// [`StructuralCorruptionConfig::oversize_len`] bytes.
    OversizedCell,
}

/// One structural change to the CSV text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralChange {
    /// 1-based line that was mangled.
    pub line: usize,
    /// How it was mangled.
    pub kind: StructuralKind,
}

/// Provenance of one [`corrupt_csv_text`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StructuralLog {
    /// Mangled lines, in line order.
    pub changes: Vec<StructuralChange>,
}

impl StructuralLog {
    /// Number of mangled lines.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True if nothing was mangled.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// Configuration for [`corrupt_csv_text`].
#[derive(Debug, Clone)]
pub struct StructuralCorruptionConfig {
    /// Probability that a data line is structurally mangled.
    pub record_error_rate: f64,
    /// Byte length of the blob written by [`StructuralKind::OversizedCell`].
    /// Pick it larger than the ingest policy's `max_cell_len` so every
    /// injection is detectable.
    pub oversize_len: usize,
}

impl Default for StructuralCorruptionConfig {
    fn default() -> Self {
        StructuralCorruptionConfig {
            record_error_rate: 0.10,
            oversize_len: 1 << 16,
        }
    }
}

/// Structurally corrupt CSV *text*, returning the mangled text and a log
/// of exactly which lines were broken and how.
///
/// This is the adversarial counterpart to [`corrupt_table`]: instead of
/// plausible wrong values (which still parse), it produces files that a
/// strict parser rejects — ragged rows and oversized cells — so ingestion
/// quarantine can be tested against known injection counts: each logged
/// change corresponds to exactly one quarantined record under a lenient
/// policy whose `max_cell_len` is below `oversize_len`.
///
/// The header (line 1) is never touched. The input must be simple
/// one-line-per-record CSV without quoted commas or embedded newlines
/// (what [`crate::csv::to_string`] emits for plain tables); quoted
/// structure would make line-wise mangling ambiguous. Deterministic for
/// a fixed seed.
pub fn corrupt_csv_text(
    csv: &str,
    config: &StructuralCorruptionConfig,
    seed: u64,
) -> (String, StructuralLog) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut log = StructuralLog::default();
    let mut out = String::new();
    for (i, line) in csv.lines().enumerate() {
        let lineno = i + 1;
        let is_data = i > 0 && !line.is_empty();
        if !is_data || !rng.random_bool(config.record_error_rate) {
            out.push_str(line);
            out.push('\n');
            continue;
        }
        let kind = match rng.random_range(0..3u8) {
            0 => StructuralKind::ExtraField,
            1 if line.contains(',') => StructuralKind::MissingField,
            _ => StructuralKind::OversizedCell,
        };
        match kind {
            StructuralKind::ExtraField => {
                out.push_str(line);
                out.push_str(",zzz-extra");
            }
            StructuralKind::MissingField => {
                // Guarded by the `contains(',')` arm above.
                if let Some(p) = line.rfind(',') {
                    out.push_str(&line[..p]);
                }
            }
            StructuralKind::OversizedCell => {
                if let Some(p) = line.rfind(',') {
                    out.push_str(&line[..=p]);
                }
                for _ in 0..config.oversize_len {
                    out.push('x');
                }
            }
        }
        out.push('\n');
        log.changes.push(StructuralChange { line: lineno, kind });
    }
    (out, log)
}

/// Introduce a character-level typo: substitute, delete, or transpose.
fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return "x".to_string();
    }
    let mut out = chars.clone();
    match rng.random_range(0..3u8) {
        0 => {
            // Substitute one char with a letter that differs from it.
            let i = rng.random_range(0..out.len());
            let mut repl = (b'a' + rng.random_range(0..26u8)) as char;
            if repl == out[i] {
                repl = if repl == 'z' {
                    'a'
                } else {
                    (repl as u8 + 1) as char
                };
            }
            out[i] = repl;
        }
        1 if out.len() > 1 => {
            let i = rng.random_range(0..out.len());
            out.remove(i);
        }
        _ if out.len() > 1 => {
            let i = rng.random_range(0..out.len() - 1);
            out.swap(i, i + 1);
            if out == chars {
                // Swapped identical chars; substitute instead.
                out[0] = if out[0] == 'z' { 'a' } else { 'z' };
            }
        }
        _ => {
            out.push('x');
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_table() -> Table {
        let mut t = Table::with_opaque_columns("t", 3);
        for i in 0..200 {
            let country = if i % 2 == 0 { "Italy" } else { "Spain" };
            let capital = if i % 2 == 0 { "Rome" } else { "Madrid" };
            t.push_row(vec![
                Value::Text(format!("p{i}")),
                Value::Text(country.into()),
                Value::Text(capital.into()),
            ]);
        }
        t
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = CorruptionConfig::paper_default(vec![1, 2]);
        let mut t1 = big_table();
        let mut t2 = big_table();
        let l1 = corrupt_table(&mut t1, &cfg, 42);
        let l2 = corrupt_table(&mut t2, &cfg, 42);
        assert_eq!(l1, l2);
        assert_eq!(t1, t2);
        assert!(!l1.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = CorruptionConfig::paper_default(vec![1, 2]);
        let mut t1 = big_table();
        let mut t2 = big_table();
        let l1 = corrupt_table(&mut t1, &cfg, 1);
        let l2 = corrupt_table(&mut t2, &cfg, 2);
        assert_ne!(l1, l2);
    }

    #[test]
    fn error_rate_is_roughly_ten_percent() {
        let cfg = CorruptionConfig::paper_default(vec![1, 2]);
        let mut t = big_table();
        let log = corrupt_table(&mut t, &cfg, 7);
        // 200 rows at 10%: expect ~20, allow generous slack.
        assert!(log.len() >= 8 && log.len() <= 40, "got {}", log.len());
    }

    #[test]
    fn only_configured_columns_touched() {
        let cfg = CorruptionConfig::paper_default(vec![2]);
        let mut t = big_table();
        let log = corrupt_table(&mut t, &cfg, 9);
        assert!(log.changes.iter().all(|c| c.cell.col == 2));
    }

    #[test]
    fn changes_are_real_changes() {
        let cfg = CorruptionConfig::paper_default(vec![1, 2]);
        let mut t = big_table();
        let log = corrupt_table(&mut t, &cfg, 11);
        for ch in &log.changes {
            assert_ne!(ch.original, ch.corrupted);
            assert_eq!(t.cell_at(ch.cell), &ch.corrupted);
        }
    }

    #[test]
    fn log_lookup() {
        let cfg = CorruptionConfig::paper_default(vec![1]);
        let mut t = big_table();
        let log = corrupt_table(&mut t, &cfg, 13);
        let first = log.changes.first().expect("some corruption");
        assert!(log.is_dirty(first.cell));
        assert_eq!(log.change_at(first.cell), Some(first));
        assert!(!log.is_dirty(CellRef {
            row: usize::MAX,
            col: 0
        }));
    }

    #[test]
    fn empty_columns_is_noop() {
        let cfg = CorruptionConfig::paper_default(vec![]);
        let mut t = big_table();
        let before = t.clone();
        let log = corrupt_table(&mut t, &cfg, 1);
        assert!(log.is_empty());
        assert_eq!(t, before);
    }

    #[test]
    fn structural_corruption_is_deterministic_and_logged() {
        let csv = crate::csv::to_string(&big_table());
        let cfg = StructuralCorruptionConfig {
            record_error_rate: 0.2,
            oversize_len: 128,
        };
        let (d1, l1) = corrupt_csv_text(&csv, &cfg, 42);
        let (d2, l2) = corrupt_csv_text(&csv, &cfg, 42);
        assert_eq!(d1, d2);
        assert_eq!(l1, l2);
        assert!(!l1.is_empty());
        // Header untouched, every logged line actually differs.
        let orig: Vec<&str> = csv.lines().collect();
        let dirty: Vec<&str> = d1.lines().collect();
        assert_eq!(orig[0], dirty[0]);
        for ch in &l1.changes {
            assert_ne!(orig[ch.line - 1], dirty[ch.line - 1], "line {}", ch.line);
        }
    }

    #[test]
    fn each_structural_change_quarantines_exactly_one_record() {
        use crate::ingest::IngestPolicy;
        let csv = crate::csv::to_string(&big_table());
        let cfg = StructuralCorruptionConfig {
            record_error_rate: 0.15,
            oversize_len: 256,
        };
        let (dirty, log) = corrupt_csv_text(&csv, &cfg, 7);
        let mut policy = IngestPolicy::lenient();
        policy.max_cell_len = 128;
        let (t, report) = crate::csv::parse_with_policy("t", &dirty, &policy).unwrap();
        assert_eq!(report.quarantined_count, log.len());
        assert_eq!(t.num_rows() + log.len(), 200);
        let quarantined_lines: Vec<usize> = report.quarantined.iter().map(|q| q.line).collect();
        let injected_lines: Vec<usize> = log.changes.iter().map(|c| c.line).collect();
        assert_eq!(quarantined_lines, injected_lines);
    }

    #[test]
    fn typo_always_changes_string() {
        let mut rng = StdRng::seed_from_u64(5);
        for s in ["a", "ab", "Rome", "aa", "zz", "Pretoria"] {
            for _ in 0..50 {
                assert_ne!(typo(s, &mut rng), s, "typo must alter {s:?}");
            }
        }
    }
}
