//! **Crowd-aggregation quality sweep** (beyond the paper) — plurality
//! voting versus Dawid–Skene EM at equal budget. The paper's majority
//! vote treats every worker alike; the [`katara_crowd::aggregate`]
//! module instead learns a per-worker quality score and adapts
//! replication. This sweep pits the two modes against the same seeded
//! fault plans (spammer fraction × honest-accuracy band) on the same
//! question set under the same worker-answer budget, and reports
//! accuracy, spend, and how many replica slots adaptive replication
//! never had to issue.
//!
//! The CI `crowd-quality-smoke` job gates on this sweep (via the
//! `crowd_quality_gate` integration test): Dawid–Skene must never be
//! less accurate than plurality at equal budget, and must spend
//! strictly fewer worker answers on the spammer plans.

use std::collections::HashMap;

use katara_crowd::{
    AggregationMode, Answer, AskOutcome, Budget, Crowd, CrowdConfig, FaultPlan, Question,
};

use crate::report::MdTable;

/// Questions per run. Divisible by 3 so the three question kinds are
/// represented equally.
pub const QUESTIONS: usize = 120;

/// Worker answers both modes may spend per run: plurality's exact cost
/// at the default replication of 3.
pub const ANSWER_BUDGET: usize = 3 * QUESTIONS;

/// One seeded fault plan to sweep.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Display name.
    pub name: &'static str,
    /// Fraction of the pool answering uniformly at random.
    pub spammer_fraction: f64,
    /// Accuracy of the honest (non-spammer) workers.
    pub worker_accuracy: f64,
    /// Crowd + fault seed (same for both modes, so they face the same
    /// pool and the same spammer picks).
    pub seed: u64,
}

/// The sweep's plan grid: spammer fraction {0, 0.2, 0.4} × honest
/// accuracy {0.95, 0.75}.
pub fn plans() -> Vec<Plan> {
    let mk = |name, spammer_fraction, worker_accuracy, seed| Plan {
        name,
        spammer_fraction,
        worker_accuracy,
        seed,
    };
    vec![
        mk("honest/0.95", 0.0, 0.95, 11),
        mk("honest/0.75", 0.0, 0.75, 12),
        mk("spam20/0.95", 0.2, 0.95, 13),
        mk("spam20/0.75", 0.2, 0.75, 14),
        mk("spam40/0.95", 0.4, 0.95, 15),
        mk("spam40/0.75", 0.4, 0.75, 16),
    ]
}

/// What one aggregation mode did on one plan.
#[derive(Debug, Clone, Default)]
pub struct ModeStats {
    /// Distinct questions issued (includes retried attempts).
    pub questions: usize,
    /// Worker answers actually collected — the cost axis.
    pub answers: usize,
    /// Fraction of the question set answered correctly (an unanswered
    /// question counts as wrong).
    pub accuracy: f64,
    /// Retry escalations (disagreement under Dawid–Skene).
    pub escalations: usize,
    /// Replica slots adaptive replication never issued.
    pub questions_saved: usize,
}

/// One plan's head-to-head outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// The plan swept.
    pub plan: Plan,
    /// Plurality voting (the paper's baseline).
    pub plurality: ModeStats,
    /// Dawid–Skene EM with adaptive replication.
    pub dawid_skene: ModeStats,
}

/// The structured result.
#[derive(Debug, Clone, Default)]
pub struct CrowdQuality {
    /// One row per plan.
    pub rows: Vec<Row>,
}

/// A deterministic question set with known ground truth: an equal mix
/// of boolean facts, column-type choices, and relationship choices,
/// with answers spread over the option space.
pub fn question_set(n: usize) -> (Vec<Question>, Vec<Answer>) {
    let mut qs = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for i in 0..n {
        match i % 3 {
            0 => {
                qs.push(Question::Fact {
                    subject: format!("subject-{i}"),
                    property: "hasCapital".into(),
                    object: format!("object-{i}"),
                });
                truth.push(Answer::Bool(i % 2 == 0));
            }
            1 => {
                qs.push(Question::ColumnType {
                    table: format!("table-{i}"),
                    column: 0,
                    header: vec!["col".into()],
                    sample_rows: Vec::new(),
                    candidates: vec!["country".into(), "economy".into(), "state".into()],
                });
                truth.push(Answer::Choice(i % 3));
            }
            _ => {
                qs.push(Question::Relationship {
                    table: format!("table-{i}"),
                    columns: (0, 1),
                    header: vec!["a".into(), "b".into()],
                    sample_rows: Vec::new(),
                    candidates: vec!["a hasCapital b".into(), "a locatedIn b".into()],
                });
                truth.push(if i % 9 == 2 {
                    Answer::NoneOfTheAbove
                } else {
                    Answer::Choice((i / 3) % 2)
                });
            }
        }
    }
    (qs, truth)
}

/// Run one aggregation mode over the question set under `plan`.
pub fn run_mode(plan: &Plan, mode: AggregationMode) -> ModeStats {
    let (qs, truth) = question_set(QUESTIONS);
    let by_key: HashMap<String, Answer> = qs
        .iter()
        .map(|q| format!("{q:?}"))
        .zip(truth.iter().copied())
        .collect();
    let oracle = move |q: &Question| by_key[&format!("{q:?}")];
    let mut crowd = Crowd::new(
        CrowdConfig {
            worker_accuracy: plan.worker_accuracy,
            seed: plan.seed,
            faults: FaultPlan {
                seed: plan.seed,
                spammer_fraction: plan.spammer_fraction,
                ..FaultPlan::default()
            },
            budget: Budget {
                max_worker_answers: Some(ANSWER_BUDGET),
                ..Budget::default()
            },
            aggregation: mode,
            ..CrowdConfig::default()
        },
        oracle,
    )
    .expect("sweep crowd config is valid");
    let mut correct = 0usize;
    for (q, t) in qs.iter().zip(&truth) {
        if let AskOutcome::Answered(a) = crowd.ask(q) {
            if a == *t {
                correct += 1;
            }
        }
    }
    let s = crowd.stats();
    ModeStats {
        questions: s.questions(),
        answers: s.worker_answers,
        accuracy: correct as f64 / QUESTIONS as f64,
        escalations: s.escalations,
        questions_saved: s.questions_saved,
    }
}

/// Run the full sweep: both modes on every plan.
pub fn run() -> CrowdQuality {
    let mut out = CrowdQuality::default();
    for plan in plans() {
        let plurality = run_mode(&plan, AggregationMode::Plurality);
        let dawid_skene = run_mode(&plan, AggregationMode::DawidSkene);
        out.rows.push(Row {
            plan,
            plurality,
            dawid_skene,
        });
    }
    out
}

impl CrowdQuality {
    /// Lookup one row.
    pub fn row(&self, plan: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.plan.name == plan)
    }

    /// Render the Markdown section.
    pub fn render(&self) -> String {
        let mut t = MdTable::new(&[
            "plan",
            "plurality acc",
            "plurality answers",
            "DS acc",
            "DS answers",
            "DS saved",
            "DS escalations",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.plan.name.to_string(),
                format!("{:.3}", r.plurality.accuracy),
                r.plurality.answers.to_string(),
                format!("{:.3}", r.dawid_skene.accuracy),
                r.dawid_skene.answers.to_string(),
                r.dawid_skene.questions_saved.to_string(),
                r.dawid_skene.escalations.to_string(),
            ]);
        }
        format!(
            "## Crowd aggregation — Dawid–Skene vs plurality at equal budget\n\n\
             {} questions per run (facts, column types, relationships), \
             10 workers, worker-answer budget {} (plurality's exact cost \
             at replication 3).\n\n{}\n\
             Dawid–Skene stops replicating once the answer posterior is \
             confident, so on honest plans it answers the same questions \
             for roughly two thirds of plurality's spend; on spammer \
             plans it both spends less *and* is more accurate, because \
             learned worker quality discounts the spammers that plurality \
             counts at face value.\n",
            QUESTIONS,
            ANSWER_BUDGET,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ds_matches_or_beats_plurality_at_equal_budget() {
        let sweep = run();
        assert_eq!(sweep.rows.len(), plans().len());
        for r in &sweep.rows {
            // Equal budget, never worse.
            assert!(
                r.dawid_skene.accuracy >= r.plurality.accuracy,
                "{}: DS {:.3} < plurality {:.3}",
                r.plan.name,
                r.dawid_skene.accuracy,
                r.plurality.accuracy
            );
            assert!(r.plurality.answers <= ANSWER_BUDGET);
            assert!(r.dawid_skene.answers <= ANSWER_BUDGET);
            // Spammer plans: strictly cheaper at >= accuracy, i.e.
            // strictly fewer questions at fixed accuracy.
            if r.plan.spammer_fraction > 0.0 {
                assert!(
                    r.dawid_skene.answers < r.plurality.answers,
                    "{}: DS spent {} >= plurality {}",
                    r.plan.name,
                    r.dawid_skene.answers,
                    r.plurality.answers
                );
            }
            // Adaptive replication visibly saves replicas somewhere.
            assert!(
                r.dawid_skene.questions_saved > 0,
                "{}: no replicas saved",
                r.plan.name
            );
        }
        assert!(sweep.render().contains("Dawid"));
    }

    #[test]
    fn question_set_is_deterministic_and_balanced() {
        let (a, ta) = question_set(QUESTIONS);
        let (b, tb) = question_set(QUESTIONS);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
        let facts = a
            .iter()
            .filter(|q| matches!(q, Question::Fact { .. }))
            .count();
        assert_eq!(facts, QUESTIONS / 3);
    }
}
