#!/usr/bin/env bash
# Validate the schema of a katara-obs RunMetrics JSON file (crates/obs,
# `katara clean --metrics OUT.json`):
#
#   * the katara-run-metrics/v1 schema tag;
#   * a "deterministic" section holding "counters", "gauges" and
#     "histograms", with counter keys in sorted order (sorted keys are
#     what makes the section byte-diffable across runs);
#   * one representative counter per pipeline phase, so a metrics file
#     from a run that silently skipped instrumentation fails loudly;
#   * the snapshot-tier accounting invariant
#     hits + misses + fallbacks == lookups for every resolve tier;
#   * a "nondeterministic" section with an integer "threads".
#
# Usage: check_metrics_schema.sh FILE...
set -euo pipefail

if [ "$#" -eq 0 ]; then
  echo "usage: $0 METRICS.json..." >&2
  exit 2
fi

status=0
for file in "$@"; do
  if [ ! -f "$file" ]; then
    echo "$file: missing" >&2
    status=1
    continue
  fi
  ok=1
  if ! grep -q '"schema": "katara-run-metrics/v1"' "$file"; then
    echo "$file: missing the katara-run-metrics/v1 schema tag" >&2
    ok=0
  fi
  for key in '"deterministic": {' '"counters": {' '"gauges": {' \
             '"histograms": {' '"nondeterministic": {'; do
    if ! grep -qF "$key" "$file"; then
      echo "$file: missing section $key" >&2
      ok=0
    fi
  done
  # One representative counter per pipeline phase, value a bare integer.
  for counter in ingest.quarantined resolve.candidates_lookups \
                 discovery.type_probes validation.questions \
                 annotation.enriched_facts repair.graphs_built \
                 crowd.questions_asked; do
    if ! grep -Eq "\"$counter\": [0-9]+" "$file"; then
      echo "$file: missing integer counter \"$counter\"" >&2
      ok=0
    fi
  done
  if ! grep -Eq '"threads": [0-9]+' "$file"; then
    echo "$file: missing integer \"threads\" in the nondeterministic section" >&2
    ok=0
  fi
  # Counter keys must be sorted — that ordering is the byte-stability
  # contract of the deterministic section.
  keys=$(sed -n '/"counters": {/,/},/p' "$file" | sed -n 's/^ *"\([a-z_.]*\)": [0-9].*/\1/p')
  if [ -n "$keys" ] && ! printf '%s\n' "$keys" | sort -C; then
    echo "$file: counter keys are not sorted" >&2
    ok=0
  fi
  # Snapshot-tier invariant: hits + misses + fallbacks == lookups.
  for tier in candidates types pair; do
    if ! awk -v tier="$tier" '
      $0 ~ "\"resolve\\." tier "_" { gsub(/[",:]/, ""); v[$1] = $2 }
      END {
        h = v["resolve." tier "_hit"]; m = v["resolve." tier "_miss"]
        f = v["resolve." tier "_fallback"]; l = v["resolve." tier "_lookups"]
        exit (h + m + f == l) ? 0 : 1
      }' "$file"; then
      echo "$file: resolve.$tier tier violates hits+misses+fallbacks == lookups" >&2
      ok=0
    fi
  done
  if [ "$ok" -eq 1 ]; then
    echo "$file: schema OK"
  else
    status=1
  fi
done
exit "$status"
