//! Fuzz-style properties of the CSV ingestion boundary.
//!
//! 1. **No panics.** Lenient parsing of arbitrary text — including
//!    unbalanced quotes, stray CRs and ragged rows — returns `Ok` or a
//!    typed error, never panics.
//! 2. **Strict == legacy.** `parse_with_policy` with the strict policy
//!    returns exactly what `parse` returns on *any* input: same table or
//!    same error.
//! 3. **Quarantine counts injected corruption.** Running
//!    [`katara_table::corrupt::corrupt_csv_text`] over a clean dump and
//!    re-ingesting leniently quarantines exactly the records the
//!    corruptor logged — no more, no fewer, same line numbers.
//!
//! The case count is elevated in CI via `KATARA_FUZZ_CASES`.

use katara_table::corrupt::{corrupt_csv_text, StructuralCorruptionConfig};
use katara_table::csv;
use katara_table::{IngestMode, IngestPolicy, Table};
use proptest::prelude::*;

/// Per-test case count: `KATARA_FUZZ_CASES` (CI runs an elevated count)
/// or the given local default.
fn fuzz_cases(default: u32) -> u32 {
    std::env::var("KATARA_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Whatever lenient parsing returns, its books must balance.
fn assert_report_consistent(input: &str) {
    // A typed failure (header defect, fraction cap) is fine; a panic is not.
    if let Ok((_, report)) = csv::parse_with_policy("fuzz", input, &IngestPolicy::lenient()) {
        assert_eq!(
            report.accepted + report.quarantined_count,
            report.total_records,
            "every record is accepted or quarantined"
        );
        assert!(report.quarantined.len() <= report.quarantined_count);
    }
}

/// A random *simple* table: no commas, quotes or newlines in cells, so
/// it satisfies the structural corruptor's input contract.
fn simple_table_strategy() -> impl Strategy<Value = Table> {
    (2usize..5, 1usize..20).prop_map(|(cols, rows)| {
        let mut t = Table::with_opaque_columns("fuzz", cols);
        for r in 0..rows {
            let cells: Vec<String> = (0..cols).map(|c| format!("v{r}x{c}")).collect();
            let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
            t.push_text_row(&refs);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases(64)))]

    /// Lenient ingestion of arbitrary printable text never panics.
    #[test]
    fn lenient_parse_of_arbitrary_text_never_panics(
        lines in prop::collection::vec(".{0,50}", 0..12),
    ) {
        assert_report_consistent(&lines.join("\n"));
    }

    /// CSV-shaped token soup — heavy on commas, quotes and CRs — hits the
    /// quoting state machine's edge cases.
    #[test]
    fn lenient_parse_of_csv_token_soup_never_panics(
        lines in prop::collection::vec("[a-c,\" \r]{0,24}", 0..12),
    ) {
        assert_report_consistent(&lines.join("\n"));
    }

    /// Strict `parse_with_policy` returns exactly what `parse` returns on
    /// arbitrary input: same table (modulo re-serialization) or the same
    /// typed error.
    #[test]
    fn strict_policy_matches_legacy_parse_on_any_input(
        lines in prop::collection::vec("[a-c,\" ]{0,24}", 0..12),
    ) {
        let input = lines.join("\n");
        let legacy = csv::parse("fuzz", &input);
        let strict = csv::parse_with_policy("fuzz", &input, &IngestPolicy::strict());
        match (legacy, strict) {
            (Ok(a), Ok((b, report))) => {
                prop_assert_eq!(csv::to_string(&a), csv::to_string(&b));
                prop_assert!(!report.is_degraded());
                prop_assert_eq!(report.accepted, report.total_records);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => panic!("strict diverged from legacy: {a:?} vs {b:?}"),
        }
    }

    /// Every structural corruption the corruptor logs becomes exactly one
    /// quarantined record on lenient re-ingest, at the logged line.
    #[test]
    fn quarantine_matches_injected_corruption(
        table in simple_table_strategy(),
        rate in 0.0f64..0.6,
        seed in 0u64..1 << 32,
    ) {
        let clean = csv::to_string(&table);
        let config = StructuralCorruptionConfig {
            record_error_rate: rate,
            oversize_len: 4096,
        };
        let (dirty, log) = corrupt_csv_text(&clean, &config, seed);

        // Uncapped fraction so heavy corruption still loads; cell cap
        // below oversize_len so oversized cells are actually caught.
        let policy = IngestPolicy {
            mode: IngestMode::Lenient,
            max_quarantined_fraction: 1.0,
            max_cell_len: 256,
            ..IngestPolicy::lenient()
        };
        let (_, report) = csv::parse_with_policy("fuzz", &dirty, &policy)
            .expect("uncapped lenient ingest always loads");

        prop_assert_eq!(
            report.quarantined_count,
            log.len(),
            "one quarantined record per injected corruption"
        );
        let mut got: Vec<usize> = report.quarantined.iter().map(|q| q.line).collect();
        let mut want: Vec<usize> = log.changes.iter().map(|c| c.line).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want, "quarantine hits exactly the corrupted lines");

        // And the untouched records all survive.
        prop_assert_eq!(report.accepted, table.num_rows() - log.len());
    }
}

/// The degenerate inputs that historically trip hand-rolled CSV readers.
#[test]
fn degenerate_inputs_never_panic() {
    for input in [
        "",
        "\n",
        "\r",
        "\r\n",
        ",",
        ",,,",
        "\"",
        "\"\"",
        "a,\"b",
        "a,b\n\"",
        "a,b\nc",
        "a,b\nc,d,e",
        "a,b\r\nc,d\r",
        "\"a\"b\",c",
    ] {
        assert_report_consistent(input);
        let _ = csv::parse("fuzz", input);
    }
}
