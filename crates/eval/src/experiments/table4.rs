//! **Table 4** — number of variables that must be validated before one
//! pattern remains: MUVF (entropy scheduling, Algorithm 3) vs the AVI
//! baseline, per dataset family and KB.

use katara_core::validation::{validate_patterns, SchedulingStrategy, ValidationConfig};
use katara_datagen::KbFlavor;

use crate::corpus::Corpus;
use crate::experiments::{candidates_for, crowd_for, flavors, Algo};
use crate::report::MdTable;

/// One (dataset, flavor) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Dataset family.
    pub dataset: &'static str,
    /// KB flavor.
    pub flavor: KbFlavor,
    /// Total variables validated by MUVF across the family's tables.
    pub muvf: usize,
    /// Total variables validated by AVI.
    pub avi: usize,
}

/// The structured result.
#[derive(Debug, Clone, Default)]
pub struct Table4 {
    /// All cells.
    pub cells: Vec<Cell>,
}

/// Run the experiment (near-perfect crowd, as the paper's students).
pub fn run(corpus: &Corpus) -> Table4 {
    let mut out = Table4::default();
    for flavor in flavors() {
        let kb = corpus.kb(flavor);
        for (name, tables) in corpus.families() {
            let mut muvf = 0usize;
            let mut avi = 0usize;
            for (ti, g) in tables.iter().enumerate() {
                let cands = candidates_for(&g.table, &kb);
                let patterns = Algo::RankJoin.topk(&g.table, &kb, &cands, 5);
                if patterns.is_empty() {
                    continue;
                }
                for (strategy, sink) in [
                    (SchedulingStrategy::Muvf, &mut muvf),
                    (SchedulingStrategy::Avi, &mut avi),
                ] {
                    let mut crowd = crowd_for(corpus, g, flavor, 0.97, ti as u64);
                    let outcome = validate_patterns(
                        &g.table,
                        &kb,
                        patterns.clone(),
                        &mut crowd,
                        &ValidationConfig {
                            questions_per_variable: 3,
                            tuples_per_question: 5,
                            seed: ti as u64,
                            ..ValidationConfig::default()
                        },
                        strategy,
                    );
                    *sink += outcome.variables_validated;
                }
            }
            out.cells.push(Cell {
                dataset: name,
                flavor,
                muvf,
                avi,
            });
        }
    }
    out
}

impl Table4 {
    /// Lookup one cell.
    pub fn cell(&self, dataset: &str, flavor: KbFlavor) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.dataset == dataset && c.flavor == flavor)
    }

    /// Render the Markdown section.
    pub fn render(&self) -> String {
        let mut t = MdTable::new(&[
            "dataset",
            "yago MUVF",
            "yago AVI",
            "dbpedia MUVF",
            "dbpedia AVI",
        ]);
        for (name, _) in [
            ("WikiTables", ()),
            ("WebTables", ()),
            ("RelationalTables", ()),
        ] {
            let y = self.cell(name, KbFlavor::YagoLike);
            let d = self.cell(name, KbFlavor::DbpediaLike);
            t.row(vec![
                name.to_string(),
                y.map(|c| c.muvf.to_string()).unwrap_or_default(),
                y.map(|c| c.avi.to_string()).unwrap_or_default(),
                d.map(|c| c.muvf.to_string()).unwrap_or_default(),
                d.map(|c| c.avi.to_string()).unwrap_or_default(),
            ]);
        }
        format!(
            "## Table 4 — #-variables to validate (MUVF vs AVI)\n\n{}\n\
             Paper shape: MUVF consistently validates fewer variables \
             than AVI on every dataset and KB.\n",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn muvf_validates_no_more_than_avi() {
        let corpus = Corpus::build(&CorpusConfig::small());
        let t4 = run(&corpus);
        assert!(!t4.cells.is_empty());
        for c in &t4.cells {
            assert!(
                c.muvf <= c.avi,
                "{}/{:?}: MUVF {} > AVI {}",
                c.dataset,
                c.flavor,
                c.muvf,
                c.avi
            );
        }
        // At least one strict saving overall.
        assert!(
            t4.cells.iter().any(|c| c.muvf < c.avi),
            "scheduling should save at least one variable somewhere"
        );
        assert!(t4.render().contains("MUVF"));
    }
}
