//! Dataset generation: the paper's three dataset families, with ground
//! truth.
//!
//! * `RelationalTables` — Person (large, redundant; paper: 316K rows,
//!   scale configurable here), Soccer (1625 rows) and University (1357
//!   rows), matching the FDs of Appendix D;
//! * `WikiTables` — 28 small (~32-row) tables over assorted schema
//!   templates;
//! * `WebTables` — 30 larger (~67-row), noisier tables (nulls, more
//!   templates).
//!
//! Every generated table is *clean*; experiments corrupt copies with
//! [`katara_table::corrupt`] and keep the clean original as ground truth.
//! Pattern-level ground truth is stored *semantically* and rendered per
//! KB flavor at evaluation time ([`TableGroundTruth::types_for`] /
//! [`TableGroundTruth::rels_for`]).

use katara_table::{CellChange, CellRef, CorruptionKind, CorruptionLog, Table, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::kbgen::KbGenConfig;
use crate::semantics::{KbFlavor, SemanticRel, SemanticType};
use crate::world::World;

/// The semantic ground-truth pattern of a generated table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableGroundTruth {
    /// Per column: the most specific semantic type, or `None` for columns
    /// not modeled by the KBs (codes, free text, literals).
    pub column_types: Vec<Option<SemanticType>>,
    /// Directed relationships `(subject col, object col, rel)`.
    pub relationships: Vec<(usize, usize, SemanticRel)>,
}

impl TableGroundTruth {
    /// Render the column types under a flavor (class-name strings).
    pub fn types_for(&self, flavor: KbFlavor) -> Vec<Option<&'static str>> {
        self.column_types
            .iter()
            .map(|t| t.map(|t| t.name(flavor)))
            .collect()
    }

    /// Relationships a KB built with `config` can express (coverage > 0),
    /// rendered as `(subject, object, property-name)`.
    pub fn rels_for(&self, config: &KbGenConfig) -> Vec<(usize, usize, &'static str)> {
        self.relationships
            .iter()
            .filter(|(_, _, r)| config.relation_coverage.get(r).copied().unwrap_or(0.0) > 0.0)
            .map(|&(i, j, r)| (i, j, r.name(config.flavor)))
            .collect()
    }

    /// Number of typed columns.
    pub fn num_typed_columns(&self) -> usize {
        self.column_types.iter().filter(|t| t.is_some()).count()
    }
}

/// A generated table together with its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedTable {
    /// The table as published (may contain natural nulls — see `blanks`).
    pub table: Table,
    /// Its semantic ground truth.
    pub ground_truth: TableGroundTruth,
    /// Natural missing values: cells blanked at generation time, with
    /// their ground-truth content. The paper's Wiki/Web corpora carry
    /// such nulls ("most of remaining errors in these tables are null
    /// values"); repair experiments score against these too.
    pub blanks: CorruptionLog,
}

/// The Person relational table: player, country, capital, language —
/// joined on country like the paper's Person, highly redundant. `n` rows
/// are drawn by cycling the player list.
pub fn person_table(world: &World, n: usize, seed: u64) -> GeneratedTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::with_opaque_columns("Person", 4);
    for _ in 0..n {
        let p = &world.players[draw_player(&mut rng, world)];
        t.push_text_row(&[
            &p.name,
            &world.countries[p.country].name,
            &world.capital_of(p.country).name,
            world.language_of(p.country),
        ]);
    }
    GeneratedTable {
        table: t,
        ground_truth: TableGroundTruth {
            column_types: vec![
                Some(SemanticType::SoccerPlayer),
                Some(SemanticType::Country),
                Some(SemanticType::Capital),
                Some(SemanticType::Language),
            ],
            relationships: vec![
                (0, 1, SemanticRel::Nationality),
                (1, 2, SemanticRel::HasCapital),
                (1, 3, SemanticRel::OfficialLanguage),
                (2, 1, SemanticRel::LocatedIn),
            ],
        },
        blanks: CorruptionLog::default(),
    }
}

/// The Soccer relational table: club, league, player, club code, club
/// city — the FDs of Appendix D (`C → A,B; A → E; D → A`) hold on it.
pub fn soccer_table(world: &World, n: usize, seed: u64) -> GeneratedTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::with_opaque_columns("Soccer", 5);
    // Distinct players (stars first), cycling only if n exceeds the
    // population: the paper's Soccer has one row per player, so the
    // player-keyed FDs carry no redundancy — which is what limits EQ and
    // SCARE on it (Table 6).
    let pool = sample_players(&mut rng, world, n.min(world.players.len()));
    for i in 0..n {
        let p = &world.players[pool[i % pool.len()]];
        let club = &world.clubs[p.club];
        t.push_text_row(&[
            &club.name,
            &world.leagues[club.league],
            &p.name,
            &club.code,
            &world.cities[club.city].name,
        ]);
    }
    GeneratedTable {
        table: t,
        ground_truth: TableGroundTruth {
            column_types: vec![
                Some(SemanticType::Club),
                Some(SemanticType::League),
                Some(SemanticType::SoccerPlayer),
                None, // club codes have no KB counterpart
                Some(SemanticType::City),
            ],
            relationships: vec![
                (2, 0, SemanticRel::PlaysFor),
                (0, 1, SemanticRel::InLeague),
                (0, 4, SemanticRel::LocatedIn),
            ],
        },
        blanks: CorruptionLog::default(),
    }
}

/// The University relational table: university, state, city — the FDs
/// `A → B,C; C → B` hold.
pub fn university_table(world: &World, n: usize, seed: u64) -> GeneratedTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::with_opaque_columns("University", 3);
    // Distinct universities (shuffled), cycling only if n exceeds the
    // population.
    let pool = sample_indexes(&mut rng, world.universities.len(), n);
    for i in 0..n {
        let u = &world.universities[pool[i % pool.len()]];
        let city = &world.us_cities[u.city];
        let _ = rng.random_range(0..100u32);
        t.push_text_row(&[&u.name, &world.states[city.state].name, &city.name]);
    }
    GeneratedTable {
        table: t,
        ground_truth: TableGroundTruth {
            column_types: vec![
                Some(SemanticType::University),
                Some(SemanticType::State),
                Some(SemanticType::City),
            ],
            relationships: vec![
                (0, 1, SemanticRel::InState),
                (0, 2, SemanticRel::LocatedIn),
                (2, 1, SemanticRel::InState),
            ],
        },
        blanks: CorruptionLog::default(),
    }
}

/// Schema templates shared by the Wiki/Web table generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Template {
    CountryCapital,
    CountryLanguage,
    PlayerClub,
    PlayerHeight,
    CityCountry,
    StateCapital,
    ClubLeague,
    PlayerCountryCapital,
    CountryCapitalLanguage,
    CountryCapitalWithCode,
}

const TEMPLATES: &[Template] = &[
    Template::CountryCapital,
    Template::CountryLanguage,
    Template::PlayerClub,
    Template::PlayerHeight,
    Template::CityCountry,
    Template::StateCapital,
    Template::ClubLeague,
    Template::PlayerCountryCapital,
    Template::CountryCapitalLanguage,
    Template::CountryCapitalWithCode,
];

/// Sample `rows` distinct *player* indexes, stars first (Web tables list
/// the famous players), padding with non-stars when the table is larger
/// than the star pool.
fn sample_players(rng: &mut StdRng, world: &World, rows: usize) -> Vec<usize> {
    let stars = world.num_stars();
    let mut idx = sample_indexes(rng, stars, rows);
    if idx.len() < rows {
        let rest: Vec<usize> = sample_indexes(rng, world.players.len() - stars, rows - idx.len())
            .into_iter()
            .map(|i| i + stars)
            .collect();
        idx.extend(rest);
    }
    idx
}

/// One star-biased player draw (with replacement): a star with
/// probability 0.9, any player otherwise.
fn draw_player(rng: &mut StdRng, world: &World) -> usize {
    if rng.random_bool(0.9) {
        rng.random_range(0..world.num_stars())
    } else {
        rng.random_range(0..world.players.len())
    }
}

/// Sample `rows` distinct indexes from `0..n` (all of them if `rows > n`).
fn sample_indexes(rng: &mut StdRng, n: usize, rows: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let take = rows.min(n);
    for i in 0..take {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(take);
    idx
}

fn instantiate(
    world: &World,
    template: Template,
    rows: usize,
    null_rate: f64,
    name: &str,
    rng: &mut StdRng,
) -> GeneratedTable {
    use SemanticRel::*;
    use SemanticType::*;
    let mut gt = TableGroundTruth::default();
    let mut t;
    match template {
        Template::CountryCapital => {
            t = Table::with_opaque_columns(name, 2);
            for ci in sample_indexes(rng, world.countries.len(), rows) {
                t.push_text_row(&[&world.countries[ci].name, &world.capital_of(ci).name]);
            }
            gt.column_types = vec![Some(Country), Some(Capital)];
            gt.relationships = vec![(0, 1, HasCapital), (1, 0, LocatedIn)];
        }
        Template::CountryLanguage => {
            t = Table::with_opaque_columns(name, 2);
            for ci in sample_indexes(rng, world.countries.len(), rows) {
                t.push_text_row(&[&world.countries[ci].name, world.language_of(ci)]);
            }
            gt.column_types = vec![Some(Country), Some(Language)];
            gt.relationships = vec![(0, 1, OfficialLanguage)];
        }
        Template::PlayerClub => {
            t = Table::with_opaque_columns(name, 2);
            for pi in sample_players(rng, world, rows) {
                let p = &world.players[pi];
                t.push_text_row(&[&p.name, &world.clubs[p.club].name]);
            }
            gt.column_types = vec![Some(SoccerPlayer), Some(Club)];
            gt.relationships = vec![(0, 1, PlaysFor)];
        }
        Template::PlayerHeight => {
            t = Table::with_opaque_columns(name, 2);
            for pi in sample_players(rng, world, rows) {
                let p = &world.players[pi];
                t.push_text_row(&[&p.name, &p.height]);
            }
            gt.column_types = vec![Some(SoccerPlayer), None];
            gt.relationships = vec![(0, 1, HasHeight)];
        }
        Template::CityCountry => {
            t = Table::with_opaque_columns(name, 2);
            for ci in sample_indexes(rng, world.cities.len(), rows) {
                let c = &world.cities[ci];
                t.push_text_row(&[&c.name, &world.countries[c.country].name]);
            }
            gt.column_types = vec![Some(City), Some(Country)];
            gt.relationships = vec![(0, 1, LocatedIn)];
        }
        Template::StateCapital => {
            t = Table::with_opaque_columns(name, 2);
            for si in sample_indexes(rng, world.states.len(), rows) {
                t.push_text_row(&[&world.states[si].name, &world.state_capital_of(si).name]);
            }
            gt.column_types = vec![Some(State), Some(StateCapital)];
            gt.relationships = vec![(0, 1, HasStateCapital), (1, 0, InState)];
        }
        Template::ClubLeague => {
            t = Table::with_opaque_columns(name, 2);
            for ki in sample_indexes(rng, world.clubs.len(), rows) {
                let k = &world.clubs[ki];
                t.push_text_row(&[&k.name, &world.leagues[k.league]]);
            }
            gt.column_types = vec![Some(Club), Some(League)];
            gt.relationships = vec![(0, 1, InLeague)];
        }
        Template::PlayerCountryCapital => {
            t = Table::with_opaque_columns(name, 3);
            for pi in sample_players(rng, world, rows) {
                let p = &world.players[pi];
                t.push_text_row(&[
                    &p.name,
                    &world.countries[p.country].name,
                    &world.capital_of(p.country).name,
                ]);
            }
            gt.column_types = vec![Some(SoccerPlayer), Some(Country), Some(Capital)];
            gt.relationships = vec![(0, 1, Nationality), (1, 2, HasCapital), (2, 1, LocatedIn)];
        }
        Template::CountryCapitalLanguage => {
            t = Table::with_opaque_columns(name, 3);
            for ci in sample_indexes(rng, world.countries.len(), rows) {
                t.push_text_row(&[
                    &world.countries[ci].name,
                    &world.capital_of(ci).name,
                    world.language_of(ci),
                ]);
            }
            gt.column_types = vec![Some(Country), Some(Capital), Some(Language)];
            gt.relationships = vec![
                (0, 1, HasCapital),
                (0, 2, OfficialLanguage),
                (1, 0, LocatedIn),
            ];
        }
        Template::CountryCapitalWithCode => {
            t = Table::with_opaque_columns(name, 3);
            for ci in sample_indexes(rng, world.countries.len(), rows) {
                let code = format!("#{ci:03}-{}", rng.random_range(100..999u32));
                t.push_text_row(&[&world.countries[ci].name, &world.capital_of(ci).name, &code]);
            }
            gt.column_types = vec![Some(Country), Some(Capital), None];
            gt.relationships = vec![(0, 1, HasCapital), (1, 0, LocatedIn)];
        }
    }
    // Blank some cells, recording the lost ground truth.
    let mut blanks = CorruptionLog::default();
    if null_rate > 0.0 {
        for r in 0..t.num_rows() {
            for c in 0..t.num_columns() {
                if rng.random_bool(null_rate) {
                    let original = t.set_cell(r, c, Value::Null);
                    if !original.is_null() {
                        blanks.changes.push(CellChange {
                            cell: CellRef { row: r, col: c },
                            original,
                            corrupted: Value::Null,
                            kind: CorruptionKind::Nulled,
                        });
                    }
                }
            }
        }
    }
    GeneratedTable {
        table: t,
        ground_truth: gt,
        blanks,
    }
}

/// The WikiTables corpus: `count` small tables (~32 rows, clean).
pub fn wiki_tables(world: &World, count: usize, seed: u64) -> Vec<GeneratedTable> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let template = TEMPLATES[i % TEMPLATES.len()];
            let rows = 24 + rng.random_range(0..16usize); // ~32 avg
            instantiate(
                world,
                template,
                rows,
                0.0,
                &format!("wiki_{i:02}"),
                &mut rng,
            )
        })
        .collect()
}

/// The WebTables corpus: `count` larger, noisier tables (~67 rows, a few
/// nulls).
pub fn web_tables(world: &World, count: usize, seed: u64) -> Vec<GeneratedTable> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let template = TEMPLATES[(i * 3 + 1) % TEMPLATES.len()];
            let rows = 50 + rng.random_range(0..34usize); // ~67 avg
            instantiate(
                world,
                template,
                rows,
                0.02,
                &format!("web_{i:02}"),
                &mut rng,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use katara_table::Fd;

    fn world() -> World {
        World::generate(WorldConfig::tiny())
    }

    #[test]
    fn person_table_shape_and_fds() {
        let w = world();
        let g = person_table(&w, 200, 1);
        assert_eq!(g.table.num_rows(), 200);
        assert_eq!(g.table.num_columns(), 4);
        // Paper FD: A → B, C, D.
        for fd in Fd::expand(&[0], &[1, 2, 3]) {
            assert!(fd.holds_on(&g.table), "{fd:?} must hold on clean Person");
        }
        assert_eq!(g.ground_truth.num_typed_columns(), 4);
    }

    #[test]
    fn soccer_table_fds() {
        let w = world();
        let g = soccer_table(&w, 300, 2);
        // Paper FDs: C → A, B; A → E; D → A.
        for fd in Fd::expand(&[2], &[0, 1]) {
            assert!(fd.holds_on(&g.table), "{fd:?}");
        }
        assert!(Fd::new(vec![0], 4).holds_on(&g.table), "A → E");
        assert!(Fd::new(vec![3], 0).holds_on(&g.table), "D → A");
        // The code column is semantically untyped.
        assert_eq!(g.ground_truth.column_types[3], None);
    }

    #[test]
    fn university_table_fds() {
        let w = world();
        let g = university_table(&w, 150, 3);
        for fd in Fd::expand(&[0], &[1, 2]) {
            assert!(fd.holds_on(&g.table), "{fd:?}");
        }
        assert!(Fd::new(vec![2], 1).holds_on(&g.table), "C → B");
    }

    #[test]
    fn wiki_tables_have_paper_shape() {
        let w = world();
        let tables = wiki_tables(&w, 28, 4);
        assert_eq!(tables.len(), 28);
        let avg: f64 = tables
            .iter()
            .map(|t| t.table.num_rows() as f64)
            .sum::<f64>()
            / tables.len() as f64;
        assert!(
            (10.0..=40.0).contains(&avg),
            "average rows {avg} out of range"
        );
        for t in &tables {
            assert!(t.ground_truth.num_typed_columns() >= 1);
        }
    }

    #[test]
    fn web_tables_are_larger_and_noisier() {
        let w = World::generate(WorldConfig::default());
        let wiki = wiki_tables(&w, 28, 4);
        let web = web_tables(&w, 30, 5);
        assert_eq!(web.len(), 30);
        let avg_wiki: f64 =
            wiki.iter().map(|t| t.table.num_rows() as f64).sum::<f64>() / wiki.len() as f64;
        let avg_web: f64 =
            web.iter().map(|t| t.table.num_rows() as f64).sum::<f64>() / web.len() as f64;
        assert!(avg_web > avg_wiki);
        let has_null = web
            .iter()
            .any(|t| (0..t.table.num_columns()).any(|c| t.table.null_fraction(c) > 0.0));
        assert!(has_null, "web tables must contain some nulls");
    }

    #[test]
    fn ground_truth_rendering_per_flavor() {
        let w = world();
        let g = person_table(&w, 10, 1);
        let yago = g.ground_truth.types_for(KbFlavor::YagoLike);
        let dbp = g.ground_truth.types_for(KbFlavor::DbpediaLike);
        assert_eq!(yago[1], Some("country"));
        assert_eq!(dbp[1], Some("Country"));

        // Yago-like models no soccer relations → PlaysFor filtered out.
        let gs = soccer_table(&w, 10, 1);
        let yago_cfg = KbGenConfig::for_flavor(KbFlavor::YagoLike);
        let dbp_cfg = KbGenConfig::for_flavor(KbFlavor::DbpediaLike);
        let yago_rels = gs.ground_truth.rels_for(&yago_cfg);
        let dbp_rels = gs.ground_truth.rels_for(&dbp_cfg);
        assert!(yago_rels.iter().all(|(_, _, r)| *r != "playsFor"));
        assert!(dbp_rels.iter().any(|(_, _, r)| *r == "team"));
        assert!(dbp_rels.len() > yago_rels.len());
    }

    #[test]
    fn determinism() {
        let w = world();
        let a = wiki_tables(&w, 5, 9);
        let b = wiki_tables(&w, 5, 9);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.table, y.table);
        }
    }
}
