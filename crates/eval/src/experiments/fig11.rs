//! **Figure 11** (appendix B) — top-k F-measure sweeps on WikiTables and
//! RelationalTables, complementing Figure 6's WebTables.

use crate::corpus::Corpus;
use crate::experiments::fig6::KS;
use crate::experiments::{fig6::render_series, flavors, topk_f_series};

/// The structured result: per dataset, per flavor, per k, per algorithm.
#[derive(Debug, Clone, Default)]
pub struct Fig11 {
    /// `(dataset name, series[flavor][k][algo])`.
    pub datasets: Vec<(&'static str, Vec<Vec<[f64; 4]>>)>,
}

/// Run the experiment.
pub fn run(corpus: &Corpus) -> Fig11 {
    let wiki: Vec<_> = corpus.wiki.iter().collect();
    let relational: Vec<_> = vec![&corpus.person, &corpus.soccer, &corpus.university];
    let mut out = Fig11::default();
    for (name, tables) in [("WikiTables", wiki), ("RelationalTables", relational)] {
        let series = flavors()
            .into_iter()
            .map(|flavor| topk_f_series(corpus, &tables, flavor, &KS))
            .collect();
        out.datasets.push((name, series));
    }
    out
}

impl Fig11 {
    /// Render the Markdown section.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, series) in &self.datasets {
            out.push_str(&render_series(
                &format!("Figure 11 — top-k F-measure ({name})"),
                series,
            ));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn covers_both_datasets() {
        let corpus = Corpus::build(&CorpusConfig::small());
        let f11 = run(&corpus);
        assert_eq!(f11.datasets.len(), 2);
        let md = f11.render();
        assert!(md.contains("WikiTables"));
        assert!(md.contains("RelationalTables"));
        // Monotonicity of top-k F for every dataset/flavor/algorithm.
        for (_, series) in &f11.datasets {
            for flavor_series in series {
                for w in flavor_series.windows(2) {
                    for (prev, next) in w[0].iter().zip(w[1].iter()) {
                        assert!(next >= &(prev - 1e-12));
                    }
                }
            }
        }
    }
}
