//! The pattern scoring model (§4.2).
//!
//! ```text
//! score(φ) = Σ_i  tf-idf(T_i, A_i)
//!          + Σ_ij tf-idf(P_ij, A_i, A_j)
//!          + Σ_ij ( subSC(T_i, P_ij) + objSC(T_j, P_ij) )
//! ```
//!
//! The naive model (`naive_score`) drops the coherence terms; the paper's
//! Example 5 shows why that misranks `economy`/`city` over
//! `country`/`capital`. (The paper's Example 7 writes a `5 ×` factor in
//! front of the coherence sum, but its own arithmetic — 1.0 + 0.9 + 0.9 +
//! 0.86 + 0.83 = 4.49 — uses plain addition; we default to weight 1.0 and
//! expose it as a knob.)

use katara_kb::Kb;

use crate::candidates::CandidateSet;
use crate::pattern::TablePattern;

/// Scoring knobs.
#[derive(Debug, Clone)]
pub struct ScoringConfig {
    /// Multiplier on the coherence terms (paper: 1.0 effective).
    pub coherence_weight: f64,
}

impl Default for ScoringConfig {
    fn default() -> Self {
        ScoringConfig {
            coherence_weight: 1.0,
        }
    }
}

/// Score a pattern under the full model. Types/relationships that do not
/// appear in the candidate lists contribute zero tf-idf (they would never
/// be produced by discovery, but baseline conversions can hit this).
pub fn score_pattern(
    kb: &Kb,
    cands: &CandidateSet,
    pattern: &TablePattern,
    config: &ScoringConfig,
) -> f64 {
    let mut s = 0.0;
    for node in pattern.nodes() {
        if let Some(class) = node.class {
            s += cands
                .col_types
                .get(node.column)
                .and_then(|list| list.iter().find(|c| c.class == class))
                .map(|c| c.tfidf)
                .unwrap_or(0.0);
        }
    }
    for edge in pattern.edges() {
        s += cands
            .rels(edge.subject, edge.object)
            .iter()
            .find(|c| c.property == edge.property)
            .map(|c| c.tfidf)
            .unwrap_or(0.0);
        let sub_t = pattern.node_for_column(edge.subject).and_then(|n| n.class);
        let obj_t = pattern.node_for_column(edge.object).and_then(|n| n.class);
        let mut coh = 0.0;
        if let Some(t) = sub_t {
            coh += kb.sub_coherence(t, edge.property);
        }
        if let Some(t) = obj_t {
            coh += kb.obj_coherence(t, edge.property);
        }
        s += config.coherence_weight * coh;
    }
    s
}

/// The naive additive score without coherence (the strawman of §4.2).
pub fn naive_score(cands: &CandidateSet, pattern: &TablePattern) -> f64 {
    score_pattern_parts(cands, pattern)
}

fn score_pattern_parts(cands: &CandidateSet, pattern: &TablePattern) -> f64 {
    let mut s = 0.0;
    for node in pattern.nodes() {
        if let Some(class) = node.class {
            s += cands
                .col_types
                .get(node.column)
                .and_then(|list| list.iter().find(|c| c.class == class))
                .map(|c| c.tfidf)
                .unwrap_or(0.0);
        }
    }
    for edge in pattern.edges() {
        s += cands
            .rels(edge.subject, edge.object)
            .iter()
            .find(|c| c.property == edge.property)
            .map(|c| c.tfidf)
            .unwrap_or(0.0);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{discover_candidates, CandidateConfig};
    use crate::pattern::{PatternEdge, PatternNode, TablePattern};
    use katara_kb::KbBuilder;
    use katara_table::Table;

    /// Example 5's shape: `economy` is a supertype holding both countries
    /// and other things; only countries head capitals.
    fn example5() -> (Kb, Table) {
        let mut b = KbBuilder::new();
        let economy = b.class("economy");
        let country = b.class("country");
        let city = b.class("city");
        let capital = b.class("capital");
        b.subclass(country, economy).unwrap();
        b.subclass(capital, city).unwrap();
        let has_capital = b.property("hasCapital");

        for (c, cap) in [("Italy", "Rome"), ("Spain", "Madrid"), ("France", "Paris")] {
            let rc = b.entity(c, &[country]);
            let rcap = b.entity(cap, &[capital]);
            b.fact(rc, has_capital, rcap);
        }
        for i in 0..10 {
            b.entity(&format!("Corp{i}"), &[economy]);
            b.entity(&format!("Town{i}"), &[city]);
        }
        let kb = b.finalize();

        let mut t = Table::with_opaque_columns("t", 2);
        t.push_text_row(&["Italy", "Rome"]);
        t.push_text_row(&["Spain", "Madrid"]);
        (kb, t)
    }

    use katara_kb::Kb;

    fn pattern_with(kb: &Kb, sub_type: &str, obj_type: &str) -> TablePattern {
        TablePattern::new(
            vec![
                PatternNode {
                    column: 0,
                    class: Some(kb.class_by_name(sub_type).unwrap()),
                },
                PatternNode {
                    column: 1,
                    class: Some(kb.class_by_name(obj_type).unwrap()),
                },
            ],
            vec![PatternEdge {
                subject: 0,
                object: 1,
                property: kb.property_by_name("hasCapital").unwrap(),
            }],
            0.0,
        )
        .unwrap()
    }

    #[test]
    fn coherence_prefers_country_capital() {
        let (kb, t) = example5();
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        let cfg = ScoringConfig::default();
        let good = score_pattern(&kb, &cands, &pattern_with(&kb, "country", "capital"), &cfg);
        let bad = score_pattern(&kb, &cands, &pattern_with(&kb, "economy", "city"), &cfg);
        assert!(
            good > bad,
            "country/capital ({good}) must beat economy/city ({bad})"
        );
    }

    #[test]
    fn coherence_weight_zero_equals_naive() {
        let (kb, t) = example5();
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        let p = pattern_with(&kb, "country", "capital");
        let cfg = ScoringConfig {
            coherence_weight: 0.0,
        };
        assert!((score_pattern(&kb, &cands, &p, &cfg) - naive_score(&cands, &p)).abs() < 1e-12);
    }

    #[test]
    fn unknown_candidates_contribute_zero_tfidf() {
        let (kb, t) = example5();
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        // A pattern typed with a class no cell carries.
        let mut b2 = KbBuilder::new();
        b2.class("ghost");
        let p = TablePattern::new(
            vec![PatternNode {
                column: 0,
                class: Some(katara_kb::ClassId(3)), // capital: wrong for col 0
            }],
            vec![],
            0.0,
        )
        .unwrap();
        let s = score_pattern(&kb, &cands, &p, &ScoringConfig::default());
        assert_eq!(s, 0.0);
    }

    #[test]
    fn score_is_monotone_in_parts() {
        let (kb, t) = example5();
        let cands = discover_candidates(&t, &kb, &CandidateConfig::default());
        let full = pattern_with(&kb, "country", "capital");
        let nodes_only = TablePattern::new(full.nodes().to_vec(), vec![], 0.0).unwrap();
        let cfg = ScoringConfig::default();
        assert!(
            score_pattern(&kb, &cands, &full, &cfg) > score_pattern(&kb, &cands, &nodes_only, &cfg)
        );
    }
}
