//! First-occurrence deduplication without quadratic membership scans.
//!
//! The query surface (`Q_types`, `Q_rels`, instance-graph expansion)
//! historically deduplicated with `if !out.contains(&x) { out.push(x) }`
//! — an O(n²) scan over the output that dominates on hub entities with
//! hundreds of relations. [`OrderedDedup`] keeps a hashed membership set
//! on the side so every membership test is O(1) amortized — the earlier
//! sorted-vector variant still paid an O(n) memmove per novel value in
//! its `insert`, which turned unsorted-run fallbacks quadratic again —
//! while the *output* still receives values in exactly their
//! first-occurrence order, bit-identical to the old scan.

use std::collections::HashSet;
use std::hash::Hash;

/// A first-occurrence dedup filter over hashable `Copy` values.
pub(crate) struct OrderedDedup<T> {
    seen: HashSet<T>,
}

impl<T: Eq + Hash + Copy> OrderedDedup<T> {
    /// An empty filter.
    pub(crate) fn new() -> Self {
        OrderedDedup {
            seen: HashSet::new(),
        }
    }

    /// Append `x` to `out` iff it has not been seen yet.
    pub(crate) fn push(&mut self, x: T, out: &mut Vec<T>) {
        if self.seen.insert(x) {
            out.push(x);
        }
    }

    /// Fold a run of values in: novel values are appended to `out` in run
    /// order (their first-occurrence order). Every value costs one hash
    /// probe, sorted or not — enrichment-extended closures no longer hit a
    /// slower fallback path.
    pub(crate) fn extend(&mut self, run: impl IntoIterator<Item = T>, out: &mut Vec<T>) {
        for x in run {
            self.push(x, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference implementation every path must match: the historical
    /// `Vec::contains` scan.
    fn naive(runs: &[&[u32]]) -> Vec<u32> {
        let mut out = Vec::new();
        for run in runs {
            for &x in *run {
                if !out.contains(&x) {
                    out.push(x);
                }
            }
        }
        out
    }

    fn merged(runs: &[&[u32]]) -> Vec<u32> {
        let mut out = Vec::new();
        let mut seen = OrderedDedup::new();
        for run in runs {
            seen.extend(run.iter().copied(), &mut out);
        }
        out
    }

    #[test]
    fn sorted_runs_match_naive() {
        let runs: &[&[u32]] = &[&[1, 3, 5], &[2, 3, 4], &[0, 5, 9], &[]];
        assert_eq!(merged(runs), naive(runs));
    }

    #[test]
    fn unsorted_runs_still_match() {
        let runs: &[&[u32]] = &[&[5, 1, 3], &[3, 2, 2, 8], &[9, 0]];
        assert_eq!(merged(runs), naive(runs));
    }

    #[test]
    fn partially_sorted_run_with_midway_descent() {
        // Ascending prefix, then a descent mid-run: first-occurrence order
        // must hold across the whole run, with no loss or double emission.
        let runs: &[&[u32]] = &[&[1, 4, 7, 3, 7, 2], &[4, 5, 1]];
        assert_eq!(merged(runs), naive(runs));
    }

    #[test]
    fn duplicate_heavy_runs() {
        let runs: &[&[u32]] = &[&[2, 2, 2], &[2, 2], &[1, 2, 3, 3]];
        assert_eq!(merged(runs), naive(runs));
    }

    #[test]
    fn push_interleaves_with_extend() {
        let mut out = Vec::new();
        let mut seen = OrderedDedup::new();
        seen.push(7, &mut out);
        seen.extend([1u32, 7, 9], &mut out);
        seen.push(1, &mut out);
        seen.extend([0, 9, 10], &mut out);
        assert_eq!(out, vec![7, 1, 9, 0, 10]);
    }

    #[test]
    fn adversarial_descending_runs_match_naive() {
        // The old sorted-vector fallback went quadratic exactly here:
        // strictly descending input forces an insert at position 0 every
        // time. Correctness (not speed) is what the test pins.
        let run: Vec<u32> = (0..200).rev().collect();
        let runs: &[&[u32]] = &[&run, &run];
        assert_eq!(merged(runs), naive(runs));
    }
}
