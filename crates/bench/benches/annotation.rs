//! Benches for **Table 5**: data annotation throughput by KB and crowd,
//! with and without enrichment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use katara_bench::bench_corpus;
use katara_core::annotation::{annotate, AnnotationConfig};
use katara_core::candidates::{discover_candidates, CandidateConfig};
use katara_core::rank_join::{discover_topk, DiscoveryConfig};
use katara_crowd::{Crowd, CrowdConfig};
use katara_datagen::{KbFlavor, TableOracle};

/// Table 5: annotate the Person table (redundant) and a web table
/// (small) under both KBs.
fn bench_annotation(c: &mut Criterion) {
    let corpus = bench_corpus();
    let mut group = c.benchmark_group("table5_annotation");
    group.sample_size(10);
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        for (name, g) in [("person", &corpus.person), ("web", &corpus.web[0])] {
            let kb0 = corpus.kb(flavor);
            let cands = discover_candidates(&g.table, &kb0, &CandidateConfig::default());
            let patterns = discover_topk(&g.table, &kb0, &cands, 1, &DiscoveryConfig::default());
            let Some(pattern) = patterns.into_iter().next() else {
                continue;
            };
            group.bench_function(BenchmarkId::new(name, flavor.name()), |b| {
                b.iter(|| {
                    // Fresh KB per iteration: enrichment mutates it.
                    let mut kb = corpus.kb(flavor);
                    let oracle =
                        TableOracle::new(corpus.facts.clone(), g.ground_truth.clone(), flavor);
                    let mut crowd = Crowd::new(
                        CrowdConfig {
                            worker_accuracy: 0.97,
                            ..CrowdConfig::default()
                        },
                        oracle,
                    )
                    .expect("bench crowd config is valid");
                    annotate(
                        black_box(&g.table),
                        &pattern,
                        &mut kb,
                        &mut crowd,
                        &AnnotationConfig::default(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_annotation);
criterion_main!(benches);
