//! Integration tests for pattern discovery across the generated corpus:
//! algorithm orderings the paper's Table 2 relies on, and exactness of
//! the rank-join against exhaustive enumeration on real candidate sets.

use katara::baselines::{maxlike_topk, support_topk};
use katara::core::prelude::*;
use katara::core::rank_join::discover_topk_with_stats;
use katara::datagen::{KbFlavor, KbGenConfig};
use katara::eval::corpus::{Corpus, CorpusConfig};
use katara::eval::metrics::pattern_precision_recall;

fn corpus() -> Corpus {
    Corpus::build(&CorpusConfig::small())
}

#[test]
fn rank_join_equals_exhaustive_on_generated_tables() {
    let corpus = corpus();
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let kb = corpus.kb(flavor);
        for g in corpus.wiki.iter().take(4) {
            let cands = discover_candidates(&g.table, &kb, &CandidateConfig::default());
            let cfg = DiscoveryConfig::default();
            for k in [1, 3, 5] {
                let fast = discover_topk(&g.table, &kb, &cands, k, &cfg);
                let (slow, _) = discover_exhaustive(&g.table, &kb, &cands, k, &cfg);
                assert_eq!(fast.len(), slow.len(), "{}/{flavor:?}", g.table.name());
                for (a, b) in fast.iter().zip(slow.iter()) {
                    assert!(
                        (a.score() - b.score()).abs() < 1e-9,
                        "{}: {} != {}",
                        g.table.name(),
                        a.score(),
                        b.score()
                    );
                }
            }
        }
    }
}

#[test]
fn rank_join_prunes_against_exhaustive() {
    let corpus = corpus();
    let kb = corpus.kb(KbFlavor::YagoLike);
    let mut total_fast = 0usize;
    let mut total_slow = 0usize;
    for g in &corpus.wiki {
        let cands = discover_candidates(&g.table, &kb, &CandidateConfig::default());
        let cfg = DiscoveryConfig::default();
        let (_, fast) = discover_topk_with_stats(&g.table, &kb, &cands, 3, &cfg);
        let (_, slow) = discover_exhaustive(&g.table, &kb, &cands, 3, &cfg);
        total_fast += fast.patterns_scored;
        total_slow += slow.patterns_scored;
    }
    assert!(
        total_fast < total_slow,
        "rank-join must score fewer patterns overall: {total_fast} vs {total_slow}"
    );
}

#[test]
fn rankjoin_never_loses_to_support_on_f() {
    let corpus = corpus();
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let kb = corpus.kb(flavor);
        let kb_cfg = KbGenConfig::for_flavor(flavor);
        let mut rj_sum = 0.0;
        let mut sup_sum = 0.0;
        for g in corpus.wiki.iter().chain(corpus.web.iter()) {
            let cands = discover_candidates(&g.table, &kb, &CandidateConfig::default());
            let gt_t = g.ground_truth.types_for(flavor);
            let gt_r = g.ground_truth.rels_for(&kb_cfg);
            let f = |ps: Vec<katara::core::pattern::TablePattern>| {
                ps.first()
                    .map(|p| pattern_precision_recall(&kb, p, &gt_t, &gt_r).f_measure())
                    .unwrap_or(0.0)
            };
            rj_sum += f(discover_topk(
                &g.table,
                &kb,
                &cands,
                1,
                &DiscoveryConfig::default(),
            ));
            sup_sum += f(support_topk(&g.table, &kb, &cands, 1));
        }
        assert!(
            rj_sum >= sup_sum,
            "{flavor:?}: RankJoin sum {rj_sum:.2} < Support {sup_sum:.2}"
        );
    }
}

#[test]
fn maxlike_beats_support_on_type_specificity() {
    // On the Person table, Support's covering-supertype drift must cost
    // it against MaxLike's rarity preference.
    let corpus = corpus();
    let kb = corpus.kb(KbFlavor::YagoLike);
    let kb_cfg = KbGenConfig::for_flavor(KbFlavor::YagoLike);
    let g = &corpus.person;
    let cands = discover_candidates(&g.table, &kb, &CandidateConfig::default());
    let gt_t = g.ground_truth.types_for(KbFlavor::YagoLike);
    let gt_r = g.ground_truth.rels_for(&kb_cfg);
    let ml = maxlike_topk(&g.table, &kb, &cands, 1);
    let sup = support_topk(&g.table, &kb, &cands, 1);
    let ml_f = pattern_precision_recall(&kb, &ml[0], &gt_t, &gt_r).f_measure();
    let sup_f = pattern_precision_recall(&kb, &sup[0], &gt_t, &gt_r).f_measure();
    assert!(
        ml_f >= sup_f,
        "MaxLike {ml_f:.2} must not lose to Support {sup_f:.2}"
    );
}

#[test]
fn candidate_generation_is_stable_under_sampling() {
    // A 1000-row cap and a 300-row cap over the redundant Person table
    // must agree on the top type per column.
    let corpus = corpus();
    let kb = corpus.kb(KbFlavor::DbpediaLike);
    let g = &corpus.person;
    let full = discover_candidates(
        &g.table,
        &kb,
        &CandidateConfig {
            max_rows: 1000,
            ..CandidateConfig::default()
        },
    );
    let sampled = discover_candidates(
        &g.table,
        &kb,
        &CandidateConfig {
            max_rows: 150,
            ..CandidateConfig::default()
        },
    );
    for c in 0..g.table.num_columns() {
        let a = full.col_types[c].first().map(|t| t.class);
        let b = sampled.col_types[c].first().map(|t| t.class);
        assert_eq!(a, b, "column {c} top type unstable under sampling");
    }
}
