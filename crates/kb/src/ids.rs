//! Interned identifier newtypes.
//!
//! Everything hot in the KB works on dense `u32` ids rather than strings:
//! entities ([`ResourceId`]), classes ([`ClassId`]), properties
//! ([`PropertyId`]) and literal strings ([`LiteralId`]). In RDF terms
//! classes and properties are themselves resources; we keep them in separate
//! id spaces because KATARA never mixes them, and separate spaces turn a
//! whole family of mix-up bugs into type errors.

use crate::error::KbError;

/// Identifier of an entity (an RDF *resource* such as `Italy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub u32);

/// Identifier of a class (an RDFS type such as `country`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Identifier of a property (a binary predicate such as `hasCapital`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropertyId(pub u32);

/// Identifier of an interned literal string (such as `"1.78"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LiteralId(pub u32);

macro_rules! impl_id {
    ($t:ty, $kind:literal) => {
        impl $t {
            /// The id-space name used in [`KbError::IdSpaceExhausted`].
            pub const KIND: &'static str = $kind;

            /// The dense index backing this id, usable for direct `Vec`
            /// indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a dense index.
            ///
            /// # Panics
            /// Panics if the index does not fit in `u32`. Ingestion
            /// boundaries guard with [`Self::try_from_index`] (or a length
            /// check) before interning, so internal callers only see
            /// indexes the store actually allocated.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                Self::try_from_index(i).expect("id space exhausted")
            }

            /// Fallible variant of [`Self::from_index`]: a typed
            /// [`KbError::IdSpaceExhausted`] instead of a panic when the
            /// index exceeds the dense `u32` id space. This is the form
            /// ingestion boundaries use on adversarial input.
            #[inline]
            pub fn try_from_index(i: usize) -> Result<Self, KbError> {
                match u32::try_from(i) {
                    Ok(raw) => Ok(Self(raw)),
                    Err(_) => Err(KbError::IdSpaceExhausted {
                        kind: Self::KIND,
                        index: i,
                    }),
                }
            }
        }

        impl std::fmt::Display for $t {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

impl_id!(ResourceId, "resource");
impl_id!(ClassId, "class");
impl_id!(PropertyId, "property");
impl_id!(LiteralId, "literal");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 17, 65_535, 1 << 20] {
            assert_eq!(ResourceId::from_index(i).index(), i);
            assert_eq!(ClassId::from_index(i).index(), i);
            assert_eq!(PropertyId::from_index(i).index(), i);
            assert_eq!(LiteralId::from_index(i).index(), i);
        }
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ResourceId(3) < ResourceId(4));
        assert!(ClassId(0) < ClassId(1));
    }

    #[test]
    fn display_prints_raw_index() {
        assert_eq!(PropertyId(42).to_string(), "42");
    }

    #[test]
    fn try_from_index_surfaces_typed_exhaustion() {
        assert_eq!(
            ResourceId::try_from_index(u32::MAX as usize).unwrap(),
            ResourceId(u32::MAX)
        );
        let oversized = u32::MAX as usize + 1;
        match LiteralId::try_from_index(oversized) {
            Err(KbError::IdSpaceExhausted { kind, index }) => {
                assert_eq!(kind, "literal");
                assert_eq!(index, oversized);
            }
            other => panic!("expected IdSpaceExhausted, got {other:?}"),
        }
        assert!(ClassId::try_from_index(1usize << 40).is_err());
        assert!(PropertyId::try_from_index(0).is_ok());
    }
}
