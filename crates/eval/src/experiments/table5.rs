//! **Table 5** — data-annotation breakdown: the fraction of type and
//! relationship instances validated by the KB, validated by the crowd, or
//! flagged erroneous, per dataset family and KB. Enrichment is on, so
//! redundant datasets (RelationalTables) shift mass from *crowd* to *KB*
//! as crowd-confirmed facts start answering later tuples — the effect the
//! paper calls out.

use katara_core::annotation::{annotate, AnnotationConfig, Category};
use katara_core::validation::{validate_patterns, SchedulingStrategy, ValidationConfig};
use katara_datagen::KbFlavor;

use crate::corpus::Corpus;
use crate::experiments::{candidates_for, crowd_for, flavors, Algo};
use crate::report::{fmt2, MdTable};

/// One (dataset, flavor) cell: fractions `[KB, crowd, error]`.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Dataset family.
    pub dataset: &'static str,
    /// KB flavor.
    pub flavor: KbFlavor,
    /// Type-instance fractions.
    pub types: [f64; 3],
    /// Relationship-instance fractions.
    pub rels: [f64; 3],
}

/// The structured result.
#[derive(Debug, Clone, Default)]
pub struct Table5 {
    /// All cells.
    pub cells: Vec<Cell>,
}

/// Run the experiment on the clean corpus.
pub fn run(corpus: &Corpus) -> Table5 {
    let mut out = Table5::default();
    for flavor in flavors() {
        for (name, tables) in corpus.families() {
            // One evolving KB per family: enrichment accumulates within
            // the family, as when cleaning a dataset end to end.
            let mut kb = corpus.kb(flavor);
            let mut type_counts = [0usize; 3];
            let mut rel_counts = [0usize; 3];
            for (ti, g) in tables.iter().enumerate() {
                let cands = candidates_for(&g.table, &kb);
                let patterns = Algo::RankJoin.topk(&g.table, &kb, &cands, 5);
                if patterns.is_empty() {
                    continue;
                }
                let mut crowd = crowd_for(corpus, g, flavor, 0.97, ti as u64);
                let outcome = validate_patterns(
                    &g.table,
                    &kb,
                    patterns,
                    &mut crowd,
                    &ValidationConfig::default(),
                    SchedulingStrategy::Muvf,
                );
                let result = annotate(
                    &g.table,
                    &outcome.pattern,
                    &mut kb,
                    &mut crowd,
                    &AnnotationConfig::default(),
                );
                for t in &result.tuples {
                    for c in &t.node_categories {
                        if let Some(s) = slot(*c) {
                            type_counts[s] += 1;
                        }
                    }
                    for c in &t.edge_categories {
                        if let Some(s) = slot(*c) {
                            rel_counts[s] += 1;
                        }
                    }
                }
            }
            out.cells.push(Cell {
                dataset: name,
                flavor,
                types: to_fractions(type_counts),
                rels: to_fractions(rel_counts),
            });
        }
    }
    out
}

/// Table 5 reports the breakdown of *settled* instances; unresolved
/// ones (possible only under a faulty crowd) are excluded.
fn slot(c: Category) -> Option<usize> {
    match c {
        Category::Kb => Some(0),
        Category::Crowd => Some(1),
        Category::Error => Some(2),
        _ => None,
    }
}

fn to_fractions(counts: [usize; 3]) -> [f64; 3] {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return [0.0; 3];
    }
    [
        counts[0] as f64 / total as f64,
        counts[1] as f64 / total as f64,
        counts[2] as f64 / total as f64,
    ]
}

impl Table5 {
    /// Lookup one cell.
    pub fn cell(&self, dataset: &str, flavor: KbFlavor) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.dataset == dataset && c.flavor == flavor)
    }

    /// Render the Markdown section.
    pub fn render(&self) -> String {
        let mut out = String::from("## Table 5 — data annotation by KBs and crowd\n\n");
        for flavor in flavors() {
            let mut t = MdTable::new(&[
                "dataset",
                "type KB",
                "type crowd",
                "type error",
                "rel KB",
                "rel crowd",
                "rel error",
            ]);
            for c in self.cells.iter().filter(|c| c.flavor == flavor) {
                t.row(vec![
                    c.dataset.to_string(),
                    fmt2(c.types[0]),
                    fmt2(c.types[1]),
                    fmt2(c.types[2]),
                    fmt2(c.rels[0]),
                    fmt2(c.rels[1]),
                    fmt2(c.rels[2]),
                ]);
            }
            out.push_str(&format!("### {}\n\n{}\n", flavor.name(), t.render()));
        }
        out.push_str(
            "Paper shape: errors near zero on the clean corpus; the \
             redundant RelationalTables have the highest KB-validated \
             fraction (enrichment promotes repeated values from crowd to \
             KB).\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;

    #[test]
    fn fractions_sum_to_one_and_relational_leans_kb() {
        let corpus = Corpus::build(&CorpusConfig::small());
        let t5 = run(&corpus);
        for c in &t5.cells {
            let ts: f64 = c.types.iter().sum();
            let rs: f64 = c.rels.iter().sum();
            assert!((ts - 1.0).abs() < 1e-9 || ts == 0.0, "{c:?}");
            assert!((rs - 1.0).abs() < 1e-9 || rs == 0.0, "{c:?}");
            // Clean corpus: errors stay small.
            assert!(c.types[2] < 0.2, "{c:?}");
        }
        // The redundancy effect: RelationalTables at least matches
        // WikiTables on KB-validated fraction for types.
        for flavor in flavors() {
            let rel = t5.cell("RelationalTables", flavor).unwrap();
            assert!(
                rel.types[0] > 0.5,
                "{flavor:?}: RelationalTables KB fraction {:.2} too low",
                rel.types[0]
            );
        }
        assert!(t5.render().contains("Table 5"));
    }
}
