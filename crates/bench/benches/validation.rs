//! Benches for **Table 4 / Figure 7**: crowd pattern validation with the
//! MUVF scheduler vs the AVI baseline, and the questions-per-variable
//! sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use katara_bench::{bench_corpus, discovery_fixture};
use katara_core::rank_join::{discover_topk, DiscoveryConfig};
use katara_core::validation::{validate_patterns, SchedulingStrategy, ValidationConfig};
use katara_crowd::{Crowd, CrowdConfig};
use katara_datagen::{KbFlavor, TableOracle};

/// Table 4: scheduling strategies.
fn bench_scheduling(c: &mut Criterion) {
    let corpus = bench_corpus();
    let f = discovery_fixture(&corpus, KbFlavor::YagoLike);
    let patterns = discover_topk(
        &f.table.table,
        &f.kb,
        &f.cands,
        5,
        &DiscoveryConfig::default(),
    );
    let mut group = c.benchmark_group("table4_scheduling");
    group.sample_size(10);
    for (name, strategy) in [
        ("muvf", SchedulingStrategy::Muvf),
        ("avi", SchedulingStrategy::Avi),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let oracle = TableOracle::new(
                    corpus.facts.clone(),
                    f.table.ground_truth.clone(),
                    KbFlavor::YagoLike,
                );
                let mut crowd = Crowd::new(
                    CrowdConfig {
                        worker_accuracy: 0.97,
                        ..CrowdConfig::default()
                    },
                    oracle,
                )
                .expect("bench crowd config is valid");
                validate_patterns(
                    &f.table.table,
                    &f.kb,
                    black_box(patterns.clone()),
                    &mut crowd,
                    &ValidationConfig::default(),
                    strategy,
                )
            })
        });
    }
    group.finish();
}

/// Figure 7: cost scaling with questions per variable.
fn bench_question_sweep(c: &mut Criterion) {
    let corpus = bench_corpus();
    let f = discovery_fixture(&corpus, KbFlavor::DbpediaLike);
    let patterns = discover_topk(
        &f.table.table,
        &f.kb,
        &f.cands,
        5,
        &DiscoveryConfig::default(),
    );
    let mut group = c.benchmark_group("fig7_questions_per_variable");
    group.sample_size(10);
    for q in [1usize, 3, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                let oracle = TableOracle::new(
                    corpus.facts.clone(),
                    f.table.ground_truth.clone(),
                    KbFlavor::DbpediaLike,
                );
                let mut crowd = Crowd::new(
                    CrowdConfig {
                        worker_accuracy: 0.75,
                        ..CrowdConfig::default()
                    },
                    oracle,
                )
                .expect("bench crowd config is valid");
                validate_patterns(
                    &f.table.table,
                    &f.kb,
                    black_box(patterns.clone()),
                    &mut crowd,
                    &ValidationConfig {
                        questions_per_variable: q,
                        ..ValidationConfig::default()
                    },
                    SchedulingStrategy::Muvf,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling, bench_question_sweep);
criterion_main!(benches);
