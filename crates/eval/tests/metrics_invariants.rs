//! Accounting invariants of the katara-obs observability layer over
//! full cleaning runs.
//!
//! The metrics a run exports are only useful if they can be trusted, so
//! this suite pins down the contracts the counters must satisfy:
//!
//! * every snapshot resolve tier balances — hits + misses + fallbacks
//!   equals lookups, nothing double- or under-counted;
//! * crowd spend never exceeds the budget, and the exported counter
//!   agrees with the degradation report;
//! * KB probe counters count *logical* probes, so the snapshot and
//!   direct resolve paths report identical numbers;
//! * the deterministic section of [`RunMetrics`] is byte-identical
//!   across worker-pool sizes — the CI gate's contract, asserted here
//!   at the library level.

use std::sync::Arc;

use katara_core::prelude::*;
use katara_crowd::{Answer, Budget, Crowd, CrowdConfig, Oracle, Question};
use katara_kb::{Kb, KbBuilder};
use katara_table::{Table, Value};

/// The paper's Figure 1 setting in miniature: soccer players with one
/// wrong capital, a KB missing S. Africa's capital fact.
fn setting() -> (Kb, Table) {
    let mut b = KbBuilder::new().with_name("mini-yago");
    let person = b.class("person");
    let country = b.class("country");
    let capital = b.class("capital");
    let nationality = b.property("nationality");
    let has_capital = b.property("hasCapital");
    let pairs = [
        ("Rossi", "Italy", "Rome"),
        ("Klate", "S. Africa", "Pretoria"),
        ("Pirlo", "Italy", "Rome"),
        ("Ramos", "Spain", "Madrid"),
    ];
    for (p, c, cap) in pairs {
        let rp = b.entity(p, &[person]);
        let rc = b.entity(c, &[country]);
        let rcap = b.entity(cap, &[capital]);
        b.fact(rp, nationality, rc);
        if c != "S. Africa" {
            b.fact(rc, has_capital, rcap);
        }
    }
    let kb = b.finalize();

    let mut t = Table::with_opaque_columns("soccer", 3);
    t.push_text_row(&["Rossi", "Italy", "Rome"]);
    t.push_text_row(&["Klate", "S. Africa", "Pretoria"]);
    t.push_text_row(&["Pirlo", "Italy", "Madrid"]); // the error
    t.push_text_row(&["Ramos", "Spain", "Madrid"]);
    (kb, t)
}

/// Ground-truth oracle for the setting.
fn oracle() -> impl Oracle {
    |q: &Question| match q {
        Question::ColumnType {
            column, candidates, ..
        } => {
            let want = ["person", "country", "capital"][*column];
            match candidates.iter().position(|c| c == want) {
                Some(i) => Answer::Choice(i),
                None => Answer::NoneOfTheAbove,
            }
        }
        Question::Relationship {
            columns,
            candidates,
            ..
        } => {
            let want = match columns {
                (0, 1) => "nationality",
                (1, 2) => "hasCapital",
                _ => "",
            };
            match candidates
                .iter()
                .position(|c| c.contains(want) && !want.is_empty())
            {
                Some(i) => Answer::Choice(i),
                None => Answer::NoneOfTheAbove,
            }
        }
        Question::Fact {
            subject,
            property,
            object,
        } => Answer::Bool(matches!(
            (subject.as_str(), property.as_str(), object.as_str()),
            ("S. Africa", "hasCapital", "Pretoria") | ("Klate", "nationality", "S. Africa")
        )),
    }
}

/// One instrumented end-to-end clean; returns the metrics snapshot and
/// the cleaning report.
fn instrumented_clean(
    mode: ResolveMode,
    threads: usize,
    budget: Budget,
) -> (RunMetrics, CleaningReport) {
    let (mut kb, table) = setting();
    let rec = Arc::new(RunRecorder::new());
    let pool = Threads::fixed(threads);
    let config = KataraConfig {
        resolve: mode,
        threads: pool,
        candidates: CandidateConfig {
            threads: pool,
            ..CandidateConfig::default()
        },
        recorder: rec.clone(),
        ..KataraConfig::default()
    };
    let mut crowd = Crowd::new(
        CrowdConfig {
            worker_accuracy: 1.0,
            budget,
            ..CrowdConfig::default()
        },
        oracle(),
    )
    .expect("crowd config is valid");
    let report = Katara::new(config)
        .clean(&table, &mut kb, &mut crowd)
        .expect("clean succeeds");
    let mut metrics = rec.snapshot();
    metrics.threads = threads;
    (metrics, report)
}

#[test]
fn every_resolve_tier_balances() {
    let (m, _) = instrumented_clean(ResolveMode::Snapshot, 1, Budget::unlimited());
    for tier in ["candidates", "types", "pair"] {
        let lookups = m.counter(&format!("resolve.{tier}_lookups"));
        let hits = m.counter(&format!("resolve.{tier}_hit"));
        let misses = m.counter(&format!("resolve.{tier}_miss"));
        let fallbacks = m.counter(&format!("resolve.{tier}_fallback"));
        assert!(lookups > 0, "{tier}: no lookups recorded at all");
        assert_eq!(
            hits + misses + fallbacks,
            lookups,
            "{tier}: hits {hits} + misses {misses} + fallbacks {fallbacks} != lookups {lookups}"
        );
    }
}

#[test]
fn crowd_spend_respects_the_budget_and_matches_the_report() {
    // Unlimited budget: the counter mirrors the degradation report and
    // no budget gauge is exported (there is no budget to report).
    let (m, report) = instrumented_clean(ResolveMode::Snapshot, 1, Budget::unlimited());
    let asked = m.counter("crowd.questions_asked");
    assert!(asked > 0, "the run asked no questions");
    assert_eq!(asked as usize, report.degradation.questions_asked);
    assert_eq!(m.gauge("crowd.budget_remaining"), None);
    // Phase split sums to the total spend.
    assert_eq!(
        m.counter("validation.questions") + m.counter("annotation.crowd_questions"),
        asked,
        "validation + annotation spend must equal total crowd spend"
    );

    // Capped budget: spend never exceeds it and the remaining gauge
    // balances against the asked + denied counters.
    let cap = 3u64;
    let (m, report) = instrumented_clean(ResolveMode::Snapshot, 1, Budget::questions(cap as usize));
    let asked = m.counter("crowd.questions_asked");
    assert!(
        asked <= cap,
        "asked {asked} questions with a budget of {cap}"
    );
    let remaining = m
        .gauge("crowd.budget_remaining")
        .expect("a capped run exports the remaining-budget gauge");
    assert_eq!(remaining, cap - asked);
    assert_eq!(
        Some(remaining as usize),
        report.degradation.budget_remaining
    );
    if report.degradation.budget_exhausted {
        assert_eq!(remaining, 0);
        assert!(m.counter("crowd.budget_denied") > 0);
    }
}

#[test]
fn budget_stopped_counter_agrees_with_the_report() {
    // Repair never spends budget itself, but it runs on an annotation a
    // dead budget truncated — the early-stop counter must fire exactly
    // when the report says the budget ran dry, so metrics and report
    // never tell different stories.
    let (m, report) = instrumented_clean(ResolveMode::Snapshot, 1, Budget::unlimited());
    assert!(!report.degradation.budget_exhausted);
    assert_eq!(m.counter("repair.budget_stopped"), 0);

    // Cap the budget one question below the run's real appetite so it
    // is guaranteed to die mid-run.
    let appetite = report.degradation.questions_asked;
    assert!(appetite >= 2, "setting must ask at least two questions");
    let (m, report) = instrumented_clean(ResolveMode::Snapshot, 1, Budget::questions(appetite - 1));
    assert!(
        report.degradation.budget_exhausted,
        "an under-provisioned budget must die mid-run"
    );
    assert_eq!(
        m.counter("repair.budget_stopped"),
        1,
        "the early-stop counter must fire exactly once per degraded run"
    );
}

#[test]
fn snapshot_and_direct_modes_report_identical_probe_counts() {
    let (snap, _) = instrumented_clean(ResolveMode::Snapshot, 1, Budget::unlimited());
    let (direct, _) = instrumented_clean(ResolveMode::Direct, 1, Budget::unlimited());
    // The probe counters count logical KB work, not cache traffic, so
    // the resolve mode — a pure performance knob — must not move them.
    for probe in ["discovery.type_probes", "discovery.rel_probes"] {
        assert!(snap.counter(probe) > 0, "{probe}: no probes recorded");
        assert_eq!(
            snap.counter(probe),
            direct.counter(probe),
            "{probe}: snapshot and direct modes disagree"
        );
    }
    // Same discovery work either way.
    for c in ["discovery.heap_pops", "discovery.patterns_scored"] {
        assert_eq!(snap.counter(c), direct.counter(c), "{c} differs");
    }
}

#[test]
fn delta_edit_accounting_balances() {
    // Every edit a delta run applies lands in exactly one bucket:
    // `delta.tuples_touched` (the output could have changed) or
    // `delta.noop_edits` (raw cell text unchanged, output provably
    // identical). touched + noop == edits applied, nothing double- or
    // under-counted.
    let (mut kb, table) = setting();
    let rec = Arc::new(RunRecorder::new());
    let config = KataraConfig {
        recorder: rec.clone(),
        ..KataraConfig::default()
    };
    let mut crowd = Crowd::new(
        CrowdConfig {
            worker_accuracy: 1.0,
            ..CrowdConfig::default()
        },
        oracle(),
    )
    .expect("crowd config is valid");
    let (mut session, _) = Katara::new(config)
        .delta_session(&table, &mut kb, &mut crowd)
        .expect("bootstrap clean succeeds");

    let before = rec.snapshot();
    assert_eq!(
        before.counter("delta.tuples_touched") + before.counter("delta.noop_edits"),
        0,
        "bootstrap must not count any delta edits"
    );

    // A known mix: one real fix, one byte-identical no-op rewrite, one
    // append, one delete — four edits, three touching and one noop.
    let cells = |row: &[&str]| row.iter().map(|c| Value::from_cell(c)).collect::<Vec<_>>();
    let delta = TableDelta {
        edits: vec![
            TableEdit::Upsert {
                row: 2,
                cells: cells(&["Pirlo", "Italy", "Rome"]),
            },
            TableEdit::Upsert {
                row: 0,
                cells: cells(&["Rossi", "Italy", "Rome"]),
            },
            TableEdit::Upsert {
                row: 4,
                cells: cells(&["Benzema", "France", "Paris"]),
            },
            TableEdit::Delete { row: 1 },
        ],
    };
    session
        .clean_delta(&mut kb, &mut crowd, &delta)
        .expect("delta clean succeeds");

    let m = rec.snapshot();
    let touched = m.counter("delta.tuples_touched");
    let noop = m.counter("delta.noop_edits");
    assert_eq!(
        touched + noop,
        delta.len() as u64,
        "touched {touched} + noop {noop} != {} edits applied",
        delta.len()
    );
    assert_eq!(noop, 1, "exactly one edit rewrote identical bytes");
    // The incremental run re-scores dirty candidate lists instead of
    // re-probing the KB: delta work must be visible under delta.*.
    assert!(
        m.counter("delta.patterns_rescored") > 0,
        "edits that change window cells must re-score candidate lists"
    );
}

#[test]
fn deterministic_section_is_identical_across_thread_counts() {
    let (base, _) = instrumented_clean(ResolveMode::Snapshot, 1, Budget::unlimited());
    let baseline = base.deterministic_json(0);
    for threads in [2usize, 8] {
        let (m, _) = instrumented_clean(ResolveMode::Snapshot, threads, Budget::unlimited());
        assert_eq!(
            baseline,
            m.deterministic_json(0),
            "deterministic section changed between 1 and {threads} threads"
        );
    }
}
