//! Ergonomic KB construction.
//!
//! [`KbBuilder`] accumulates schema (classes, properties, hierarchies) and
//! data (entities, facts); [`KbBuilder::finalize`] freezes everything,
//! rebuilds the hierarchy closures, derives the type closure and ENT sets,
//! and precomputes the coherence table.

use std::collections::HashMap;

use crate::coherence::CoherenceTable;
use crate::error::KbError;
use crate::ids::{ClassId, LiteralId, PropertyId, ResourceId};
use crate::ingest::{BrokenEdge, KbAudit, LabelCollision};
use crate::interner::Interner;
use crate::label_index::LabelIndex;
use crate::ontology::Hierarchy;
use crate::query::Object;
use crate::sim;
use crate::store::{ColumnarFacts, FactStore, Kb, LegacyFacts};
use crate::DEFAULT_SIM_THRESHOLD;

/// Builder for [`Kb`].
#[derive(Debug, Default)]
pub struct KbBuilder {
    name: String,
    resources: Interner,
    classes: Interner,
    props: Interner,
    literals: Interner,
    labels: Vec<String>,
    direct_types: Vec<Vec<ClassId>>,
    class_hier: Hierarchy,
    prop_hier: Hierarchy,
    facts: Vec<(ResourceId, PropertyId, Object)>,
    sim_threshold: f64,
    /// What the audited declaration methods repaired so far.
    audit: KbAudit,
}

impl KbBuilder {
    /// A fresh builder with the paper's 0.7 similarity threshold.
    pub fn new() -> Self {
        KbBuilder {
            name: "kb".to_string(),
            sim_threshold: DEFAULT_SIM_THRESHOLD,
            ..Default::default()
        }
    }

    /// Set the KB's display name.
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Override the label-similarity threshold.
    pub fn with_sim_threshold(mut self, t: f64) -> Self {
        assert!((0.0..=1.0).contains(&t), "threshold must be in [0,1]");
        self.sim_threshold = t;
        self
    }

    /// Declare (or fetch) a class by name.
    pub fn class(&mut self, name: &str) -> ClassId {
        let c = ClassId::from_index(self.classes.intern(name));
        self.class_hier.ensure_node(c.0);
        c
    }

    /// Declare (or fetch) a property by name.
    pub fn property(&mut self, name: &str) -> PropertyId {
        let p = PropertyId::from_index(self.props.intern(name));
        self.prop_hier.ensure_node(p.0);
        p
    }

    /// Declare `subclassOf(child, parent)`.
    pub fn subclass(&mut self, child: ClassId, parent: ClassId) -> Result<(), KbError> {
        self.class_hier.add_edge(child.0, parent.0, "subClassOf")
    }

    /// Declare `subpropertyOf(child, parent)`.
    pub fn subproperty(&mut self, child: PropertyId, parent: PropertyId) -> Result<(), KbError> {
        self.prop_hier.add_edge(child.0, parent.0, "subPropertyOf")
    }

    /// Declare `subclassOf(child, parent)`, repairing instead of failing:
    /// an edge that would create a cycle (or self-loop) is dropped
    /// deterministically — the hierarchy keeps every edge declared *before*
    /// it — and recorded in the audit. Returns `true` iff the edge was kept.
    pub fn subclass_audited(&mut self, child: ClassId, parent: ClassId) -> bool {
        match self.subclass(child, parent) {
            Ok(()) => true,
            Err(e) => {
                self.record_broken_edge(&e, |b, id| b.classes.resolve(id as usize).to_string());
                false
            }
        }
    }

    /// Declare `subpropertyOf(child, parent)` with the same repair
    /// semantics as [`KbBuilder::subclass_audited`].
    pub fn subproperty_audited(&mut self, child: PropertyId, parent: PropertyId) -> bool {
        match self.subproperty(child, parent) {
            Ok(()) => true,
            Err(e) => {
                self.record_broken_edge(&e, |b, id| b.props.resolve(id as usize).to_string());
                false
            }
        }
    }

    fn record_broken_edge(&mut self, e: &KbError, name: impl Fn(&Self, u32) -> String) {
        let broken = match *e {
            KbError::SelfLoop { kind, node } => BrokenEdge {
                hierarchy: kind,
                child: name(self, node),
                parent: name(self, node),
                self_loop: true,
            },
            KbError::HierarchyCycle {
                kind,
                child,
                parent,
            } => BrokenEdge {
                hierarchy: kind,
                child: name(self, child),
                parent: name(self, parent),
                self_loop: false,
            },
            // invariant: add_edge only fails with the two cycle variants.
            ref other => BrokenEdge {
                hierarchy: "unknown",
                child: other.to_string(),
                parent: String::new(),
                self_loop: false,
            },
        };
        self.audit.broken_edges.push(broken);
    }

    /// Declare (or fetch) an entity whose label equals its unique name.
    /// Re-declaring merges the type lists.
    pub fn entity(&mut self, name: &str, types: &[ClassId]) -> ResourceId {
        self.entity_labeled(name, name, types)
    }

    /// Declare an entity with an explicit label distinct from its unique
    /// name (e.g. name `"Rossi_(racer)"`, label `"Rossi"`).
    pub fn entity_labeled(&mut self, name: &str, label: &str, types: &[ClassId]) -> ResourceId {
        let before = self.resources.len();
        let r = ResourceId::from_index(self.resources.intern(name));
        if r.index() == before {
            self.labels.push(label.to_string());
            self.direct_types.push(Vec::new());
        }
        for &t in types {
            if !self.direct_types[r.index()].contains(&t) {
                self.direct_types[r.index()].push(t);
            }
        }
        r
    }

    /// Assert fact `p(s, o)` between two resources.
    pub fn fact(&mut self, s: ResourceId, p: PropertyId, o: ResourceId) {
        self.facts.push((s, p, Object::Resource(o)));
    }

    /// Assert fact `p(s, lit)` with a literal object.
    pub fn literal_fact(&mut self, s: ResourceId, p: PropertyId, lit: &str) {
        let l = LiteralId::from_index(self.literals.intern(lit));
        self.facts.push((s, p, Object::Literal(l)));
    }

    /// Number of entities declared so far.
    pub fn num_entities(&self) -> usize {
        self.labels.len()
    }

    /// Err when any dense id space is within `margin` new ids of the
    /// `u32` cap. Ingestion loops call this per statement (one triple
    /// introduces at most two ids per space), so an adversarially large
    /// dump surfaces a typed [`KbError::IdSpaceExhausted`] at the
    /// boundary instead of panicking inside the id constructors.
    pub fn check_id_headroom(&self, margin: usize) -> Result<(), KbError> {
        for (len, kind) in [
            (self.resources.len(), ResourceId::KIND),
            (self.classes.len(), ClassId::KIND),
            (self.props.len(), PropertyId::KIND),
            (self.literals.len(), LiteralId::KIND),
        ] {
            if id_headroom_exceeded(len, margin) {
                return Err(KbError::IdSpaceExhausted { kind, index: len });
            }
        }
        Ok(())
    }

    /// Freeze into a queryable [`Kb`] and report what the audit pass saw:
    /// every hierarchy edge the `*_audited` methods dropped, plus labels
    /// shared by more than one resource (collisions are legal — KATARA
    /// disambiguates by type — but a sudden spike flags a mangled dump).
    pub fn finalize_audited(mut self) -> (Kb, KbAudit) {
        // Label collisions: group resource indexes by label text.
        let mut by_label: HashMap<&str, Vec<usize>> = HashMap::new();
        for (ri, label) in self.labels.iter().enumerate() {
            by_label.entry(label).or_default().push(ri);
        }
        let mut collisions: Vec<LabelCollision> = by_label
            .into_iter()
            .filter(|(_, rs)| rs.len() > 1)
            .map(|(label, rs)| LabelCollision {
                label: label.to_string(),
                resources: rs
                    .into_iter()
                    .map(|ri| self.resources.resolve(ri).to_string())
                    .collect(),
            })
            .collect();
        collisions.sort_by(|a, b| a.label.cmp(&b.label));
        self.audit.label_collisions = collisions;
        let audit = std::mem::take(&mut self.audit);
        (self.finalize(), audit)
    }

    /// Freeze into a queryable [`Kb`].
    pub fn finalize(mut self) -> Kb {
        self.class_hier.rebuild_closure();
        self.prop_hier.rebuild_closure();

        let n = self.labels.len();
        let num_classes = self.classes.len();
        let num_props = self.props.len();

        // Type closure and ENT sets.
        let mut types_closure: Vec<Vec<ClassId>> = vec![Vec::new(); n];
        let mut class_entities: Vec<Vec<ResourceId>> = vec![Vec::new(); num_classes];
        for (ri, dts) in self.direct_types.iter().enumerate() {
            let r = ResourceId::from_index(ri);
            let closure = &mut types_closure[ri];
            for &t in dts {
                if !closure.contains(&t) {
                    closure.push(t);
                }
                for (anc, _) in self.class_hier.ancestors(t.0) {
                    let anc = ClassId(anc);
                    if !closure.contains(&anc) {
                        closure.push(anc);
                    }
                }
            }
            closure.sort_unstable();
            for &c in closure.iter() {
                class_entities[c.index()].push(r);
            }
        }

        // Label index.
        let mut label_index = LabelIndex::new();
        for (ri, label) in self.labels.iter().enumerate() {
            label_index.insert(label, ResourceId::from_index(ri));
        }

        // Fact indexes.
        let mut out_edges: Vec<Vec<(PropertyId, Object)>> = vec![Vec::new(); n];
        let mut in_edges: Vec<Vec<(PropertyId, ResourceId)>> = vec![Vec::new(); n];
        let mut rr_index: HashMap<(ResourceId, ResourceId), Vec<PropertyId>> = HashMap::new();
        let mut rl_index: HashMap<(ResourceId, LiteralId), Vec<PropertyId>> = HashMap::new();
        let mut prop_subjects: Vec<Vec<ResourceId>> = vec![Vec::new(); num_props];
        let mut prop_objects: Vec<Vec<ResourceId>> = vec![Vec::new(); num_props];
        let mut fact_count = 0usize;
        for &(s, p, o) in &self.facts {
            let (key_props, is_new) = match o {
                Object::Resource(or) => {
                    let v = rr_index.entry((s, or)).or_default();
                    let new = !v.contains(&p);
                    (v, new)
                }
                Object::Literal(l) => {
                    let v = rl_index.entry((s, l)).or_default();
                    let new = !v.contains(&p);
                    (v, new)
                }
            };
            if !is_new {
                continue; // duplicate assertion
            }
            key_props.push(p);
            out_edges[s.index()].push((p, o));
            if let Object::Resource(or) = o {
                in_edges[or.index()].push((p, s));
            }
            fact_count += 1;
            // Fold subject/object into P and all superproperties.
            let mut ps = vec![p.0];
            ps.extend(self.prop_hier.ancestors(p.0).map(|(a, _)| a));
            for pa in ps {
                let pa = pa as usize;
                prop_subjects[pa].push(s);
                if let Object::Resource(or) = o {
                    prop_objects[pa].push(or);
                }
            }
        }
        for v in prop_subjects.iter_mut().chain(prop_objects.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }

        // Literal normalization map.
        let mut literal_norm: HashMap<String, Vec<LiteralId>> = HashMap::new();
        for (li, lit) in self.literals.iter() {
            literal_norm
                .entry(sim::normalize(lit))
                .or_default()
                .push(LiteralId::from_index(li));
        }

        // Coherence table (offline, as in the paper).
        let class_sizes: Vec<usize> = class_entities.iter().map(Vec::len).collect();
        let coherence = CoherenceTable::build(
            n,
            num_props,
            &types_closure,
            &prop_subjects,
            &prop_objects,
            &class_sizes,
        );

        // Convert the build-time layout into the columnar backend: sorted
        // dictionary-encoded arenas plus the frozen cardinality stats the
        // probe planner reads.
        let legacy = LegacyFacts {
            types_closure,
            class_entities,
            out_edges,
            in_edges,
            rr_index,
            rl_index,
            prop_subjects,
            prop_objects,
            literal_norm,
        };
        let facts = FactStore::Columnar(ColumnarFacts::from_legacy(legacy, n));

        Kb {
            name: self.name,
            resources: self.resources,
            classes: self.classes,
            props: self.props,
            literals: self.literals,
            labels: self.labels,
            label_index,
            class_hier: self.class_hier,
            prop_hier: self.prop_hier,
            direct_types: self.direct_types,
            facts,
            coherence,
            sim_threshold: self.sim_threshold,
            fact_count,
            version: 0,
            capture: None,
        }
    }
}

/// Does a dense id space with `len` assigned ids lack room for `margin`
/// more below the `u32` cap?
fn id_headroom_exceeded(len: usize, margin: usize) -> bool {
    (u32::MAX as usize).saturating_sub(len) < margin
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_headroom_boundary() {
        let cap = u32::MAX as usize;
        assert!(!id_headroom_exceeded(0, 2));
        assert!(!id_headroom_exceeded(cap - 2, 2));
        assert!(id_headroom_exceeded(cap - 1, 2));
        assert!(id_headroom_exceeded(cap, 1));
        assert!(id_headroom_exceeded(cap + 7, 1));
        // A real builder is nowhere near the cap.
        let mut b = KbBuilder::new();
        b.class("c");
        assert!(b.check_id_headroom(2).is_ok());
    }

    #[test]
    fn duplicate_facts_are_deduped() {
        let mut b = KbBuilder::new();
        let c = b.class("c");
        let p = b.property("p");
        let a = b.entity("A", &[c]);
        let z = b.entity("Z", &[c]);
        b.fact(a, p, z);
        b.fact(a, p, z);
        let kb = b.finalize();
        assert_eq!(kb.num_facts(), 1);
        assert_eq!(kb.facts_of(a).len(), 1);
    }

    #[test]
    fn entity_redeclaration_merges_types() {
        let mut b = KbBuilder::new();
        let c1 = b.class("c1");
        let c2 = b.class("c2");
        let a = b.entity("A", &[c1]);
        let a2 = b.entity("A", &[c2]);
        assert_eq!(a, a2);
        let kb = b.finalize();
        assert!(kb.has_type(a, c1));
        assert!(kb.has_type(a, c2));
        assert_eq!(kb.num_entities(), 1);
    }

    #[test]
    fn labeled_entities_disambiguate() {
        let mut b = KbBuilder::new();
        let player = b.class("player");
        let racer = b.class("racer");
        let r1 = b.entity_labeled("Rossi_(player)", "Rossi", &[player]);
        let r2 = b.entity_labeled("Rossi_(racer)", "Rossi", &[racer]);
        assert_ne!(r1, r2);
        let kb = b.finalize();
        let hits = kb.resources_by_label("Rossi");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn finalize_builds_coherence_maxima() {
        let mut b = KbBuilder::new();
        let country = b.class("country");
        let capital = b.class("capital");
        let p = b.property("hasCapital");
        let italy = b.entity("Italy", &[country]);
        let rome = b.entity("Rome", &[capital]);
        b.fact(italy, p, rome);
        let kb = b.finalize();
        assert!(kb.sub_coherence(country, p) > 0.5);
        assert!(kb.obj_coherence(capital, p) > 0.5);
        assert_eq!(kb.coherence().max_sub(p), kb.sub_coherence(country, p));
    }

    #[test]
    fn threshold_validation() {
        let b = KbBuilder::new().with_sim_threshold(0.5);
        assert_eq!(b.finalize().sim_threshold(), 0.5);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let _ = KbBuilder::new().with_sim_threshold(1.5);
    }

    #[test]
    fn audited_subclass_drops_cycle_edge_and_records_it() {
        let mut b = KbBuilder::new();
        let a = b.class("a");
        let c = b.class("c");
        let d = b.class("d");
        assert!(b.subclass_audited(a, c));
        assert!(b.subclass_audited(c, d));
        // d -> a closes the cycle: dropped, not fatal.
        assert!(!b.subclass_audited(d, a));
        // Self-loop: dropped, flagged as trivial.
        assert!(!b.subclass_audited(a, a));
        let (kb, audit) = b.finalize_audited();
        assert!(kb.class_hierarchy().is_a(a.0, d.0));
        assert!(!kb.class_hierarchy().is_a(d.0, a.0));
        assert_eq!(audit.broken_edges.len(), 2);
        assert_eq!(audit.broken_edges[0].child, "d");
        assert_eq!(audit.broken_edges[0].parent, "a");
        assert!(!audit.broken_edges[0].self_loop);
        assert!(audit.broken_edges[1].self_loop);
        assert_eq!(audit.broken_edges[1].child, "a");
    }

    #[test]
    fn audited_subproperty_names_properties() {
        let mut b = KbBuilder::new();
        let p = b.property("p");
        let q = b.property("q");
        assert!(b.subproperty_audited(p, q));
        assert!(!b.subproperty_audited(q, p));
        let (_, audit) = b.finalize_audited();
        assert_eq!(audit.broken_edges.len(), 1);
        assert_eq!(audit.broken_edges[0].hierarchy, "subPropertyOf");
        assert_eq!(audit.broken_edges[0].child, "q");
    }

    #[test]
    fn finalize_audited_reports_label_collisions() {
        let mut b = KbBuilder::new();
        let c = b.class("c");
        b.entity_labeled("Rossi_(player)", "Rossi", &[c]);
        b.entity_labeled("Rossi_(racer)", "Rossi", &[c]);
        b.entity("Pirlo", &[c]);
        let (_, audit) = b.finalize_audited();
        assert_eq!(audit.label_collisions.len(), 1);
        let col = &audit.label_collisions[0];
        assert_eq!(col.label, "Rossi");
        assert_eq!(
            col.resources,
            vec!["Rossi_(player)".to_string(), "Rossi_(racer)".to_string()]
        );
        assert!(!audit.is_clean());
    }

    #[test]
    fn clean_build_audits_clean() {
        let mut b = KbBuilder::new();
        let c = b.class("c");
        b.entity("A", &[c]);
        let (_, audit) = b.finalize_audited();
        assert!(audit.is_clean());
    }

    #[test]
    fn empty_kb_finalizes() {
        let kb = KbBuilder::new().finalize();
        assert_eq!(kb.num_entities(), 0);
        assert_eq!(kb.num_facts(), 0);
        assert!(kb.candidate_resources("anything").is_empty());
    }
}
