//! Fuzz-style properties of the N-Triples ingestion boundary.
//!
//! Three guarantees from the hardening work, checked on generated input:
//!
//! 1. **No panics.** Lenient parsing of arbitrary text — random printable
//!    lines, NT-shaped token soup, truncated prefixes of a valid dump —
//!    returns `Ok` or a typed error, never panics.
//! 2. **Strict == legacy.** On clean input, `parse_with_policy` with the
//!    strict policy accepts exactly what `parse` accepts and produces a
//!    byte-identical KB serialization.
//! 3. **Accounting adds up.** Every non-blank, non-comment statement is
//!    either accepted or quarantined; never both, never dropped silently.
//!
//! The case count is elevated in CI via `KATARA_FUZZ_CASES`.

use katara_kb::ntriples;
use katara_kb::{IngestPolicy, KbBuilder};
use proptest::prelude::*;

/// Per-test case count: `KATARA_FUZZ_CASES` (CI runs an elevated count)
/// or the given local default.
fn fuzz_cases(default: u32) -> u32 {
    std::env::var("KATARA_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A valid dump to slice prefixes from: schema, labels, facts, hierarchy.
const SAMPLE: &str = r#"
<kb:country> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<kb:capital> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<kb:city> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<kb:capital> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <kb:city> .
<kb:hasCapital> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/1999/02/22-rdf-syntax-ns#Property> .
<kb:Italy> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <kb:country> .
<kb:Italy> <http://www.w3.org/2000/01/rdf-schema#label> "Italy" .
<kb:Rome> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <kb:capital> .
<kb:Rome> <http://www.w3.org/2000/01/rdf-schema#label> "Rome" .
<kb:Italy> <kb:hasCapital> <kb:Rome> .
"#;

/// A random KB built through the public builder, as in `kb_invariants`.
fn kb_strategy() -> impl Strategy<Value = katara_kb::Kb> {
    const NC: usize = 4;
    const NP: usize = 3;
    let entity = prop::collection::vec(0usize..NC, 0..3);
    let fact = (0usize..12, 0usize..NP, 0usize..12);
    let edge = (0usize..NC, 0usize..NC);
    (
        prop::collection::vec(entity, 3..12),
        prop::collection::vec(fact, 0..24),
        prop::collection::vec(edge, 0..4),
    )
        .prop_map(|(entities, facts, class_edges)| {
            let mut b = KbBuilder::new();
            let classes: Vec<_> = (0..NC).map(|i| b.class(&format!("c{i}"))).collect();
            let props: Vec<_> = (0..NP).map(|i| b.property(&format!("p{i}"))).collect();
            for (c, p) in class_edges {
                // Cycles and self-loops are rejected; keep what sticks.
                let _ = b.subclass(classes[c], classes[p]);
            }
            let resources: Vec<_> = entities
                .iter()
                .enumerate()
                .map(|(i, ts)| {
                    let types: Vec<_> = ts.iter().map(|&t| classes[t]).collect();
                    b.entity(&format!("e{i}"), &types)
                })
                .collect();
            for &(s, p, o) in &facts {
                b.fact(
                    resources[s % resources.len()],
                    props[p],
                    resources[o % resources.len()],
                );
            }
            b.finalize()
        })
}

/// Whatever lenient parsing returns, its books must balance.
fn assert_report_consistent(input: &str) {
    // A typed error (fraction cap, etc.) is an acceptable outcome for
    // garbage input; panicking is not.
    if let Ok((_, report)) = ntriples::parse_with_policy("fuzz", input, &IngestPolicy::lenient()) {
        assert_eq!(
            report.accepted + report.quarantined_count,
            report.total_statements,
            "every statement is accepted or quarantined: {report:?}"
        );
        assert!(report.quarantined.len() <= report.quarantined_count);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases(64)))]

    /// Lenient ingestion of arbitrary printable lines never panics.
    #[test]
    fn lenient_parse_of_arbitrary_lines_never_panics(
        lines in prop::collection::vec(".{0,60}", 0..16),
    ) {
        assert_report_consistent(&lines.join("\n"));
    }

    /// NT-shaped token soup — angle brackets, quotes, escapes, blank
    /// nodes, comments — exercises the tokenizer's error paths harder
    /// than uniform printable noise does.
    #[test]
    fn lenient_parse_of_nt_token_soup_never_panics(
        lines in prop::collection::vec("[<>\"\\\\@_:#a-z0-9 .^-]{0,40}", 0..16),
    ) {
        assert_report_consistent(&lines.join("\n"));
    }

    /// Truncating a valid dump at any byte yields Ok or a typed error.
    #[test]
    fn truncated_valid_input_never_panics(cut in 0usize..=SAMPLE.len()) {
        // Snap to a char boundary (SAMPLE is ASCII, but stay honest).
        let mut cut = cut;
        while !SAMPLE.is_char_boundary(cut) {
            cut -= 1;
        }
        assert_report_consistent(&SAMPLE[..cut]);
        // Strict mode on a truncated dump must also be panic-free.
        let _ = ntriples::parse("fuzz", &SAMPLE[..cut]);
    }

    /// On clean input (a serialized random KB), the strict policy is
    /// byte-for-byte the legacy `parse`, and both lenient and strict
    /// report a clean load.
    #[test]
    fn strict_policy_is_legacy_parse_on_clean_input(kb in kb_strategy()) {
        let text = ntriples::to_string(&kb);

        let legacy = ntriples::parse("rt", &text).expect("serialized KB reparses");
        let (strict, strict_report) =
            ntriples::parse_with_policy("rt", &text, &IngestPolicy::strict())
                .expect("strict policy accepts clean input");
        let (lenient, lenient_report) =
            ntriples::parse_with_policy("rt", &text, &IngestPolicy::lenient())
                .expect("lenient policy accepts clean input");

        prop_assert_eq!(ntriples::to_string(&legacy), ntriples::to_string(&strict));
        prop_assert_eq!(ntriples::to_string(&legacy), ntriples::to_string(&lenient));
        for report in [&strict_report, &lenient_report] {
            prop_assert!(!report.is_degraded(), "clean input degraded: {:?}", report);
            prop_assert_eq!(report.quarantined_count, 0);
            prop_assert_eq!(report.accepted, report.total_statements);
            prop_assert!(report.audit.broken_edges.is_empty());
        }
    }
}

/// Deterministic spot-check: lenient parse of every byte-level mutation
/// of a small dump (one byte flipped to a delimiter) stays panic-free.
#[test]
fn single_byte_mutations_never_panic() {
    for (i, _) in SAMPLE.char_indices() {
        for &b in b"<>\"\\\n\0. " {
            let mut bytes = SAMPLE.as_bytes().to_vec();
            bytes[i] = b;
            if let Ok(mutated) = String::from_utf8(bytes) {
                assert_report_consistent(&mutated);
                let _ = ntriples::parse("fuzz", &mutated);
            }
        }
    }
}

/// The degenerate inputs that historically trip hand-rolled parsers.
#[test]
fn degenerate_inputs_never_panic() {
    for input in [
        "",
        "\n",
        "\r\n",
        ".",
        "<",
        "<a",
        "<a> <b>",
        "<a> <b> <c>",
        "<a> <b> \"unterminated",
        "<a> <b> \"esc\\",
        "_",
        "_x",
        "\"\" \"\" \"\" .",
        "<a> <b> <c> . extra",
        "# just a comment",
        "\u{feff}<a> <b> <c> .",
    ] {
        assert_report_consistent(input);
        let _ = ntriples::parse("fuzz", input);
    }
}
